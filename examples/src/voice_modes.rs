//! The voice-command path in isolation: synthesize spoken keywords with
//! background noise, gate them with the VAD, recognize them with the
//! keyword spotter, and map them to control modes — plus a look at how the
//! VAD saves compute on silence.
//!
//! ```text
//! cargo run --release -p cognitive-arm-examples --bin voice_modes
//! ```

use asr::audio::{synth_clip, Command};
use asr::kws::{KeywordSpotter, KwsConfig};
use cognitive_arm::mux::VoiceMux;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Voice-mode switching demo");
    println!("=========================\n");

    println!("training the keyword spotter on synthetic utterances...");
    let spotter = KeywordSpotter::train(KwsConfig::default(), 11)?;
    println!("spotter: {} params\n", spotter.param_count());
    let mut mux = VoiceMux::new(spotter);

    println!("{:<12} {:<10} {:<12}", "spoken", "noise", "selected mode");
    for (cmd, noise) in [
        (Command::Arm, 0.02f32),
        (Command::Elbow, 0.02),
        (Command::Fingers, 0.02),
        (Command::Arm, 0.15),
        (Command::Elbow, 0.15),
        (Command::Fingers, 0.15),
    ] {
        let (clip, _, _) = synth_clip(cmd, noise, 1000 + cmd.label() as u64 * 17);
        let mode = mux.process_clip(&clip)?;
        println!(
            "{:<12} {:<10} {:?}",
            format!("\"{cmd}\""),
            format!("{noise:.2}"),
            mode
        );
    }

    // Silence and pure noise: the VAD gates them out without running the
    // spotter at all.
    for label in ["silence", "noise only"] {
        let clip: Vec<f32> = if label == "silence" {
            vec![0.0; 16000]
        } else {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(5);
            (0..16000).map(|_| rng.gen_range(-0.05f32..0.05)).collect()
        };
        let mode = mux.process_clip(&clip)?;
        println!("{label:<12} {:<10} {mode:?}", "-");
    }

    let stats = mux.stats();
    println!(
        "\nVAD gating: {} clips processed, {} gated out before recognition, {} recognized",
        stats.clips, stats.gated_out, stats.recognized
    );
    Ok(())
}
