//! Model persistence round-trip CLI.
//!
//! `save` trains the quick CNN + Transformer ensemble, assembles the
//! closed-loop system and writes a versioned `.cogm` artifact. `verify`
//! (run it in a *fresh process*) loads the artifact, retrains the same
//! seeds in memory, and asserts the loaded system's label trace is
//! bit-identical to the retrained one — the end-to-end proof that cold
//! starts can skip training entirely.
//!
//! `save-v1` writes the same artifact in the frozen legacy format, and
//! `mmap-verify` loads any artifact through the mmap-backed
//! `WeightImage` (v1 files take the in-memory upgrade path) before
//! running the same bit-identity check — together they prove, across a
//! process boundary, that a pre-v2 artifact in the field serves
//! identically through the shared-image path.
//!
//! `save-compressed` writes an artifact whose ensemble carries *both*
//! compressed weight representations (first net member pruned to CSR,
//! second quantized to int8), and `verify-compressed` (fresh process)
//! reloads it through the mmap-backed image and asserts its serving
//! trace is bit-identical to an in-memory retrain-and-compress — the
//! proof that the compressed execution kernels behave identically
//! whether their storage lives on a private heap or a shared mapping.
//!
//! ```text
//! cargo run --release --bin model_roundtrip -- save /tmp/model.cogm 21
//! cargo run --release --bin model_roundtrip -- verify /tmp/model.cogm 21
//! cargo run --release --bin model_roundtrip -- save-v1 /tmp/model-v1.cogm 21
//! cargo run --release --bin model_roundtrip -- mmap-verify /tmp/model-v1.cogm 21
//! cargo run --release --bin model_roundtrip -- save-compressed /tmp/model-c.cogm 21
//! cargo run --release --bin model_roundtrip -- verify-compressed /tmp/model-c.cogm 21
//! ```

use std::process::ExitCode;
use std::time::Instant;

use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, TrainBudget};
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig, SessionTrace};
use eeg::dataset::Protocol;
use eeg::types::Action;
use ml::compress::{prune_global, quantize, QuantMode};
use model_io::{ArmPersist, SavedModel};

fn usage() -> ExitCode {
    eprintln!(
        "usage: model_roundtrip \
         <save|save-v1|save-compressed|verify|mmap-verify|verify-compressed|roundtrip> \
         <path.cogm> [seed]"
    );
    ExitCode::from(2)
}

/// Builds the fully trained closed-loop system for `seed` (the expensive
/// path an artifact lets later processes skip). With `compress`, the
/// ensemble leaves carrying both compressed representations: the first
/// net member pruned to CSR storage, the second quantized to int8.
fn train_system_with(seed: u64, compress: bool) -> CognitiveArm {
    let data = DatasetBuilder::new(Protocol::quick(), 1, seed)
        .build()
        .expect("quick dataset builds");
    let mut ensemble = train_default_ensemble(&data, &TrainBudget::quick(), seed)
        .expect("quick ensemble trains");
    if compress {
        let mut member = 0usize;
        ensemble.visit_net_models_mut(|m| {
            if member == 0 {
                prune_global(m, 0.7);
            } else {
                quantize(m, QuantMode::Calibrated).expect("dense model quantizes");
            }
            member += 1;
        });
    }
    let mut system = CognitiveArm::new(PipelineConfig::default(), ensemble, seed);
    system.set_normalization(data.zscores[0].clone());
    system
}

fn train_system(seed: u64) -> CognitiveArm {
    train_system_with(seed, false)
}

fn trace_of(mut system: CognitiveArm) -> SessionTrace {
    system.set_subject_action(Action::Right);
    system.run_for(2.0).expect("simulated run succeeds")
}

fn traces_identical(a: &SessionTrace, b: &SessionTrace) -> bool {
    a.labels.len() == b.labels.len()
        && a.labels
            .iter()
            .zip(&b.labels)
            .all(|(x, y)| x.t.to_bits() == y.t.to_bits() && x.label == y.label)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(mode), Some(path)) = (args.get(1), args.get(2)) else {
        return usage();
    };
    let seed: u64 = args
        .get(3)
        .map_or(Ok(21), |s| s.parse())
        .expect("seed must be an integer");

    match mode.as_str() {
        "save" => {
            let t0 = Instant::now();
            let system = train_system(seed);
            let train_s = t0.elapsed().as_secs_f64();
            system.save_model(path).expect("artifact saves");
            let bytes = std::fs::metadata(path).expect("artifact exists").len();
            println!(
                "saved {path}: {bytes} bytes, ensemble {} ({} params), trained in {train_s:.1} s",
                system.ensemble().name(),
                system.ensemble().param_count()
            );
            ExitCode::SUCCESS
        }
        "save-v1" => {
            let t0 = Instant::now();
            let system = train_system(seed);
            let train_s = t0.elapsed().as_secs_f64();
            let saved = SavedModel {
                pipeline: system.config().clone(),
                ensemble: system.ensemble().clone(),
                normalization: system.normalization().cloned(),
            };
            saved
                .to_container()
                .expect("artifact is persistable")
                .save_v1(path)
                .expect("v1 artifact saves");
            let bytes = std::fs::metadata(path).expect("artifact exists").len();
            println!(
                "saved {path} (format v1): {bytes} bytes, ensemble {} ({} params), \
                 trained in {train_s:.1} s",
                system.ensemble().name(),
                system.ensemble().param_count()
            );
            ExitCode::SUCCESS
        }
        "save-compressed" => {
            let t0 = Instant::now();
            let system = train_system_with(seed, true);
            let train_s = t0.elapsed().as_secs_f64();
            system.save_model(path).expect("compressed artifact saves");
            let bytes = std::fs::metadata(path).expect("artifact exists").len();
            println!(
                "saved {path} (pruned CSR + int8 members): {bytes} bytes, ensemble {} \
                 ({} params), trained in {train_s:.1} s",
                system.ensemble().name(),
                system.ensemble().param_count()
            );
            ExitCode::SUCCESS
        }
        "verify-compressed" => {
            let t0 = Instant::now();
            let image = model_io::WeightImage::open(path).expect("weight image opens");
            let model = image.decode().expect("weight image decodes");
            let load_s = t0.elapsed().as_secs_f64();
            println!(
                "mapped compressed {path} in {load_s:.3} s: format v{} on disk, mapped={}, \
                 ensemble {} ({} params)",
                image.source_version(),
                image.is_mapped(),
                model.ensemble.name(),
                model.ensemble.param_count()
            );
            let loaded_trace = trace_of(model.into_system(seed));
            let retrained_trace = trace_of(train_system_with(seed, true));
            if traces_identical(&loaded_trace, &retrained_trace) {
                println!(
                    "OK: {} labels bit-identical between mmap-loaded and in-memory \
                     compressed systems",
                    loaded_trace.labels.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "FAIL: mmap-loaded compressed trace diverges from in-memory \
                     compressed trace"
                );
                ExitCode::FAILURE
            }
        }
        "mmap-verify" => {
            let t0 = Instant::now();
            let image = model_io::WeightImage::open(path).expect("weight image opens");
            let model = image.decode().expect("weight image decodes");
            let load_s = t0.elapsed().as_secs_f64();
            println!(
                "mapped {path} in {load_s:.3} s: format v{} on disk, mapped={}, \
                 ensemble {} ({} params)",
                image.source_version(),
                image.is_mapped(),
                model.ensemble.name(),
                model.ensemble.param_count()
            );
            let loaded_trace = trace_of(model.into_system(seed));
            let retrained_trace = trace_of(train_system(seed));
            if traces_identical(&loaded_trace, &retrained_trace) {
                println!(
                    "OK: {} labels bit-identical between image-decoded and retrained systems",
                    loaded_trace.labels.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!("FAIL: image-decoded trace diverges from retrained trace");
                ExitCode::FAILURE
            }
        }
        "verify" => {
            let t0 = Instant::now();
            let loaded = CognitiveArm::load_model(path, seed).expect("artifact loads");
            let load_s = t0.elapsed().as_secs_f64();
            println!(
                "loaded {path} in {load_s:.3} s: ensemble {} ({} params)",
                loaded.ensemble().name(),
                loaded.ensemble().param_count()
            );
            let loaded_trace = trace_of(loaded);
            let retrained_trace = trace_of(train_system(seed));
            if traces_identical(&loaded_trace, &retrained_trace) {
                println!(
                    "OK: {} labels bit-identical between loaded and retrained systems",
                    loaded_trace.labels.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!("FAIL: loaded trace diverges from retrained trace");
                ExitCode::FAILURE
            }
        }
        "roundtrip" => {
            let system = train_system(seed);
            system.save_model(path).expect("artifact saves");
            let saved = SavedModel::load(path).expect("artifact loads");
            assert_eq!(saved.ensemble, *system.ensemble(), "ensemble drifted");
            let a = trace_of(system);
            let b = trace_of(saved.into_system(seed));
            assert!(traces_identical(&a, &b), "traces diverged");
            println!("OK: in-process round trip, {} labels identical", a.labels.len());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
