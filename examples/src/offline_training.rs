//! Offline model development: the paper's evolutionary design-space
//! exploration (Algorithm 1) driving real training on the synthetic study,
//! ending with the Pareto front and the accuracy-threshold best model.
//!
//! ```text
//! cargo run --release -p cognitive-arm-examples --bin offline_training
//! ```

use cognitive_arm::eval::{DatasetBuilder, EegEvaluator, TrainBudget};
use eeg::dataset::Protocol;
use evo::{EvolutionConfig, EvolutionarySearch, Family, SearchSpace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Evolutionary search over the CNN family (Table III space)");
    println!("==========================================================\n");

    let data = DatasetBuilder::new(Protocol::quick(), 2, 9).build()?;
    let evaluator =
        EegEvaluator::new(data, TrainBudget::quick(), None).with_flop_budget(2e9);

    let search = EvolutionarySearch::new(
        SearchSpace::new(Family::Cnn),
        EvolutionConfig {
            population: 6,
            generations: 3,
            accuracy_threshold: 0.85,
            seed: 3,
            ..EvolutionConfig::default()
        },
    );
    let outcome = search.run(&evaluator);

    println!("generation | candidate                        | acc   | params");
    println!("-----------|----------------------------------|-------|-------");
    for (gen, cand) in &outcome.history {
        println!(
            "{gen:^10} | {:<32} | {:.3} | {}",
            cand.genome.describe(),
            cand.accuracy,
            cand.params
        );
    }

    println!("\nPareto front:");
    for c in &outcome.front {
        println!("  {} -> acc {:.3}, params {}", c.genome.describe(), c.accuracy, c.params);
    }
    println!(
        "\nbest model (alpha = 0.85): {} (acc {:.3}, {} params)",
        outcome.best.genome.describe(),
        outcome.best.accuracy,
        outcome.best.params
    );
    Ok(())
}
