//! Scenario from the paper's intro: picking up a cup. The user switches to
//! fingers mode by voice, closes the grip by thinking "right", raises the
//! arm in arm mode, then releases.
//!
//! ```text
//! cargo run --release -p cognitive-arm-examples --bin realtime_control
//! ```

use arm::controller::ControlMode;
use arm::kinematics::Joint;
use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, TrainBudget};
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig};
use eeg::dataset::Protocol;
use eeg::types::Action;

fn report(system: &CognitiveArm, step: &str) {
    println!(
        "{step:<40} lift {:6.1}°  wrist {:6.1}°  grip {:5.1}%",
        system.joint(Joint::Lift),
        system.joint(Joint::Wrist),
        system.joint(Joint::Grip),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Cup-picking scenario (EEG labels x voice-mode multiplexing)");
    println!("============================================================\n");

    let data = DatasetBuilder::new(Protocol::quick(), 1, 77).build()?;
    let ensemble = train_default_ensemble(&data, &TrainBudget::quick(), 2)?;
    let mut system = CognitiveArm::new(PipelineConfig::default(), ensemble, 77);
    system.set_normalization(data.zscores[0].clone());

    // Warm up: fill the window while idle.
    system.set_subject_action(Action::Idle);
    system.run_for(2.0)?;
    report(&system, "start (idle)");

    // Voice: "fingers" -> think right to close the grip around the cup.
    system.set_mode(ControlMode::Fingers);
    system.set_subject_action(Action::Right);
    system.run_for(4.0)?;
    report(&system, "voice 'fingers' + think right (close)");

    // Voice: "arm" -> think right to raise the cup.
    system.set_mode(ControlMode::Arm);
    system.run_for(4.0)?;
    report(&system, "voice 'arm' + think right (raise)");

    // Hold: idle keeps everything in place.
    system.set_subject_action(Action::Idle);
    system.run_for(2.0)?;
    report(&system, "think idle (hold)");

    // Put it down: think left in arm mode, then open the fingers.
    system.set_subject_action(Action::Left);
    system.run_for(4.0)?;
    report(&system, "think left (lower)");
    system.set_mode(ControlMode::Fingers);
    system.run_for(4.0)?;
    report(&system, "voice 'fingers' + think left (open)");

    println!("\nend-to-end compute per label: {:.3} ms", system.latency().end_to_end_s() * 1e3);
    Ok(())
}
