//! Quickstart: train a small CognitiveArm system on synthetic EEG and run
//! it closed-loop for a few seconds.
//!
//! ```text
//! cargo run --release -p cognitive-arm-examples --bin quickstart
//! ```

use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, TrainBudget};
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig};
use eeg::dataset::Protocol;
use eeg::types::Action;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("CognitiveArm quickstart");
    println!("=======================\n");

    // 1. Collect a one-subject study with the paper's protocol (shortened).
    println!("[1/4] generating + preprocessing synthetic EEG...");
    let data = DatasetBuilder::new(Protocol::quick(), 1, 42).build()?;

    // 2. Train the CNN + Transformer ensemble.
    println!("[2/4] training the CNN+Transformer ensemble...");
    let ensemble = train_default_ensemble(&data, &TrainBudget::quick(), 7)?;
    println!("      ensemble: {} ({} params)", ensemble.name(), ensemble.param_count());

    // 3. Assemble the real-time system for the same subject.
    println!("[3/4] assembling the real-time pipeline...");
    let mut system = CognitiveArm::new(PipelineConfig::default(), ensemble, 42);
    system.set_normalization(data.zscores[0].clone());

    // 4. Let the subject think; watch the arm.
    println!("[4/4] running closed-loop for 3 intentions x 3 s...\n");
    for action in [Action::Idle, Action::Right, Action::Left] {
        system.set_subject_action(action);
        let lift_before = system.joint(arm::kinematics::Joint::Lift);
        let trace = system.run_for(3.0)?;
        let lift_after = system.joint(arm::kinematics::Joint::Lift);
        let mut counts = [0usize; 3];
        for l in &trace.labels {
            counts[l.label] += 1;
        }
        println!(
            "subject thinks {action:<5} -> labels left/right/idle = {counts:?}, lift moved {:+.1} deg",
            lift_after - lift_before
        );
    }

    let lat = system.latency();
    println!(
        "\nmean compute per 15 Hz label: {:.3} ms (filter {:.3} + inference {:.3} + actuation {:.3})",
        lat.end_to_end_s() * 1e3,
        lat.filter.mean_s() * 1e3,
        lat.inference.mean_s() * 1e3,
        lat.actuation.mean_s() * 1e3,
    );
    Ok(())
}
