//! Cross-crate integration tests for the CognitiveArm workspace.
//!
//! The actual tests live in `tests/` (Cargo integration-test targets); this
//! library hosts shared fixtures. Trained artifacts are cached at two
//! levels: a once-per-process `OnceLock` map (so concurrent tests share one
//! training run), backed by **disk fixtures** — `.cogm` files under
//! `target/cogm-test-cache/` written through `model_io`, so warm test runs
//! load the quick ensemble in milliseconds instead of retraining it every
//! process. Cache entries are keyed by seed *and* a fingerprint of the
//! test executable, so any rebuild (i.e. any code change) invalidates
//! them automatically; `cargo clean` wipes the directory, and
//! `COGARM_NO_FIXTURE_CACHE=1` bypasses it entirely.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, PreparedData, TrainBudget};
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig};
use eeg::dataset::Protocol;
use ml::ensemble::Ensemble;

/// A lazily initialized once-per-process artifact cache keyed by seed.
/// Each key gets its own `OnceLock` cell, so the map lock is only held for
/// the cheap entry lookup: misses for the *same* key wait on one training
/// run, while distinct keys train concurrently.
type SeedCache<K, V> = OnceLock<Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>>;

fn get_or_build<K, V>(cache: &SeedCache<K, V>, key: K, build: impl FnOnce() -> V) -> Arc<V>
where
    K: Eq + std::hash::Hash,
{
    let cell = {
        let mut map = cache
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("artifact cache lock");
        Arc::clone(map.entry(key).or_default())
    };
    Arc::clone(cell.get_or_init(|| Arc::new(build())))
}

/// A small two-subject prepared dataset shared by the integration tests,
/// cached once per process per seed.
///
/// # Panics
///
/// Panics if generation fails (it cannot for the quick protocol).
#[must_use]
pub fn quick_data(seed: u64) -> PreparedData {
    static CACHE: SeedCache<u64, PreparedData> = OnceLock::new();
    let data = get_or_build(&CACHE, seed, || {
        DatasetBuilder::new(Protocol::quick(), 2, seed)
            .build()
            .expect("quick dataset builds")
    });
    PreparedData::clone(&data)
}

/// A one-subject quick dataset plus the default ensemble trained on it.
#[derive(Debug, Clone)]
pub struct QuickArtifacts {
    /// The prepared single-subject dataset.
    pub data: PreparedData,
    /// The trained CNN + Transformer soft-voting ensemble.
    pub ensemble: Ensemble,
}

/// Section tag for cached test ensembles.
const CACHE_TAG: [u8; 4] = *b"ENSM";

/// A fingerprint of the running test binary (size + mtime). Baking it
/// into the cache key makes a cached artifact die with the build that
/// wrote it: recompiling any crate the tests link (ml, core, …) produces
/// a new executable and therefore a fresh cache entry, so a stale
/// ensemble can never outlive a training-code change.
fn exe_fingerprint() -> Option<(String, String)> {
    let exe = std::env::current_exe().ok()?;
    let meta = std::fs::metadata(&exe).ok()?;
    let mtime = meta
        .modified()
        .ok()?
        .duration_since(std::time::UNIX_EPOCH)
        .ok()?;
    // The sanitized binary name keys entries per test target, so pruning
    // one binary's stale builds never evicts another binary's entries;
    // no '-' inside either component, because the pruner splits the
    // filename on its last dash to recover the stable prefix.
    let stem: String = exe
        .file_stem()?
        .to_str()?
        .chars()
        .filter(char::is_ascii_alphanumeric)
        .collect();
    Some((stem, format!("{:x}x{:x}", meta.len(), mtime.as_secs())))
}

/// Where disk-backed test fixtures live: under `target/`, so they are
/// wiped by `cargo clean` and never survive a fresh CI checkout. The key
/// includes `COGARM_THREADS` so CI's 1- and 4-thread passes each *train*
/// at their own pool size (the dual-thread matrix exists to prove training
/// is thread-count-invariant; sharing one artifact would mask a
/// regression there).
fn fixture_cache_path(data_seed: u64, train_seed: u64) -> Option<PathBuf> {
    if std::env::var_os("COGARM_NO_FIXTURE_CACHE").is_some() {
        return None;
    }
    let (stem, fingerprint) = exe_fingerprint()?;
    let threads: String = std::env::var("COGARM_THREADS")
        .unwrap_or_else(|_| "auto".into())
        .chars()
        .filter(char::is_ascii_alphanumeric)
        .collect();
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("target")
        .join("cogm-test-cache");
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir.join(format!(
        "quick-{data_seed}-{train_seed}-t{threads}-{stem}-{fingerprint}.cogm"
    )))
}

/// Removes cache entries for the same seeds written by *other* builds, so
/// the directory stays bounded instead of accumulating one orphan per
/// rebuild.
fn prune_stale_cache_entries(current: &std::path::Path) {
    let (Some(dir), Some(name)) = (current.parent(), current.file_name()) else {
        return;
    };
    // Keep the trailing dash so "…-t1-" never matches "…-t10-…".
    let Some(prefix) = name.to_str().and_then(|n| n.rfind('-').map(|i| &n[..=i])) else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let stale = entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.starts_with(prefix) && n != name);
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Trains (once per process per `(data_seed, train_seed)` pair) the default
/// ensemble at `Protocol::quick()` on a one-subject dataset. Concurrent
/// tests wanting the same artifact wait for one training run instead of
/// racing a second one; different pairs train in parallel.
///
/// The trained ensemble is persisted as a `.cogm` fixture on first build
/// and loaded from disk afterwards (training is deterministic, so the
/// loaded artifact is bit-identical to a retrained one — the persistence
/// suite enforces exactly that). A missing, stale-format or corrupt
/// fixture silently falls back to retraining and rewrites the file.
///
/// # Panics
///
/// Panics if dataset generation or training fails.
#[must_use]
pub fn quick_trained(data_seed: u64, train_seed: u64) -> Arc<QuickArtifacts> {
    static CACHE: SeedCache<(u64, u64), QuickArtifacts> = OnceLock::new();
    get_or_build(&CACHE, (data_seed, train_seed), || {
        let data = DatasetBuilder::new(Protocol::quick(), 1, data_seed)
            .build()
            .expect("quick dataset builds");
        let cache_path = fixture_cache_path(data_seed, train_seed);
        let ensemble = cache_path
            .as_ref()
            .and_then(|p| model_io::load_section::<Ensemble, _>(p, CACHE_TAG).ok())
            .unwrap_or_else(|| {
                let trained = train_default_ensemble(&data, &TrainBudget::quick(), train_seed)
                    .expect("quick ensemble trains");
                if let Some(p) = &cache_path {
                    // Best-effort: a failed write just means retraining
                    // next process.
                    let _ = model_io::save_section(p, CACHE_TAG, &trained);
                    prune_stale_cache_entries(p);
                }
                trained
            });
        QuickArtifacts { data, ensemble }
    })
}

/// An assembled closed-loop system over [`quick_trained`] artifacts
/// (`train_seed = data_seed`, the common fixture shape), with the subject's
/// frozen normalization installed.
#[must_use]
pub fn quick_system(seed: u64) -> CognitiveArm {
    let artifacts = quick_trained(seed, seed);
    let mut system = CognitiveArm::new(PipelineConfig::default(), artifacts.ensemble.clone(), seed);
    system.set_normalization(artifacts.data.zscores[0].clone());
    system
}
