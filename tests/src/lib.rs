//! Cross-crate integration tests for the CognitiveArm workspace.
//!
//! The actual tests live in `tests/` (Cargo integration-test targets); this
//! library only hosts shared fixtures.

use cognitive_arm::eval::{DatasetBuilder, PreparedData};
use eeg::dataset::Protocol;

/// A small two-subject prepared dataset shared by the integration tests.
///
/// # Panics
///
/// Panics if generation fails (it cannot for the quick protocol).
#[must_use]
pub fn quick_data(seed: u64) -> PreparedData {
    DatasetBuilder::new(Protocol::quick(), 2, seed)
        .build()
        .expect("quick dataset builds")
}
