//! Cross-crate integration tests for the CognitiveArm workspace.
//!
//! The actual tests live in `tests/` (Cargo integration-test targets); this
//! library hosts shared fixtures — most importantly a once-per-process
//! trained-artifact cache so the several tests that train at
//! `Protocol::quick()` reuse one model instead of each paying the training
//! bill.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, PreparedData, TrainBudget};
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig};
use eeg::dataset::Protocol;
use ml::ensemble::Ensemble;

/// A lazily initialized once-per-process artifact cache keyed by seed.
/// Each key gets its own `OnceLock` cell, so the map lock is only held for
/// the cheap entry lookup: misses for the *same* key wait on one training
/// run, while distinct keys train concurrently.
type SeedCache<K, V> = OnceLock<Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>>;

fn get_or_build<K, V>(cache: &SeedCache<K, V>, key: K, build: impl FnOnce() -> V) -> Arc<V>
where
    K: Eq + std::hash::Hash,
{
    let cell = {
        let mut map = cache
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("artifact cache lock");
        Arc::clone(map.entry(key).or_default())
    };
    Arc::clone(cell.get_or_init(|| Arc::new(build())))
}

/// A small two-subject prepared dataset shared by the integration tests,
/// cached once per process per seed.
///
/// # Panics
///
/// Panics if generation fails (it cannot for the quick protocol).
#[must_use]
pub fn quick_data(seed: u64) -> PreparedData {
    static CACHE: SeedCache<u64, PreparedData> = OnceLock::new();
    let data = get_or_build(&CACHE, seed, || {
        DatasetBuilder::new(Protocol::quick(), 2, seed)
            .build()
            .expect("quick dataset builds")
    });
    PreparedData::clone(&data)
}

/// A one-subject quick dataset plus the default ensemble trained on it.
#[derive(Debug, Clone)]
pub struct QuickArtifacts {
    /// The prepared single-subject dataset.
    pub data: PreparedData,
    /// The trained CNN + Transformer soft-voting ensemble.
    pub ensemble: Ensemble,
}

/// Trains (once per process per `(data_seed, train_seed)` pair) the default
/// ensemble at `Protocol::quick()` on a one-subject dataset. Concurrent
/// tests wanting the same artifact wait for one training run instead of
/// racing a second one; different pairs train in parallel.
///
/// # Panics
///
/// Panics if dataset generation or training fails.
#[must_use]
pub fn quick_trained(data_seed: u64, train_seed: u64) -> Arc<QuickArtifacts> {
    static CACHE: SeedCache<(u64, u64), QuickArtifacts> = OnceLock::new();
    get_or_build(&CACHE, (data_seed, train_seed), || {
        let data = DatasetBuilder::new(Protocol::quick(), 1, data_seed)
            .build()
            .expect("quick dataset builds");
        let ensemble = train_default_ensemble(&data, &TrainBudget::quick(), train_seed)
            .expect("quick ensemble trains");
        QuickArtifacts { data, ensemble }
    })
}

/// An assembled closed-loop system over [`quick_trained`] artifacts
/// (`train_seed = data_seed`, the common fixture shape), with the subject's
/// frozen normalization installed.
#[must_use]
pub fn quick_system(seed: u64) -> CognitiveArm {
    let artifacts = quick_trained(seed, seed);
    let mut system = CognitiveArm::new(PipelineConfig::default(), artifacts.ensemble.clone(), seed);
    system.set_normalization(artifacts.data.zscores[0].clone());
    system
}
