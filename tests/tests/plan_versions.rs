//! The numerics-version contract between plan **v1** (the frozen PR 5
//! per-window path) and plan **v2** (stacked multi-window GEMMs):
//!
//! 1. a seeded property sweep pinning how far v2 logits may drift from v1
//!    across weight representations (dense f32, 70%-pruned CSR, calibrated
//!    int8) and batch sizes {1, 3, 16, 64};
//! 2. v1 batched ensemble calls stay **bit-identical** to the legacy
//!    per-window API at 1 and 4 threads — upgrading the default to v2 must
//!    not move the fallback by a single bit;
//! 3. golden label traces for both versions, locked as committed fixtures
//!    (regenerate deliberately with `COGARM_REGEN_FIXTURES=1 cargo test -q
//!    --test plan_versions`).
//!
//! Version selection everywhere here is explicit (`compile_with` /
//! `with_version`), never the `COGARM_PLAN` environment variable — tests
//! run concurrently and must not race on process state.

use std::path::PathBuf;

use cognitive_arm::eval::{quick_cnn_config, train_genome, TrainBudget, TrainedArtifact};
use eeg::dataset::train_val_split;
use eeg::CHANNELS;
use evo::Genome;
use exec::ExecPool;
use integration_tests::{quick_data, quick_trained};
use ml::compress::{prune_global, quantize, QuantMode};
use ml::ensemble::EnsembleScratch;
use ml::infer::InferModel;
use ml::models::CLASSES;
use ml::optim::OptimizerKind;
use ml::plan::{InferPlan, PlanVersion};

/// How far a v2 logit may sit from its v1 counterpart, per element:
/// `|v2 - v1| ≤ ABS_TOL + REL_TOL · |v1|`. The only reassociation v2
/// performs is the dense blocked kernel's paired-`k` accumulation (CSR and
/// int8 kernels are shared bit-exactly), so the drift is a handful of
/// ulps per dot product; 1e-4 absolute + 1e-4 relative is ~two orders of
/// magnitude of headroom while still catching any real kernel bug.
const ABS_TOL: f32 = 1e-4;
const REL_TOL: f32 = 1e-4;

fn trained_cnn() -> InferModel {
    let data = quick_data(13);
    let genome = Genome::Cnn {
        config: quick_cnn_config(),
        optimizer: OptimizerKind::Adam { lr: 3e-3 },
    };
    let all = data.windows(100, 25).expect("windows cut");
    let (train, val) = train_val_split(all, 0.25, 1);
    let (artifact, _) =
        train_genome(&genome, &train, &val, &TrainBudget::quick(), 3).expect("trains");
    match artifact {
        TrainedArtifact::Net(m) => m,
        TrainedArtifact::Forest(_) => unreachable!("cnn genome"),
    }
}

/// Deterministic pseudo-EEG windows, seeded per batch so every batch size
/// sweeps different data.
fn seeded_windows(per_window: usize, batch: usize, seed: u32) -> Vec<f32> {
    (0..batch * per_window)
        .map(|i| {
            let x = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(seed) >> 8;
            (x as f32 / 8_388_608.0) - 1.0
        })
        .collect()
}

#[test]
fn v2_tracks_v1_within_tolerance_across_reps_and_batches() {
    let dense = trained_cnn();
    let mut csr = dense.clone();
    prune_global(&mut csr, 0.7);
    let mut int8 = dense.clone();
    quantize(&mut int8, QuantMode::Calibrated).expect("dense model quantizes");

    for (rep, model) in [("dense", &dense), ("csr_70pct", &csr), ("int8", &int8)] {
        let mut v1 = InferPlan::compile_with(model, PlanVersion::V1);
        let mut v2 = InferPlan::compile_with(model, PlanVersion::V2);
        let per_window = CHANNELS * model.window();
        for (bi, &batch) in [1usize, 3, 16, 64].iter().enumerate() {
            let windows = seeded_windows(per_window, batch, 0xC0A7 + bi as u32);
            let mut out1 = vec![0.0f32; batch * CLASSES];
            let mut out2 = vec![0.0f32; batch * CLASSES];
            v1.predict_logits_into(model, &windows, batch, &mut out1);
            v2.predict_logits_into(model, &windows, batch, &mut out2);
            for (i, (&a, &b)) in out1.iter().zip(&out2).enumerate() {
                let tol = ABS_TOL + REL_TOL * a.abs();
                assert!(
                    (a - b).abs() <= tol,
                    "{rep} batch {batch} logit {i}: v1 {a} vs v2 {b} (tol {tol})"
                );
            }
        }
    }
}

#[test]
fn v1_is_bit_identical_to_the_per_window_path_at_1_and_4_threads() {
    // The PR 5 contract, frozen: a v1 batched call must reproduce, bit for
    // bit, the per-window path it generalized — at any thread count. (The
    // convenience APIs `predict_proba[_with]` now compile the runtime
    // default, so the per-window reference is an explicit `batch = 1` v1
    // scratch.)
    let artifacts = quick_trained(21, 21);
    let ensemble = &artifacts.ensemble;
    let per_window = CHANNELS * ensemble.window();
    let batch = 6;
    let windows = seeded_windows(per_window, batch, 0xBEEF);

    let mut per_thread_count: Vec<Vec<f32>> = Vec::new();
    for threads in [1usize, 4] {
        let pool = ExecPool::new(threads);
        let mut scratch = EnsembleScratch::with_version(ensemble, PlanVersion::V1);
        let mut probas = vec![0.0f32; batch * CLASSES];
        ensemble.predict_batch_into(&windows, batch, CHANNELS, &pool, &mut scratch, &mut probas);

        let mut solo_scratch = EnsembleScratch::with_version(ensemble, PlanVersion::V1);
        for b in 0..batch {
            let mut solo = vec![0.0f32; CLASSES];
            ensemble.predict_batch_into(
                &windows[b * per_window..(b + 1) * per_window],
                1,
                CHANNELS,
                &pool,
                &mut solo_scratch,
                &mut solo,
            );
            assert_eq!(
                solo,
                probas[b * CLASSES..(b + 1) * CLASSES].to_vec(),
                "v1 batched window {b} drifted from the per-window path at {threads} threads"
            );
        }
        per_thread_count.push(probas);
    }
    assert_eq!(
        per_thread_count[0], per_thread_count[1],
        "thread count changed v1 bits"
    );
}

// --- golden label traces ------------------------------------------------------

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Classifies 24 real (synthetic-EEG) windows under one plan version on a
/// 1-thread pool and renders the trace: one line per window, the argmax
/// label followed by every combined probability as raw f32 bits.
fn render_trace(version: PlanVersion) -> String {
    let artifacts = quick_trained(21, 21);
    let ensemble = &artifacts.ensemble;
    let win = ensemble.window();
    let labeled = artifacts.data.windows(win, 25).expect("windows cut");
    let take = 24.min(labeled.len());
    let mut flat = Vec::with_capacity(take * CHANNELS * win);
    for w in labeled.iter().take(take) {
        flat.extend_from_slice(&w.data);
    }

    let pool = ExecPool::new(1);
    let mut scratch = EnsembleScratch::with_version(ensemble, version);
    let mut probas = vec![0.0f32; take * CLASSES];
    ensemble.predict_batch_into(&flat, take, CHANNELS, &pool, &mut scratch, &mut probas);

    let tag = match version {
        PlanVersion::V1 => "v1",
        PlanVersion::V2 => "v2",
    };
    let mut out = format!(
        "# golden label trace, plan {tag}: <label> <proba f32 bits, hex, per class>\n"
    );
    for b in 0..take {
        let row = &probas[b * CLASSES..(b + 1) * CLASSES];
        out.push_str(&ml::ensemble::argmax(row).to_string());
        for p in row {
            out.push_str(&format!(" {:08x}", p.to_bits()));
        }
        out.push('\n');
    }
    out
}

#[test]
fn golden_label_trace_fixtures_lock_both_versions() {
    let v1 = render_trace(PlanVersion::V1);
    let v2 = render_trace(PlanVersion::V2);

    // v2 is a *real* numerics change (the blocked dense kernel
    // reassociates float adds), so the probability bits must differ…
    assert_ne!(v1, v2, "plan v2 produced v1's exact bits — versioning is vacuous");
    // …while staying classification-invisible on real windows: every
    // label column agrees.
    let labels = |t: &str| -> Vec<String> {
        t.lines()
            .skip(1)
            .map(|l| l.split_whitespace().next().expect("label column").to_owned())
            .collect()
    };
    assert_eq!(labels(&v1), labels(&v2), "v2 drift flipped a label");

    let regen = std::env::var_os("COGARM_REGEN_FIXTURES").is_some();
    for (name, rendered) in [("trace_v1.txt", &v1), ("trace_v2.txt", &v2)] {
        let path = fixture_path(name);
        if regen {
            std::fs::create_dir_all(path.parent().expect("fixtures dir")).expect("mkdir");
            std::fs::write(&path, rendered).expect("write fixture");
            continue;
        }
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing fixture {name} ({e}); run with COGARM_REGEN_FIXTURES=1")
        });
        assert_eq!(
            committed, **rendered,
            "{name}: the {} path no longer reproduces its committed golden trace — \
             an unversioned numerics change; add a new PlanVersion and regenerate deliberately",
            name.trim_end_matches(".txt").trim_start_matches("trace_"),
        );
    }
}
