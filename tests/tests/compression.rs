//! Integration: training → compilation → compression, checking the Fig. 12
//! qualitative claims on real (synthetic-EEG-trained) models.

use cognitive_arm::eval::{train_genome, quick_cnn_config, TrainBudget, TrainedArtifact};
use eeg::dataset::train_val_split;
use evo::Genome;
use integration_tests::quick_data;
use ml::compress::{measured_sparsity, prune_global, quantize, storage_bytes, QuantMode};
use ml::infer::InferModel;
use ml::optim::OptimizerKind;

fn trained_cnn() -> (InferModel, Vec<eeg::types::LabeledWindow>) {
    let data = quick_data(13);
    let genome = Genome::Cnn {
        config: quick_cnn_config(),
        optimizer: OptimizerKind::Adam { lr: 3e-3 },
    };
    let all = data.windows(100, 25).expect("windows cut");
    let (train, val) = train_val_split(all, 0.25, 1);
    let (artifact, acc) =
        train_genome(&genome, &train, &val, &TrainBudget::quick(), 3).expect("trains");
    assert!(acc > 0.6, "base model too weak for the test: {acc}");
    match artifact {
        TrainedArtifact::Net(m) => (m, val),
        TrainedArtifact::Forest(_) => unreachable!("cnn genome"),
    }
}

fn accuracy(m: &InferModel, val: &[eeg::types::LabeledWindow]) -> f64 {
    let correct = val
        .iter()
        .filter(|w| m.predict(&w.data) == w.label.label())
        .count();
    correct as f64 / val.len() as f64
}

#[test]
fn moderate_pruning_preserves_accuracy() {
    let (dense, val) = trained_cnn();
    let dense_acc = accuracy(&dense, &val);
    for ratio in [0.3, 0.5, 0.7] {
        let mut pruned = dense.clone();
        prune_global(&mut pruned, ratio);
        let s = measured_sparsity(&pruned);
        assert!((s - ratio).abs() < 0.05, "sparsity {s} for ratio {ratio}");
        let acc = accuracy(&pruned, &val);
        assert!(
            acc > dense_acc - 0.15,
            "pruning {ratio} dropped accuracy {dense_acc} -> {acc}"
        );
    }
}

#[test]
fn extreme_pruning_hurts_more_than_moderate() {
    let (dense, val) = trained_cnn();
    let mut p70 = dense.clone();
    prune_global(&mut p70, 0.7);
    let mut p90 = dense.clone();
    prune_global(&mut p90, 0.9);
    // Not strictly monotone on every seed, but 90% must not beat 70% by a
    // margin; and parameter counts must order strictly.
    assert!(p90.param_count() < p70.param_count());
    assert!(accuracy(&p90, &val) <= accuracy(&p70, &val) + 0.05);
}

#[test]
fn global_int8_collapses_calibrated_survives() {
    let (dense, val) = trained_cnn();
    let dense_acc = accuracy(&dense, &val);

    let mut calibrated = dense.clone();
    quantize(&mut calibrated, QuantMode::Calibrated).unwrap();
    let cal_acc = accuracy(&calibrated, &val);
    assert!(
        cal_acc > dense_acc - 0.1,
        "calibrated int8 should track dense: {dense_acc} -> {cal_acc}"
    );

    let mut faithful = dense.clone();
    quantize(&mut faithful, QuantMode::GlobalFaithful).unwrap();
    let faith_acc = accuracy(&faithful, &val);
    assert!(
        faith_acc <= cal_acc,
        "global-scale int8 ({faith_acc}) should not beat calibrated ({cal_acc})"
    );
    // Storage shrinks ~4x either way.
    assert!(storage_bytes(&faithful) * 3 < storage_bytes(&dense));
}

#[test]
fn compressed_models_stay_deterministic() {
    let (dense, _) = trained_cnn();
    let mut a = dense.clone();
    let mut b = dense.clone();
    prune_global(&mut a, 0.5);
    prune_global(&mut b, 0.5);
    let w: Vec<f32> = (0..16 * 100).map(|i| (i as f32 * 0.01).sin()).collect();
    assert_eq!(a.predict_logits(&w), b.predict_logits(&w));
}
