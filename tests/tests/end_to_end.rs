//! End-to-end integration: synthetic subject → preprocessing → trained
//! ensemble → real-time loop → arm motion.

use arm::kinematics::Joint;
use cognitive_arm::session::{run_validation, SessionConfig};
use eeg::types::Action;
// Trains once per process per seed (shared trained-artifact cache); the
// three seed-42 tests below reuse one ensemble.
use integration_tests::quick_system as trained_system;

#[test]
fn intentions_move_the_arm_in_the_right_direction() {
    let mut system = trained_system(42);
    system.set_subject_action(Action::Idle);
    system.run_for(2.0).expect("pre-roll runs");

    let before = system.joint(Joint::Lift);
    system.set_subject_action(Action::Right);
    system.run_for(4.0).expect("right phase runs");
    let after_right = system.joint(Joint::Lift);
    assert!(
        after_right > before + 1.0,
        "thinking right should raise the lift: {before} -> {after_right}"
    );

    system.set_subject_action(Action::Left);
    system.run_for(5.0).expect("left phase runs");
    let after_left = system.joint(Joint::Lift);
    assert!(
        after_left < after_right - 1.0,
        "thinking left should lower the lift: {after_right} -> {after_left}"
    );
}

#[test]
fn closed_loop_validation_is_mostly_successful() {
    let mut system = trained_system(42);
    let report = run_validation(
        &mut system,
        &SessionConfig {
            trials: 10,
            trial_secs: 3.5,
            rest_secs: 1.2,
            min_move: 1.5,
        },
    )
    .expect("sessions run");
    // The paper reports 19/20; demand at least 7/10 from the quick-trained
    // system so the test is robust to budget noise.
    assert!(
        report.successes() >= 7,
        "only {}/{} sessions succeeded: {:?}",
        report.successes(),
        report.trials.len(),
        report.trials
    );
}

#[test]
fn label_rate_is_realtime_capable() {
    let mut system = trained_system(7);
    system.set_subject_action(Action::Idle);
    let trace = system.run_for(3.0).expect("runs");
    // 15 Hz labels require < 66 ms compute per label.
    let lat = system.latency();
    assert!(
        lat.end_to_end_s() < 0.066,
        "compute per label {:.1} ms exceeds the 15 Hz budget",
        lat.end_to_end_s() * 1e3
    );
    assert!(!trace.labels.is_empty());
}

#[test]
fn idle_holds_the_arm_still() {
    let mut system = trained_system(42);
    system.set_subject_action(Action::Idle);
    system.run_for(2.0).expect("pre-roll");
    let before = system.joint(Joint::Lift);
    system.run_for(4.0).expect("idle phase");
    let after = system.joint(Joint::Lift);
    assert!(
        (after - before).abs() < 8.0,
        "idle drifted the lift {before} -> {after}"
    );
}
