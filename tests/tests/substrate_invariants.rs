//! Cross-crate invariants and property-based tests spanning the substrates.

use dsp::butterworth::Butterworth;
use dsp::notch::notch_filter;
use eeg::montage::Electrode;
use eeg::signal::{SignalGenerator, SubjectParams};
use eeg::types::Action;
use eeg::{CHANNELS, SAMPLE_RATE};
use integration_tests::quick_data;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stream::compare::compare_protocols;

#[test]
fn filtered_synthetic_eeg_keeps_the_erd_contrast() {
    // The whole reproduction hinges on this: after the paper's full
    // preprocessing chain, C3 mu power must still distinguish right-hand
    // imagery from idle.
    let mut params = SubjectParams::sampled(2);
    params.line_amp = 6.0;
    let mut g = SignalGenerator::new(params.clone(), 3);
    let bp = Butterworth::bandpass(9, 0.5, 45.0, SAMPLE_RATE).expect("designs");
    let nt = notch_filter(50.0, 30.0, SAMPLE_RATE).expect("designs");

    let mu_power = |chunk: &eeg::types::Chunk| {
        let c3 = chunk.channel(Electrode::C3.channel());
        let filtered = nt.filter(&bp.filter(c3));
        dsp::welch::welch_psd(&filtered[250..], SAMPLE_RATE, 256)
            .expect("long enough")
            .band_power(params.alpha_freq - 2.0, params.alpha_freq + 2.0)
    };

    g.set_action(Action::Right);
    let _ = g.generate(400);
    let right = g.generate(3000);
    g.set_action(Action::Idle);
    let _ = g.generate(400);
    let idle = g.generate(3000);
    assert!(
        mu_power(&right) < mu_power(&idle) * 0.75,
        "ERD contrast lost after filtering"
    );
}

#[test]
fn dataset_windows_are_balanced_and_well_formed() {
    let data = quick_data(3);
    let windows = data.windows(130, 25).expect("windows cut");
    let mut counts = [0usize; 3];
    for w in &windows {
        assert_eq!(w.data.len(), CHANNELS * 130);
        assert!(w.data.iter().all(|v| v.is_finite()));
        counts[w.label.label()] += 1;
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}

#[test]
fn stream_comparison_shape_is_stable_across_seeds() {
    for seed in [1, 99, 12345] {
        let c = compare_protocols(10.0, seed);
        assert!(c.lsl.reliability_pct >= c.udp.reliability_pct);
        assert!(c.udp.bandwidth_efficiency_pct > c.lsl.bandwidth_efficiency_pct);
        assert!(c.lsl.sync_error_ms.is_finite() && c.udp.sync_error_ms.is_infinite());
    }
}

// The three checks below were property-based tests; with no proptest crate
// available offline they run the same invariants over 16 seeded random
// cases each, which keeps the coverage and makes every run identical.

/// Any in-range band-pass design is stable and passes its mid-band.
#[test]
fn bandpass_designs_are_stable() {
    let mut rng = StdRng::seed_from_u64(0x5417);
    for case in 0..16 {
        let order = rng.gen_range(1usize..=9);
        let low = rng.gen_range(0.5f64..5.0);
        let width = rng.gen_range(10.0f64..40.0);
        let high = (low + width).min(60.0);
        let f = Butterworth::bandpass(order, low, high, SAMPLE_RATE).expect("valid params");
        assert!(f.is_stable(), "case {case}: unstable at order {order}");
        let mid = (low * high).sqrt();
        let g = f.magnitude_at(mid, SAMPLE_RATE);
        assert!(g > 0.7, "case {case}: mid-band gain {g} at {mid} Hz");
    }
}

/// Window extraction never exceeds the labelled block it came from
/// (checked indirectly: every window's length and finiteness hold for
/// arbitrary window/step combos).
#[test]
fn windowing_is_total_for_any_config() {
    let mut rng = StdRng::seed_from_u64(0x5418);
    let data = quick_data(5);
    for _ in 0..16 {
        let size = rng.gen_range(50usize..200);
        let step = rng.gen_range(5usize..60);
        if let Ok(windows) = data.windows(size, step) {
            for w in windows {
                assert_eq!(w.data.len(), CHANNELS * size);
            }
        }
    }
}

/// The serial protocol decodes whatever garbage precedes a valid frame.
#[test]
fn protocol_resyncs_after_garbage() {
    use arm::protocol::{encode, Command, Decoder};
    let mut rng = StdRng::seed_from_u64(0x5419);
    for case in 0..16 {
        let garbage: Vec<u8> = (0..rng.gen_range(0usize..64))
            .map(|_| rng.gen::<u8>())
            .collect();
        let mut stream_bytes = garbage;
        stream_bytes.extend(encode(Command::Ping));
        let mut decoder = Decoder::new();
        let got = decoder.feed(&stream_bytes);
        // The valid trailing frame is always recovered (garbage may decode
        // into spurious frames, but the Ping must be among the results).
        assert!(got.contains(&Command::Ping), "case {case}: Ping lost");
    }
}
