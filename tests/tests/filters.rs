//! The filter-engine bit-identity contract.
//!
//! PR 10 replaces the per-channel scalar filter walk (`StreamingFilter`
//! per channel, one sample at a time) with `dsp::filterbank::FilterBank`,
//! a compiled channel-interleaved execution form advanced by SIMD lanes.
//! The swap must be **bit-invisible**: no label, joint angle, or filtered
//! sample may move by a single bit when the engine underneath changes, at
//! any thread count and with SIMD dispatch forced off
//! (`COGARM_NO_SIMD=1`). This suite locks that four ways:
//!
//! 1. golden label traces for the monolithic loop and the two-stage
//!    streaming session, committed as fixtures *before* the engine swap
//!    (regenerate deliberately with `COGARM_REGEN_FIXTURES=1 cargo test
//!    -q --test filters`);
//! 2. a golden filtered-sample trace straight off the causal chain — the
//!    rawest view of the filter bits, before windowing or inference can
//!    coarsen a discrepancy into an unchanged label;
//! 3. a golden zero-phase (filtfilt) trace off the offline chain, at 1
//!    and 4 threads;
//! 4. thread-count invariance in-test: a 4-thread pool must reproduce the
//!    1-thread bits exactly (CI additionally runs the whole file at
//!    `COGARM_THREADS=1` and `=4`, and once with `COGARM_NO_SIMD=1`).
//!
//! Pools are explicit (`ExecPool::new`), never `COGARM_THREADS` — tests
//! run concurrently and must not race on process state.

use std::path::PathBuf;
use std::sync::Arc;

use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig, SessionTrace};
use cognitive_arm::preprocess::{FilterSpec, OfflineChain, StreamingChain};
use dsp::biquad::StreamingFilter;
use dsp::butterworth::Butterworth;
use dsp::filterbank::FilterBank;
use dsp::notch::notch_filter;
use eeg::signal::{SignalGenerator, SubjectParams};
use eeg::types::Action;
use eeg::{CHANNELS, SAMPLE_RATE};
use exec::ExecPool;
use integration_tests::quick_trained;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{SessionSpec, StreamSession};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Compares `rendered` against the committed fixture `name`, or rewrites
/// the fixture when `COGARM_REGEN_FIXTURES` is set.
fn check_fixture(name: &str, rendered: &str) {
    let path = fixture_path(name);
    if std::env::var_os("COGARM_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixtures dir")).expect("mkdir");
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {name} ({e}); run with COGARM_REGEN_FIXTURES=1")
    });
    assert_eq!(
        committed, rendered,
        "{name}: the filter path no longer reproduces its committed golden trace — \
         the engine swap moved bits; the compiled filter bank must be bit-identical \
         to the scalar per-channel runners it replaces"
    );
}

/// Renders a session trace: one line per label with the timestamp and the
/// three joint angles as raw f64 bits (hex) plus the label index.
fn render_session_trace(header: &str, trace: &SessionTrace) -> String {
    let mut out = format!("# {header}: <t f64 bits> <label> <lift wrist grip f64 bits>\n");
    for (l, j) in trace.labels.iter().zip(&trace.joints) {
        out.push_str(&format!(
            "{:016x} {} {:016x} {:016x} {:016x}\n",
            l.t.to_bits(),
            l.label,
            j.1.to_bits(),
            j.2.to_bits(),
            j.3.to_bits()
        ));
    }
    out
}

/// The monolithic closed-loop label trace over `threads` (explicit pool).
fn mono_trace(threads: usize) -> SessionTrace {
    let artifacts = quick_trained(21, 21);
    let mut sys = CognitiveArm::with_pool(
        PipelineConfig::default(),
        artifacts.ensemble.clone(),
        21,
        Arc::new(ExecPool::new(threads)),
    );
    sys.set_normalization(artifacts.data.zscores[0].clone());
    sys.set_subject_action(Action::Right);
    sys.run_for(2.0).expect("monolithic run")
}

/// The two-stage streaming session's label trace over `threads`.
fn stream_trace(threads: usize) -> SessionTrace {
    let artifacts = quick_trained(21, 21);
    let spec = SessionSpec::new(PipelineConfig::default(), artifacts.ensemble.clone(), 22)
        .with_normalization(artifacts.data.zscores[0].clone())
        .with_action(Action::Right);
    let mut session =
        StreamSession::new(spec, Arc::new(ExecPool::new(threads)), 4).expect("session assembles");
    session.run_for(2.0).expect("streaming run")
}

#[test]
fn golden_label_traces_survive_the_filter_swap() {
    for (tag, run) in [
        ("mono", mono_trace as fn(usize) -> SessionTrace),
        ("stream", stream_trace as fn(usize) -> SessionTrace),
    ] {
        let trace = run(1);
        // Thread-count invariance, in-test: the filter stage is causal
        // per-channel state advanced in sample order; the pool size can
        // never reach its numerics.
        let on_four = run(4);
        assert_eq!(trace, on_four, "{tag}: thread count changed label bits");
        assert!(!trace.labels.is_empty(), "{tag}: trace is non-trivial");
        check_fixture(
            &format!("trace_filter_{tag}.txt"),
            &render_session_trace(&format!("golden {tag} label trace"), &trace),
        );
    }
}

#[test]
fn golden_causal_chain_samples_survive_the_filter_swap() {
    // The rawest lock: every filtered sample off the causal chain, as raw
    // f32 bits, over a seeded synthetic recording. 256 samples × 16
    // channels, one line per sample instant.
    let mut g = SignalGenerator::new(SubjectParams::sampled(7), 11);
    let chunk = g.generate_action(Action::Left, 256);
    let per = chunk.samples;
    let mut chain = StreamingChain::new(&FilterSpec::default()).expect("default spec designs");
    let mut out = String::from("# golden causal chain trace: <16 channel f32 bits per sample>\n");
    for i in 0..per {
        let mut s = [0.0f32; CHANNELS];
        for (ch, v) in s.iter_mut().enumerate() {
            *v = chunk.data[ch * per + i];
        }
        chain.step(&mut s);
        for (ch, &v) in s.iter().enumerate() {
            if ch > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{:08x}", v.to_bits()));
        }
        out.push('\n');
    }
    check_fixture("trace_filter_chain.txt", &out);
}

/// One property-sweep case: `channels` parallel chains of a
/// `order`-prototype band-pass followed by the 50 Hz notch, driven with
/// seeded noise laced with adversarial values — denormals, ±0.0, and NaN
/// (which must poison exactly the lanes it entered, bit-for-bit).
/// Returns the bank's output bits after asserting them identical to the
/// scalar per-channel `StreamingFilter` composition.
fn sweep_case(order: usize, channels: usize, seed: u64) -> Vec<u32> {
    let bp = Butterworth::bandpass(order, 0.5, 45.0, SAMPLE_RATE).expect("bandpass designs");
    let nt = notch_filter(50.0, 30.0, SAMPLE_RATE).expect("notch designs");

    let frames = 160;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data: Vec<f32> = (0..frames * channels)
        .map(|_| rng.gen_range(-40.0f32..40.0))
        .collect();
    let specials = [
        0.0f32,
        -0.0,
        f32::from_bits(1),              // smallest positive denormal
        f32::from_bits(0x8000_0001),    // smallest negative denormal
        f32::MIN_POSITIVE / 2.0,        // mid-range denormal
        f32::NAN,
    ];
    // Sprinkle specials over the back half so every lane first builds up
    // real state, then meets each adversarial value.
    for (k, v) in data.iter_mut().skip(frames * channels / 2).step_by(11).enumerate() {
        *v = specials[k % specials.len()];
    }

    let mut scalar_bp: Vec<StreamingFilter> =
        (0..channels).map(|_| StreamingFilter::new(bp.clone())).collect();
    let mut scalar_nt: Vec<StreamingFilter> =
        (0..channels).map(|_| StreamingFilter::new(nt.clone())).collect();
    let want: Vec<u32> = data
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let ch = i % channels;
            scalar_nt[ch].step(scalar_bp[ch].step(x)).to_bits()
        })
        .collect();

    let mut bank = FilterBank::new(channels, &[&bp, &nt]);
    bank.process_frames(&mut data);
    let got: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        want, got,
        "order {order} channels {channels} seed {seed} simd {}: \
         bank diverged from the scalar streaming chains",
        bank.is_simd()
    );
    got
}

#[test]
fn bank_matches_scalar_chains_across_shapes_and_adversarial_inputs() {
    let orders = [1usize, 2, 5, 9];
    let channel_counts = [1usize, 3, 7, 8, 9, 16, 33];
    let cases: Vec<(usize, usize, u64)> = orders
        .iter()
        .flat_map(|&o| channel_counts.iter().map(move |&c| (o, c, 1000 + o as u64 * 64 + c as u64)))
        .collect();
    // The sweep itself runs per-case; fanning cases over 1- and 4-thread
    // pools additionally locks that concurrent bank execution cannot
    // couple work items.
    let on_one = ExecPool::new(1).par_map(&cases, |&(o, c, s)| sweep_case(o, c, s));
    let on_four = ExecPool::new(4).par_map(&cases, |&(o, c, s)| sweep_case(o, c, s));
    assert_eq!(on_one, on_four, "thread count changed sweep bits");
    // NaN actually reached the filters (the poisoning is non-trivial).
    let saw_nan = on_one
        .iter()
        .any(|bits| bits.iter().any(|&b| f32::from_bits(b).is_nan()));
    assert!(saw_nan, "sweep never produced a NaN output");
}

#[test]
fn golden_offline_chain_survives_the_filter_swap() {
    // The zero-phase (filtfilt) path, locked at 1 and 4 threads: channels
    // are independent work items, so the pool size must be invisible.
    let mut g = SignalGenerator::new(SubjectParams::sampled(7), 13);
    let chunk = g.generate_action(Action::Idle, 256);
    let per = chunk.samples;
    let mut filtered = chunk.clone();
    OfflineChain::with_pool(&FilterSpec::default(), Arc::new(ExecPool::new(1)))
        .expect("default spec designs")
        .apply(&mut filtered)
        .expect("offline chain applies");
    let mut on_four = chunk.clone();
    OfflineChain::with_pool(&FilterSpec::default(), Arc::new(ExecPool::new(4)))
        .expect("default spec designs")
        .apply(&mut on_four)
        .expect("offline chain applies");
    assert_eq!(
        filtered.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        on_four.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "thread count changed offline chain bits"
    );

    let mut out = String::from("# golden offline chain trace: <16 channel f32 bits per sample>\n");
    for i in 0..per {
        for ch in 0..CHANNELS {
            if ch > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{:08x}", filtered.data[ch * per + i].to_bits()));
        }
        out.push('\n');
    }
    check_fixture("trace_filter_offline.txt", &out);
}
