//! The filter-engine bit-identity contract.
//!
//! PR 10 replaces the per-channel scalar filter walk (`StreamingFilter`
//! per channel, one sample at a time) with `dsp::filterbank::FilterBank`,
//! a compiled channel-interleaved execution form advanced by SIMD lanes.
//! The swap must be **bit-invisible**: no label, joint angle, or filtered
//! sample may move by a single bit when the engine underneath changes, at
//! any thread count and with SIMD dispatch forced off
//! (`COGARM_NO_SIMD=1`). This suite locks that four ways:
//!
//! 1. golden label traces for the monolithic loop and the two-stage
//!    streaming session, committed as fixtures *before* the engine swap
//!    (regenerate deliberately with `COGARM_REGEN_FIXTURES=1 cargo test
//!    -q --test filters`);
//! 2. a golden filtered-sample trace straight off the causal chain — the
//!    rawest view of the filter bits, before windowing or inference can
//!    coarsen a discrepancy into an unchanged label;
//! 3. a golden zero-phase (filtfilt) trace off the offline chain, at 1
//!    and 4 threads;
//! 4. thread-count invariance in-test: a 4-thread pool must reproduce the
//!    1-thread bits exactly (CI additionally runs the whole file at
//!    `COGARM_THREADS=1` and `=4`, and once with `COGARM_NO_SIMD=1`).
//!
//! Pools are explicit (`ExecPool::new`), never `COGARM_THREADS` — tests
//! run concurrently and must not race on process state.

use std::path::PathBuf;
use std::sync::Arc;

use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig, SessionTrace};
use cognitive_arm::preprocess::{FilterSpec, OfflineChain, StreamingChain};
use eeg::signal::{SignalGenerator, SubjectParams};
use eeg::types::Action;
use eeg::CHANNELS;
use exec::ExecPool;
use integration_tests::quick_trained;
use serve::{SessionSpec, StreamSession};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Compares `rendered` against the committed fixture `name`, or rewrites
/// the fixture when `COGARM_REGEN_FIXTURES` is set.
fn check_fixture(name: &str, rendered: &str) {
    let path = fixture_path(name);
    if std::env::var_os("COGARM_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixtures dir")).expect("mkdir");
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {name} ({e}); run with COGARM_REGEN_FIXTURES=1")
    });
    assert_eq!(
        committed, rendered,
        "{name}: the filter path no longer reproduces its committed golden trace — \
         the engine swap moved bits; the compiled filter bank must be bit-identical \
         to the scalar per-channel runners it replaces"
    );
}

/// Renders a session trace: one line per label with the timestamp and the
/// three joint angles as raw f64 bits (hex) plus the label index.
fn render_session_trace(header: &str, trace: &SessionTrace) -> String {
    let mut out = format!("# {header}: <t f64 bits> <label> <lift wrist grip f64 bits>\n");
    for (l, j) in trace.labels.iter().zip(&trace.joints) {
        out.push_str(&format!(
            "{:016x} {} {:016x} {:016x} {:016x}\n",
            l.t.to_bits(),
            l.label,
            j.1.to_bits(),
            j.2.to_bits(),
            j.3.to_bits()
        ));
    }
    out
}

/// The monolithic closed-loop label trace over `threads` (explicit pool).
fn mono_trace(threads: usize) -> SessionTrace {
    let artifacts = quick_trained(21, 21);
    let mut sys = CognitiveArm::with_pool(
        PipelineConfig::default(),
        artifacts.ensemble.clone(),
        21,
        Arc::new(ExecPool::new(threads)),
    );
    sys.set_normalization(artifacts.data.zscores[0].clone());
    sys.set_subject_action(Action::Right);
    sys.run_for(2.0).expect("monolithic run")
}

/// The two-stage streaming session's label trace over `threads`.
fn stream_trace(threads: usize) -> SessionTrace {
    let artifacts = quick_trained(21, 21);
    let spec = SessionSpec::new(PipelineConfig::default(), artifacts.ensemble.clone(), 22)
        .with_normalization(artifacts.data.zscores[0].clone())
        .with_action(Action::Right);
    let mut session =
        StreamSession::new(spec, Arc::new(ExecPool::new(threads)), 4).expect("session assembles");
    session.run_for(2.0).expect("streaming run")
}

#[test]
fn golden_label_traces_survive_the_filter_swap() {
    for (tag, run) in [
        ("mono", mono_trace as fn(usize) -> SessionTrace),
        ("stream", stream_trace as fn(usize) -> SessionTrace),
    ] {
        let trace = run(1);
        // Thread-count invariance, in-test: the filter stage is causal
        // per-channel state advanced in sample order; the pool size can
        // never reach its numerics.
        let on_four = run(4);
        assert_eq!(trace, on_four, "{tag}: thread count changed label bits");
        assert!(!trace.labels.is_empty(), "{tag}: trace is non-trivial");
        check_fixture(
            &format!("trace_filter_{tag}.txt"),
            &render_session_trace(&format!("golden {tag} label trace"), &trace),
        );
    }
}

#[test]
fn golden_causal_chain_samples_survive_the_filter_swap() {
    // The rawest lock: every filtered sample off the causal chain, as raw
    // f32 bits, over a seeded synthetic recording. 256 samples × 16
    // channels, one line per sample instant.
    let mut g = SignalGenerator::new(SubjectParams::sampled(7), 11);
    let chunk = g.generate_action(Action::Left, 256);
    let per = chunk.samples;
    let mut chain = StreamingChain::new(&FilterSpec::default()).expect("default spec designs");
    let mut out = String::from("# golden causal chain trace: <16 channel f32 bits per sample>\n");
    for i in 0..per {
        let mut s = [0.0f32; CHANNELS];
        for (ch, v) in s.iter_mut().enumerate() {
            *v = chunk.data[ch * per + i];
        }
        chain.step(&mut s);
        for (ch, &v) in s.iter().enumerate() {
            if ch > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{:08x}", v.to_bits()));
        }
        out.push('\n');
    }
    check_fixture("trace_filter_chain.txt", &out);
}

#[test]
fn golden_offline_chain_survives_the_filter_swap() {
    // The zero-phase (filtfilt) path, locked at 1 and 4 threads: channels
    // are independent work items, so the pool size must be invisible.
    let mut g = SignalGenerator::new(SubjectParams::sampled(7), 13);
    let chunk = g.generate_action(Action::Idle, 256);
    let per = chunk.samples;
    let mut filtered = chunk.clone();
    OfflineChain::with_pool(&FilterSpec::default(), Arc::new(ExecPool::new(1)))
        .expect("default spec designs")
        .apply(&mut filtered)
        .expect("offline chain applies");
    let mut on_four = chunk.clone();
    OfflineChain::with_pool(&FilterSpec::default(), Arc::new(ExecPool::new(4)))
        .expect("default spec designs")
        .apply(&mut on_four)
        .expect("offline chain applies");
    assert_eq!(
        filtered.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        on_four.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "thread count changed offline chain bits"
    );

    let mut out = String::from("# golden offline chain trace: <16 channel f32 bits per sample>\n");
    for i in 0..per {
        for ch in 0..CHANNELS {
            if ch > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{:08x}", filtered.data[ch * per + i].to_bits()));
        }
        out.push('\n');
    }
    check_fixture("trace_filter_offline.txt", &out);
}
