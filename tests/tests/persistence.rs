//! The model-persistence suite: round-trip fidelity, golden fixtures and
//! total-reader guarantees for the `.cogm` format.
//!
//! Three layers of protection:
//!
//! 1. **Round-trip property tests** (seeded loops, per the PR 1
//!    convention): `load(save(x)) == x` bit-exactly for forests, genomes
//!    and trained ensembles, and a *loaded* system's label trace equals
//!    the in-memory system's trace at 1 and 4 worker threads.
//! 2. **Golden fixtures** under `tests/fixtures/`: today's writer must
//!    reproduce the committed bytes exactly and today's reader must accept
//!    them, locking the format against silent drift. Regenerate
//!    deliberately with `COGARM_REGEN_FIXTURES=1 cargo test -q --test
//!    persistence` after an intentional format-version bump. The `_v1`
//!    fixtures are **permanent**: they pin the frozen v1 writer and the
//!    total reader's promise to load every format version ever shipped
//!    (plus the canonical v1 → v2 upgrade, byte-for-byte).
//! 3. **Corruption sweeps**: every prefix truncation and every
//!    single-byte flip of a valid artifact must yield a typed
//!    `ModelIoError` — never a panic, never a wrong-but-`Ok` model —
//!    over both the current (v2, aligned) and legacy (v1) layouts.

use std::path::PathBuf;

use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig, SessionTrace};
use eeg::types::Action;
use evo::{EvolutionarySearch, Family, SearchSpace};
use integration_tests::quick_trained;
use ml::ensemble::{Ensemble, ForestClassifier, Member, Voting};
use ml::forest::{ForestConfig, RandomForest};
use ml::models::{CnnConfig, ConvSpec, PoolKind};
use ml::optim::OptimizerKind;
use ml::tensor::Tensor;
use model_io::{
    from_bytes, to_bytes, ArmPersist, Container, ModelIoError, Persist, SavedModel,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// --- shared builders ---------------------------------------------------------

/// Deterministic toy training data (separable; same shape forest training
/// sees after feature extraction).
fn toy_rows(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..n {
        let row: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        ys.push(usize::from(row[0] > 0.0) + usize::from(row[1] > 0.0));
        xs.push(row);
    }
    (xs, ys)
}

fn toy_forest(seed: u64, n_estimators: usize, max_depth: Option<usize>) -> RandomForest {
    let (xs, ys) = toy_rows(80, seed);
    RandomForest::fit(
        ForestConfig {
            n_estimators,
            max_depth,
            min_samples_split: 2,
            classes: 3,
            seed,
        },
        &xs,
        &ys,
    )
    .expect("toy forest fits")
}

/// A small but fully persistable closed-loop artifact (forest-only
/// ensemble), cheap enough that exhaustive corruption sweeps stay fast.
fn small_saved_model() -> SavedModel {
    let forest = toy_forest(5, 6, Some(5));
    let ensemble = Ensemble::new(
        vec![Member::Forest(ForestClassifier::new(forest, 90))],
        Voting::Soft,
    );
    SavedModel {
        pipeline: PipelineConfig::default(),
        ensemble,
        normalization: None,
    }
}

fn assert_traces_identical(a: &SessionTrace, b: &SessionTrace, context: &str) {
    assert_eq!(a.labels.len(), b.labels.len(), "{context}: label counts");
    for (x, y) in a.labels.iter().zip(&b.labels) {
        assert!(
            x.t.to_bits() == y.t.to_bits() && x.label == y.label,
            "{context}: label trace diverged at t={}",
            x.t
        );
    }
    assert_eq!(a.joints.len(), b.joints.len(), "{context}: joint counts");
    for (x, y) in a.joints.iter().zip(&b.joints) {
        assert!(
            x.1.to_bits() == y.1.to_bits()
                && x.2.to_bits() == y.2.to_bits()
                && x.3.to_bits() == y.3.to_bits(),
            "{context}: joint trajectory diverged"
        );
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cogm-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

// --- round-trip property tests (seeded loops) --------------------------------

#[test]
fn forests_round_trip_bit_exactly() {
    for seed in 0..6u64 {
        let forest = toy_forest(seed, 3 + seed as usize, [None, Some(4)][seed as usize % 2]);
        let bytes = to_bytes(&forest).expect("serializes");
        let back: RandomForest = from_bytes(&bytes).expect("deserializes");
        assert_eq!(back, forest, "seed {seed}");
        // Bit-exact predictions, not just structural equality.
        let (probe, _) = toy_rows(10, seed ^ 0xFF);
        for row in &probe {
            let a = forest.predict_proba(row);
            let b = back.predict_proba(row);
            assert!(
                a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "seed {seed}: probabilities diverged"
            );
        }
    }
}

#[test]
fn genomes_round_trip_across_all_families() {
    for family in [Family::Cnn, Family::Lstm, Family::Transformer, Family::Forest] {
        let space = SearchSpace::new(family);
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..12 {
            let genome = space.sample(&mut rng);
            let back = from_bytes(&to_bytes(&genome).expect("serializes")).expect("deserializes");
            assert_eq!(genome, back, "{family} sample {i}");
        }
    }
}

#[test]
fn ensembles_round_trip_bit_exactly() {
    for seed in 0..3u64 {
        let forest = toy_forest(seed, 4, Some(4));
        let ensemble = Ensemble::new(
            vec![Member::Forest(ForestClassifier::new(forest, 90 + seed as usize))],
            [Voting::Soft, Voting::Hard][seed as usize % 2],
        );
        let back: Ensemble = from_bytes(&to_bytes(&ensemble).expect("serializes")).unwrap();
        assert_eq!(back, ensemble, "seed {seed}");
    }
}

#[test]
fn trained_cnn_transformer_ensemble_round_trips() {
    let artifacts = quick_trained(21, 21);
    let bytes = to_bytes(&artifacts.ensemble).expect("serializes");
    let back: Ensemble = from_bytes(&bytes).expect("deserializes");
    assert_eq!(back, artifacts.ensemble);
    assert_eq!(back.name(), artifacts.ensemble.name());
    assert_eq!(back.param_count(), artifacts.ensemble.param_count());
}

#[test]
fn custom_members_are_refused_with_a_typed_error() {
    struct Stub;
    impl ml::ensemble::Classifier for Stub {
        fn predict_proba_window(&self, _w: &[f32], _c: usize, _l: usize) -> Vec<f32> {
            vec![1.0, 0.0, 0.0]
        }
        fn window(&self) -> usize {
            4
        }
        fn name(&self) -> String {
            "stub".into()
        }
        fn param_count(&self) -> usize {
            0
        }
        fn clone_box(&self) -> Box<dyn ml::ensemble::Classifier> {
            Box::new(Stub)
        }
    }
    let ensemble = Ensemble::new(vec![Member::Custom(Box::new(Stub))], Voting::Soft);
    assert!(matches!(
        to_bytes(&ensemble).unwrap_err(),
        ModelIoError::UnsupportedMember { .. }
    ));
}

/// The acceptance criterion: a loaded model's label trace over a recorded
/// window equals the in-memory model's trace, at 1 and at 4 threads.
#[test]
fn loaded_model_trace_matches_in_memory_trace_across_thread_counts() {
    let artifacts = quick_trained(33, 33);
    let path = temp_path("trained.cogm");

    let run = |mut system: CognitiveArm| -> SessionTrace {
        system.set_normalization(artifacts.data.zscores[0].clone());
        system.set_subject_action(Action::Right);
        system.run_for(2.0).expect("runs")
    };

    // Save from a fresh single-threaded system, before any samples flow.
    let config = PipelineConfig {
        threads: Some(1),
        ..PipelineConfig::default()
    };
    let system = CognitiveArm::new(config, artifacts.ensemble.clone(), 33);
    system.save_model(&path).expect("saves");
    let reference = run(system);
    assert!(!reference.labels.is_empty(), "reference run emitted labels");

    // Loaded artifact, same thread count.
    let loaded = CognitiveArm::load_model(&path, 33).expect("loads");
    assert_traces_identical(&reference, &run(loaded), "loaded @1 thread");

    // Loaded artifact, different thread count: the exec substrate keeps
    // thread count out of the numerics, so the trace must still match.
    let mut saved = SavedModel::load(&path).expect("loads");
    saved.pipeline.threads = Some(4);
    assert_traces_identical(&reference, &run(saved.into_system(33)), "loaded @4 threads");
}

#[test]
fn saved_model_preserves_normalization_and_config() {
    let artifacts = quick_trained(21, 21);
    let path = temp_path("with-norm.cogm");
    let mut system = CognitiveArm::new(PipelineConfig::default(), artifacts.ensemble.clone(), 21);
    system.set_normalization(artifacts.data.zscores[0].clone());
    system.save_model(&path).expect("saves");

    let saved = SavedModel::load(&path).expect("loads");
    assert_eq!(saved.pipeline, PipelineConfig::default());
    assert_eq!(saved.normalization.as_ref(), system.normalization());
    assert_eq!(&saved.ensemble, system.ensemble());
}

// --- zero-copy load path -----------------------------------------------------

/// The zero-copy loader must produce a model structurally identical to the
/// streaming loader's, on both a trained artifact and the small fixture
/// model.
#[test]
fn zero_copy_load_matches_streamed_load() {
    let artifacts = quick_trained(21, 21);
    let path = temp_path("zero-copy.cogm");
    let mut system = CognitiveArm::new(PipelineConfig::default(), artifacts.ensemble.clone(), 21);
    system.set_normalization(artifacts.data.zscores[0].clone());
    system.save_model(&path).expect("saves");

    let streamed = SavedModel::load(&path).expect("streamed load");
    let zero_copy = SavedModel::load_zero_copy(&path).expect("zero-copy load");
    assert_eq!(streamed, zero_copy);

    let small = small_saved_model();
    let small_path = temp_path("zero-copy-small.cogm");
    small.save(&small_path).expect("saves");
    assert_eq!(
        SavedModel::load_zero_copy(&small_path).expect("loads"),
        small
    );
}

/// A zero-copy-loaded system's label trace must be bit-identical to the
/// in-memory system's — the acceptance bar for the whole fast path.
#[test]
fn zero_copy_loaded_model_reproduces_traces_bitwise() {
    let artifacts = quick_trained(33, 33);
    let path = temp_path("zero-copy-trace.cogm");
    let run = |mut system: CognitiveArm| -> SessionTrace {
        system.set_normalization(artifacts.data.zscores[0].clone());
        system.set_subject_action(Action::Left);
        system.run_for(2.0).expect("runs")
    };
    let system = CognitiveArm::new(PipelineConfig::default(), artifacts.ensemble.clone(), 33);
    system.save_model(&path).expect("saves");
    let reference = run(system);
    assert!(!reference.labels.is_empty());
    let loaded = SavedModel::load_zero_copy(&path).expect("loads").into_system(33);
    assert_traces_identical(&reference, &run(loaded), "zero-copy loaded");
}

/// The mmap-backed weight image is held to the same trace-level bar as
/// every other loader: a model decoded through the shared image — from a
/// v2 file directly and from a v1 file via the in-memory upgrade — must
/// reproduce the in-memory system's label trace bit-for-bit at 1 and 4
/// worker threads.
#[test]
fn weight_image_models_reproduce_traces_across_thread_counts() {
    let artifacts = quick_trained(33, 33);
    let v2_path = temp_path("image-trace.cogm");
    let v1_path = temp_path("image-trace-v1.cogm");
    let run = |mut system: CognitiveArm| -> SessionTrace {
        system.set_normalization(artifacts.data.zscores[0].clone());
        system.set_subject_action(Action::Right);
        system.run_for(2.0).expect("runs")
    };
    let config = PipelineConfig {
        threads: Some(1),
        ..PipelineConfig::default()
    };
    let system = CognitiveArm::new(config, artifacts.ensemble.clone(), 33);
    system.save_model(&v2_path).expect("saves");
    let reference = run(system);
    assert!(!reference.labels.is_empty(), "reference run emitted labels");

    let saved = SavedModel::load(&v2_path).expect("loads");
    saved
        .to_container()
        .expect("persistable")
        .save_v1(&v1_path)
        .expect("saves v1");

    for (path, label) in [(&v2_path, "v2 image"), (&v1_path, "v1-upgraded image")] {
        let image = model_io::WeightImage::open(path).expect("image opens");
        let mut model = image.decode().expect("image decodes");
        assert_traces_identical(
            &reference,
            &run(model.clone().into_system(33)),
            &format!("{label} @1 thread"),
        );
        model.pipeline.threads = Some(4);
        assert_traces_identical(
            &reference,
            &run(model.into_system(33)),
            &format!("{label} @4 threads"),
        );
    }
}

/// The zero-copy loader is held to the same total-reader bar as the
/// container parser: every truncation and every byte flip of a saved
/// model is a typed error, never a panic or a wrong-but-`Ok` model.
#[test]
fn zero_copy_loader_survives_the_corruption_sweep() {
    let bytes = small_saved_model()
        .to_container()
        .expect("persistable")
        .to_file_bytes();
    assert!(SavedModel::from_file_bytes(&bytes).is_ok());
    for cut in 0..bytes.len() {
        assert!(
            SavedModel::from_file_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes accepted"
        );
    }
    for i in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0xFF;
        assert!(
            SavedModel::from_file_bytes(&flipped).is_err(),
            "flip at byte {i} accepted"
        );
    }
}

// --- golden fixtures ---------------------------------------------------------

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// The canonical fixture artifacts. Each returns a complete `.cogm` file
/// image; everything feeding them is seeded, so the bytes are identical on
/// every host and thread count.
fn golden_artifacts() -> Vec<(&'static str, Vec<u8>)> {
    let tensor = {
        let mut rng = StdRng::seed_from_u64(7);
        Tensor::uniform(vec![4, 3], 0.5, &mut rng)
    };
    let forest = toy_forest(11, 3, Some(4));
    let genome = evo::Genome::Cnn {
        config: CnnConfig {
            convs: vec![ConvSpec {
                filters: 8,
                kernel: 3,
                stride: 2,
            }],
            pool: PoolKind::Max,
            window: 100,
            channels: 16,
            dropout: 0.25,
        },
        optimizer: OptimizerKind::Adam { lr: 2e-3 },
    };
    let model = small_saved_model();

    let single = |tag: [u8; 4], value: &dyn erased::AnyPersist| -> Vec<u8> {
        let mut c = Container::new();
        value.add_to(&mut c, tag);
        c.to_file_bytes()
    };
    vec![
        ("tensor.cogm", single(*b"TENS", &tensor)),
        ("forest.cogm", single(*b"FRST", &forest)),
        ("genome.cogm", single(*b"GENO", &genome)),
        (
            "model.cogm",
            model.to_container().expect("persistable").to_file_bytes(),
        ),
    ]
}

/// Permanent v1-format fixtures: the frozen v1 writer
/// (`to_file_bytes_v1`) must keep producing these bytes, and the total
/// reader must keep accepting them, forever — they are the contract that
/// pre-v2 artifacts in the field never need re-saving.
fn golden_v1_artifacts() -> Vec<(&'static str, Vec<u8>)> {
    let forest = toy_forest(11, 3, Some(4));
    let forest_v1 = {
        let mut c = Container::new();
        c.add(*b"FRST", &forest).expect("fixture serializes");
        c.to_file_bytes_v1()
    };
    let model_v1 = small_saved_model()
        .to_container()
        .expect("persistable")
        .to_file_bytes_v1();
    vec![("forest_v1.cogm", forest_v1), ("model_v1.cogm", model_v1)]
}

/// Tiny object-safe shim so `golden_artifacts` can treat heterogeneous
/// `Persist` values uniformly.
mod erased {
    use model_io::{Container, Persist};

    pub trait AnyPersist {
        fn add_to(&self, c: &mut Container, tag: [u8; 4]);
    }

    impl<T: Persist> AnyPersist for T {
        fn add_to(&self, c: &mut Container, tag: [u8; 4]) {
            c.add(tag, self).expect("fixture serializes");
        }
    }
}

#[test]
fn golden_fixtures_are_reproduced_byte_for_byte() {
    let regen = std::env::var_os("COGARM_REGEN_FIXTURES").is_some();
    for (name, bytes) in golden_artifacts().into_iter().chain(golden_v1_artifacts()) {
        let path = fixture_path(name);
        if regen {
            std::fs::create_dir_all(path.parent().expect("fixtures dir")).expect("mkdir");
            std::fs::write(&path, &bytes).expect("write fixture");
            continue;
        }
        let committed = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("missing fixture {name} ({e}); run with COGARM_REGEN_FIXTURES=1")
        });
        assert_eq!(
            committed, bytes,
            "{name}: writer no longer reproduces the committed fixture — \
             this is a format change; bump FORMAT_VERSION and regenerate deliberately"
        );
    }
}

#[test]
fn golden_fixtures_are_accepted_by_the_reader() {
    let tensor_file = Container::load(fixture_path("tensor.cogm")).expect("tensor fixture parses");
    let tensor: Tensor = tensor_file.get(*b"TENS").expect("tensor decodes");
    assert_eq!(tensor.shape(), &[4, 3]);

    let forest: RandomForest = Container::load(fixture_path("forest.cogm"))
        .expect("forest fixture parses")
        .get(*b"FRST")
        .expect("forest decodes");
    assert_eq!(forest, toy_forest(11, 3, Some(4)));

    let genome: evo::Genome = Container::load(fixture_path("genome.cogm"))
        .expect("genome fixture parses")
        .get(*b"GENO")
        .expect("genome decodes");
    assert_eq!(genome.window(), 100);

    let model = SavedModel::from_container(
        &Container::load(fixture_path("model.cogm")).expect("model fixture parses"),
    )
    .expect("model decodes");
    assert_eq!(model, small_saved_model());

    // The zero-copy loader must accept the committed fixture and agree
    // with the streaming reader on it.
    let zero_copy =
        SavedModel::load_zero_copy(fixture_path("model.cogm")).expect("zero-copy decodes");
    assert_eq!(zero_copy, model);
}

/// The permanent v1 fixtures must load through every reader, decode to
/// the same model as the v2 fixture, and upgrade **byte-identically** to
/// the committed v2 encoding — the upgrade is canonical, so a v1 file
/// upgraded in memory and the same model saved as v2 are the same image.
#[test]
fn v1_fixtures_load_and_upgrade_bit_identically() {
    let v1 = std::fs::read(fixture_path("model_v1.cogm")).expect("v1 fixture present");
    let v2 = std::fs::read(fixture_path("model.cogm")).expect("v2 fixture present");
    assert_eq!(model_io::image_version(&v1).expect("v1 envelope"), 1);
    assert_eq!(model_io::image_version(&v2).expect("v2 envelope"), 2);

    // The streaming reader accepts the legacy layout directly.
    let model =
        SavedModel::from_container(&Container::from_file_bytes(&v1).expect("v1 parses"))
            .expect("v1 decodes");
    assert_eq!(model, small_saved_model());

    // Canonical upgrade: re-encoding the v1 bytes as v2 reproduces the
    // committed v2 fixture exactly (and v2 is a fixed point).
    let upgraded = model_io::upgrade_file_bytes(&v1).expect("upgrades");
    assert_eq!(upgraded, v2, "v1 upgrade is not canonical");
    assert_eq!(model_io::upgrade_file_bytes(&v2).expect("re-encodes"), v2);

    // The weight image runs the same upgrade internally: both fixtures
    // intern to one content hash and decode to the same model.
    let from_v1 = model_io::WeightImage::from_bytes(&v1).expect("v1 image");
    let from_v2 = model_io::WeightImage::from_bytes(&v2).expect("v2 image");
    assert_eq!(from_v1.source_version(), 1);
    assert_eq!(from_v2.source_version(), 2);
    assert_eq!(from_v1.content_hash(), from_v2.content_hash());
    assert_eq!(from_v1.decode().expect("v1 image decodes"), model);
    assert_eq!(from_v2.decode().expect("v2 image decodes"), model);
}

// --- corruption and truncation sweeps ----------------------------------------

/// Every prefix truncation of a valid saved model must fail with a typed
/// error — exercised on a complete `CognitiveArm` artifact.
#[test]
fn every_truncation_of_a_saved_model_errors() {
    let bytes = small_saved_model()
        .to_container()
        .expect("persistable")
        .to_file_bytes();
    for cut in 0..bytes.len() {
        match Container::from_file_bytes(&bytes[..cut]) {
            Err(_) => {}
            Ok(c) => {
                // A shorter valid container is impossible: the checksum
                // covers length-bearing structure. Reaching here means the
                // reader accepted corrupt input.
                panic!(
                    "truncation to {cut}/{} bytes parsed as sections {:?}",
                    bytes.len(),
                    c.tags()
                );
            }
        }
    }
}

/// Every single-byte flip of a valid saved model must fail with a typed
/// error (the CRC catches everything past the magic/version header; the
/// header checks catch the rest). No flip may panic or yield `Ok`.
#[test]
fn every_byte_flip_of_a_saved_model_errors() {
    let bytes = small_saved_model()
        .to_container()
        .expect("persistable")
        .to_file_bytes();
    let mut kinds = [0usize; 3]; // magic/version, checksum, other
    for i in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0xFF;
        match Container::from_file_bytes(&flipped) {
            Err(ModelIoError::BadMagic { .. }) | Err(ModelIoError::UnsupportedVersion { .. }) => {
                kinds[0] += 1;
            }
            Err(ModelIoError::ChecksumMismatch { .. }) => kinds[1] += 1,
            Err(_) => kinds[2] += 1,
            Ok(_) => panic!("flip at byte {i} went undetected"),
        }
    }
    assert_eq!(kinds[0], 6, "4 magic + 2 version bytes");
    assert!(kinds[1] >= bytes.len() - 8, "CRC catches the body: {kinds:?}");
}

/// Flips must also be caught when they land *inside a section payload* and
/// the file is then fed to the full model decoder (not just the container
/// parser).
#[test]
fn flipped_payloads_never_produce_a_wrong_but_ok_model() {
    let container = small_saved_model().to_container().expect("persistable");
    let bytes = container.to_file_bytes();
    for i in (0..bytes.len()).step_by(3) {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0x10;
        let result =
            Container::from_file_bytes(&flipped).and_then(|c| SavedModel::from_container(&c));
        assert!(result.is_err(), "flip at byte {i} produced an Ok model");
    }
}

/// Truncations and flips on the committed golden fixtures — both format
/// generations — so the sweep also covers bytes written by *past*
/// versions of the writer, and the v1-upgrading [`model_io::WeightImage`]
/// path is held to the same total-reader bar as the container parser.
#[test]
fn fixture_corruption_sweep() {
    for name in ["forest.cogm", "forest_v1.cogm"] {
        let bytes = std::fs::read(fixture_path(name)).expect("fixture present");
        for cut in 0..bytes.len() {
            assert!(
                Container::from_file_bytes(&bytes[..cut]).is_err(),
                "{name} truncation to {cut} accepted"
            );
            assert!(
                model_io::WeightImage::from_bytes(&bytes[..cut]).is_err(),
                "{name} truncation to {cut} accepted as a weight image"
            );
        }
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            assert!(
                Container::from_file_bytes(&flipped).is_err(),
                "{name} flip at {i} accepted"
            );
            assert!(
                model_io::WeightImage::from_bytes(&flipped).is_err(),
                "{name} flip at {i} accepted as a weight image"
            );
        }
    }
}

/// A structurally valid file whose pipeline section carries an
/// undesignable filter must be a typed error — `CognitiveArm::new` would
/// otherwise panic on it after loading.
#[test]
fn hostile_filter_spec_is_rejected_at_load_time() {
    let mut model = small_saved_model();
    model.pipeline.filter.low_hz = 90.0; // above the 45 Hz high edge
    model.pipeline.filter.high_hz = 10.0;
    let bytes = model.to_container().expect("serializes").to_file_bytes();
    let err = Container::from_file_bytes(&bytes)
        .and_then(|c| SavedModel::from_container(&c))
        .unwrap_err();
    assert!(
        matches!(err, ModelIoError::Malformed { .. }),
        "expected Malformed, got {err}"
    );
}

#[test]
fn missing_and_empty_files_are_typed_errors() {
    assert!(matches!(
        SavedModel::load(temp_path("does-not-exist.cogm")).unwrap_err(),
        ModelIoError::Io(_)
    ));
    let path = temp_path("empty.cogm");
    std::fs::write(&path, []).expect("write empty");
    assert!(matches!(
        SavedModel::load(&path).unwrap_err(),
        ModelIoError::Truncated { .. }
    ));
}

/// A structurally valid, CRC-clean container carrying a CSR matrix whose
/// `col_idx` points past `cols` must be a typed error at load time: the
/// sparse kernel trusts those indices, so the reader (and
/// `CsrMatrix::new`) are the boundary that keeps a hostile fixture from
/// becoming an out-of-bounds read.
#[test]
fn hostile_csr_column_index_is_rejected_at_load_time() {
    use ml::sparse::CsrMatrix;
    let encode = |col_idx: Vec<u32>| -> Vec<u8> {
        let mut payload = Vec::new();
        2usize.write_to(&mut payload).unwrap(); // rows
        3usize.write_to(&mut payload).unwrap(); // cols
        vec![0usize, 1, 2].write_to(&mut payload).unwrap(); // row_ptr
        col_idx.write_to(&mut payload).unwrap();
        vec![1.0f32, 2.0].write_to(&mut payload).unwrap(); // values
        let mut container = Container::new();
        container.add(*b"RAWB", &payload).unwrap();
        container.to_file_bytes()
    };
    // Control: the same bytes with in-range indices load fine, so the
    // hostile variant below fails for the right reason.
    let good = Container::from_file_bytes(&encode(vec![1, 2])).expect("envelope");
    let raw: Vec<u8> = good.get(*b"RAWB").expect("payload");
    assert!(from_bytes::<CsrMatrix>(&raw).is_ok(), "control fixture rejected");
    // Forged: column index 3 in a 3-column matrix.
    let bad = Container::from_file_bytes(&encode(vec![1, 3])).expect("envelope is valid");
    let raw: Vec<u8> = bad.get(*b"RAWB").expect("payload");
    let err = from_bytes::<CsrMatrix>(&raw).unwrap_err();
    assert!(
        matches!(err, ModelIoError::Malformed { .. }),
        "expected Malformed, got {err}"
    );
}

/// A structurally valid container whose payload claims absurd lengths must
/// not over-allocate: the forged section is rejected by the checksummed
/// envelope, and a forged *inner* length (valid CRC, hostile payload) is
/// bounded by the actual bytes present.
#[test]
fn forged_inner_lengths_are_rejected_without_allocation() {
    let mut container = Container::new();
    // A "tensor" whose shape claims 2^32 elements but carries none.
    let mut payload = Vec::new();
    vec![1usize << 32].write_to(&mut payload).unwrap();
    Vec::<f32>::new().write_to(&mut payload).unwrap();
    container.add(*b"RAWB", &payload).unwrap();
    let bytes = container.to_file_bytes();
    let parsed = Container::from_file_bytes(&bytes).expect("envelope is valid");
    let raw: Vec<u8> = parsed.get(*b"RAWB").expect("raw bytes round-trip");
    assert!(from_bytes::<Tensor>(&raw).is_err(), "forged tensor accepted");
}

// --- resumable search checkpoints --------------------------------------------

/// A cheap seed-sensitive fitness proxy: any scrambling of the resume
/// state (population, history, RNG position) changes the outcome, so
/// disk-resumed searches matching in-memory ones is a real statement.
struct SeedProxy;

impl evo::Evaluator for SeedProxy {
    fn evaluate(&self, genome: &evo::Genome, seed: u64) -> evo::EvalResult {
        let h = match genome {
            evo::Genome::Forest { config, .. } => config.n_estimators as u64,
            _ => 1,
        };
        let mix = exec::split_seed(seed, h);
        evo::EvalResult {
            accuracy: (mix % 1000) as f64 / 1000.0,
            params: (mix % 100_000) as usize + 1,
        }
    }
}

#[test]
fn mid_search_checkpoints_resume_from_disk_bit_identically() {
    use model_io::SearchCheckpoint;

    let config = evo::EvolutionConfig {
        population: 6,
        generations: 5,
        seed: 41,
        ..evo::EvolutionConfig::default()
    };
    let search = EvolutionarySearch::new(SearchSpace::new(Family::Forest), config);
    let path = temp_path("mid-search.cogm");

    // Uninterrupted reference run, persisting a checkpoint every
    // generation — the deployment loop's shape.
    let mut checkpoints = 0usize;
    let mut persist = |state: &evo::SearchState| {
        SearchCheckpoint::mid_search(config, state.clone())
            .save(&path)
            .expect("checkpoint saves");
        checkpoints += 1;
    };
    let reference = search.run_from(&SeedProxy, search.initial_state(), Some(&mut persist));
    assert_eq!(checkpoints, 4, "one checkpoint per non-final generation");

    // "Crash" after the last checkpoint: reload it from disk and resume.
    let loaded = SearchCheckpoint::load(&path).expect("checkpoint loads");
    assert_eq!(loaded.config, config);
    assert!(loaded.outcome.is_none(), "mid-search checkpoint has no outcome");
    let resume = loaded.resume.expect("mid-search checkpoint resumes");
    assert_eq!(resume.generation, 4);
    let resumed = search.run_from(&SeedProxy, resume, None);
    assert_eq!(resumed, reference, "disk-resumed search diverged");

    // Completed checkpoints round-trip too (the audit shape).
    let done = SearchCheckpoint::completed(config, reference);
    done.save(&path).expect("completed checkpoint saves");
    assert_eq!(SearchCheckpoint::load(&path).expect("loads"), done);
}

#[test]
fn inconsistent_resume_states_are_refused_on_save_and_load() {
    use model_io::SearchCheckpoint;
    let config = evo::EvolutionConfig {
        population: 4,
        generations: 3,
        seed: 8,
        ..evo::EvolutionConfig::default()
    };
    let search = EvolutionarySearch::new(SearchSpace::new(Family::Forest), config);
    let state = search.initial_state();
    let path = temp_path("inconsistent.cogm");

    // Population size disagreeing with the config would panic run_from;
    // the writer must refuse it up front.
    let mut short = state.clone();
    short.population.pop();
    assert!(matches!(
        SearchCheckpoint::mid_search(config, short).save(&path).unwrap_err(),
        ModelIoError::Malformed { .. }
    ));
    let mut overrun = state.clone();
    overrun.generation = 3;
    assert!(matches!(
        SearchCheckpoint::mid_search(config, overrun).save(&path).unwrap_err(),
        ModelIoError::Malformed { .. }
    ));

    // A file hand-crafted around the writer's guard (valid sections, but a
    // config whose population disagrees with the state) must be refused by
    // the reader, not crash the resume path later.
    let mut container = Container::new();
    let mut small = config;
    small.population = 3;
    container.add(model_io::tags::EVO_CONFIG, &small).unwrap();
    container.add(model_io::tags::EVO_RESUME, &state).unwrap();
    container.save(&path).unwrap();
    assert!(matches!(
        SearchCheckpoint::load(&path).unwrap_err(),
        ModelIoError::Malformed { .. }
    ));
}

#[test]
fn empty_search_checkpoints_are_refused() {
    use model_io::SearchCheckpoint;
    let hollow = SearchCheckpoint {
        config: evo::EvolutionConfig::default(),
        outcome: None,
        resume: None,
    };
    assert!(matches!(
        hollow.save(temp_path("hollow.cogm")).unwrap_err(),
        ModelIoError::Malformed { .. }
    ));
}

#[test]
fn zeroed_rng_state_in_a_checkpoint_is_a_typed_error() {
    let config = evo::EvolutionConfig {
        population: 3,
        generations: 2,
        seed: 9,
        ..evo::EvolutionConfig::default()
    };
    let search = EvolutionarySearch::new(SearchSpace::new(Family::Forest), config);
    let mut state = search.initial_state();
    state.rng_state = [0; 4];
    let bytes = to_bytes(&state).expect("writer does not validate");
    assert!(matches!(
        from_bytes::<evo::SearchState>(&bytes).unwrap_err(),
        ModelIoError::Malformed { .. }
    ));
}

// --- CI hook: determinism against an externally saved artifact ---------------

/// When `COGARM_MODEL` points at an artifact saved by another process (the
/// CI round-trip step), run the determinism check against it: the loaded
/// model must produce identical traces at 1 and 4 worker threads.
#[test]
fn env_model_artifact_is_deterministic_across_thread_counts() {
    let Some(path) = std::env::var_os("COGARM_MODEL") else {
        return; // not running under the CI round-trip step
    };
    let saved = SavedModel::load(&path).expect("COGARM_MODEL artifact loads");
    let run = |threads: usize| -> SessionTrace {
        let mut s = saved.clone();
        s.pipeline.threads = Some(threads);
        let mut system = s.into_system(33);
        system.set_subject_action(Action::Right);
        system.run_for(2.0).expect("runs")
    };
    let single = run(1);
    assert!(!single.labels.is_empty(), "loaded artifact emitted labels");
    assert_traces_identical(&single, &run(4), "env artifact 1 vs 4 threads");
}
