//! Allocation-freeness of the steady-state label tick, enforced with a
//! counting global allocator.
//!
//! The 15 Hz classify-actuate loop is the hottest path in the system;
//! PR 5 rebuilt it so that — once warm — a label tick performs **zero
//! heap allocations** on a 1-thread pool: frames drain without a chunk,
//! the causal filter runs in place, the window flattens into a reused
//! buffer, every ensemble member classifies inside its preallocated
//! scratch lane, and actuation reuses its command buffer.
//!
//! Counting is thread-local, so the assertions hold regardless of what
//! other test threads do; the pool under test is explicitly 1-thread, so
//! all work runs inline on the counting thread (CI's `COGARM_THREADS=4`
//! pass exercises the same code through the determinism suites — the
//! multi-thread pool's job dispatch may allocate, which is why the
//! allocation *contract* is stated at one thread).
//!
//! The streaming session's wire stage (outlet → transport → inlet →
//! dejitter) recycles payload buffers through a packet pool, so the
//! zero-allocation contract now covers the **full** streaming tick:
//! board drain → pooled outlet push → transport → inlet pull → dejitter
//! ring → filter → window → classify → actuate
//! (`full_streaming_tick_is_allocation_free_once_warm` below).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use arm::controller::{Controller, ControllerConfig};
use arm::safety::{SafetyConfig, SafetyGate};
use cognitive_arm::pipeline::{
    CognitiveArm, InferenceHead, LatencyReport, PipelineConfig, SessionTrace,
};
use eeg::types::Action;
use eeg::CHANNELS;
use exec::ExecPool;
use integration_tests::quick_trained;
use ml::ensemble::EnsembleScratch;
use ml::models::CLASSES;
use serve::{SessionSpec, StreamSession};
use stream::clock::SimClock;
use stream::inlet::{Inlet, ReceivedSample};
use stream::transport::{Transport, TransportParams};

/// Counts allocator entries (alloc/realloc/alloc_zeroed) on the current
/// thread. `try_with` keeps TLS teardown safe.
struct CountingAllocator;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
}

fn events() -> u64 {
    ALLOC_EVENTS.try_with(Cell::get).unwrap_or(0)
}

// SAFETY: delegates to `System`; the counter never allocates (const-init
// thread-local `Cell`).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many allocation events it performed on this
/// thread.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = events();
    f();
    events() - before
}

#[test]
fn monolithic_loop_is_allocation_free_once_warm() {
    let artifacts = quick_trained(21, 21);
    let mut system = CognitiveArm::with_pool(
        PipelineConfig::default(),
        artifacts.ensemble.clone(),
        21,
        Arc::new(ExecPool::new(1)),
    );
    system.set_normalization(artifacts.data.zscores[0].clone());
    system.set_subject_action(Action::Right);

    // One trace with capacity for everything this test runs.
    let mut trace = SessionTrace::default();
    trace.labels.reserve(4096);
    trace.joints.reserve(4096);

    // Warm-up: fills the sliding window, grows the flat/command buffers
    // to their steady-state capacities, touches every member's scratch.
    system.run_into(2.0, &mut trace).expect("warm-up runs");

    // Steady state: ~39 label ticks (125 Hz / label_every=8 over 2.5 s),
    // each draining samples, filtering, flattening, classifying both
    // ensemble members and actuating — with zero heap allocations.
    let allocs = count_allocs(|| {
        system.run_into(2.5, &mut trace).expect("measured run");
    });
    assert!(
        !trace.labels.is_empty(),
        "measured segment produced no labels"
    );
    assert_eq!(
        allocs, 0,
        "steady-state monolithic label ticks allocated {allocs} times"
    );
}

#[test]
fn label_tick_head_is_allocation_free_once_warm() {
    // The classify → actuate → record step in isolation — the exact code
    // both the monolithic loop and the streaming inference stage run per
    // label. Driven with alternating windows so the controller actually
    // emits servo frames (the debounce streak builds and moves joints),
    // proving the command/decode buffers are warm too.
    let artifacts = quick_trained(21, 21);
    let pool = ExecPool::new(1);
    let controller = Controller::new(
        ControllerConfig::default(),
        SafetyGate::new(SafetyConfig::default()),
    );
    let mut head = InferenceHead::new(artifacts.ensemble.clone(), controller);
    let mut trace = SessionTrace::default();
    trace.labels.reserve(512);
    trace.joints.reserve(512);
    let mut latency = LatencyReport::default();

    let window_len = CHANNELS * head.ensemble().window();
    let windows: Vec<Vec<f32>> = (0..4)
        .map(|k| {
            (0..window_len)
                .map(|i| ((i + k * 37) as f32 * 0.37).sin())
                .collect()
        })
        .collect();

    // Warm pass over the same windows the measurement replays.
    for (i, w) in windows.iter().cycle().take(16).enumerate() {
        head.step(w, &pool, i as f64, 8, &mut trace, &mut latency)
            .expect("warm step");
    }
    let allocs = count_allocs(|| {
        for (i, w) in windows.iter().cycle().take(16).enumerate() {
            head.step(w, &pool, 100.0 + i as f64, 8, &mut trace, &mut latency)
                .expect("measured step");
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state label ticks allocated {allocs} times"
    );
}

#[test]
fn compressed_label_tick_is_allocation_free_once_warm() {
    // PR 9: compressed models run real execution kernels (CSC/hybrid
    // sparse streaming, batch-stacked int8 GEMM) and those paths keep the
    // zero-allocation contract. Execution formats compile once during
    // warm-up (shared per-matrix caches), and the quantization/transpose
    // scratch in `ExecScratch` is grow-only — so warm compressed label
    // ticks allocate exactly as much as dense ones: nothing.
    for variant in ["pruned_70", "int8_calibrated"] {
        let artifacts = quick_trained(21, 21);
        let mut ensemble = artifacts.ensemble.clone();
        match variant {
            "pruned_70" => {
                ensemble.visit_net_models_mut(|m| ml::compress::prune_global(m, 0.7));
            }
            _ => ensemble.visit_net_models_mut(|m| {
                ml::compress::quantize(m, ml::compress::QuantMode::Calibrated)
                    .expect("dense model quantizes");
            }),
        }
        ensemble.precompile_exec();

        let pool = ExecPool::new(1);
        let controller = Controller::new(
            ControllerConfig::default(),
            SafetyGate::new(SafetyConfig::default()),
        );
        let mut head = InferenceHead::new(ensemble, controller);
        let mut trace = SessionTrace::default();
        trace.labels.reserve(512);
        trace.joints.reserve(512);
        let mut latency = LatencyReport::default();

        let window_len = CHANNELS * head.ensemble().window();
        let windows: Vec<Vec<f32>> = (0..4)
            .map(|k| {
                (0..window_len)
                    .map(|i| ((i + k * 37) as f32 * 0.43).sin())
                    .collect()
            })
            .collect();

        for (i, w) in windows.iter().cycle().take(16).enumerate() {
            head.step(w, &pool, i as f64, 8, &mut trace, &mut latency)
                .expect("warm step");
        }
        let allocs = count_allocs(|| {
            for (i, w) in windows.iter().cycle().take(16).enumerate() {
                head.step(w, &pool, 100.0 + i as f64, 8, &mut trace, &mut latency)
                    .expect("measured step");
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state {variant} label ticks allocated {allocs} times"
        );
    }
}

#[test]
fn full_streaming_tick_is_allocation_free_once_warm() {
    // The tentpole contract: an entire steady-state streaming tick —
    // board drain → pooled payload → outlet push → transport → inlet
    // pull → dejitter ring → causal filter → sliding window → batched
    // classify → actuate → trace — performs zero heap allocations on a
    // 1-thread pool. The packet pool recycles payload vectors through
    // the wire, the dejitter ring has grown to the wire's worst observed
    // reorder distance, and everything downstream was already
    // allocation-free.
    let artifacts = quick_trained(21, 21);
    let spec = SessionSpec::new(PipelineConfig::default(), artifacts.ensemble.clone(), 21)
        .with_normalization(artifacts.data.zscores[0].clone())
        .with_action(Action::Right);
    let mut session =
        StreamSession::new(spec, Arc::new(ExecPool::new(1)), 4).expect("session assembles");

    let mut trace = SessionTrace::default();
    trace.labels.reserve(4096);
    trace.joints.reserve(4096);

    // Warm-up: grows the packet pool to the wire's in-flight depth, the
    // dejitter ring to its worst reorder distance, and every downstream
    // buffer to steady-state capacity. Longer than the measured segment
    // so per-segment scratch (label-period bounds) is covered too.
    session.run_into(3.0, &mut trace).expect("warm-up runs");
    let (allocated_warm, _) = session.pool_stats();
    assert!(allocated_warm > 0, "pool never filled during warm-up");

    let allocs = count_allocs(|| {
        session.run_into(2.0, &mut trace).expect("measured run");
    });
    assert!(
        !trace.labels.is_empty(),
        "measured segment produced no labels"
    );
    assert_eq!(
        allocs, 0,
        "steady-state full streaming ticks allocated {allocs} times"
    );
    let (allocated_after, reused) = session.pool_stats();
    assert_eq!(
        allocated_after, allocated_warm,
        "measured segment allocated fresh payload buffers"
    );
    assert!(reused > 0, "pool was never exercised");
}

#[test]
fn wire_drain_is_allocation_free_once_warm() {
    // The receiving half of the wire — transport poll + inlet pull — used
    // to allocate two fresh vectors per drain. `poll_into`/`pull_into`
    // partition into persistent scratch and move payloads straight
    // through, so once the buffers have grown, draining a burst performs
    // zero heap allocations. (Sending still allocates one payload vector
    // per packet by design — it models a network — which is why the sends
    // sit outside the measured region.)
    let mut transport = Transport::new(TransportParams::lsl(), 9);
    let mut inlet = Inlet::new(SimClock::aligned());
    let mut got: Vec<ReceivedSample> = Vec::new();
    let burst = |transport: &mut Transport, base: f64| {
        for i in 0..64 {
            let t = base + f64::from(i) * 0.008;
            transport.send(vec![0.5; CHANNELS], t, t);
        }
    };

    // Two warm rounds: the first grows the drain buffers, the second
    // exercises the swapped partition scratch too.
    for round in 0..2 {
        burst(&mut transport, f64::from(round));
        got.clear();
        inlet.pull_into(&mut transport, f64::INFINITY, &mut got);
    }

    burst(&mut transport, 10.0);
    let allocs = count_allocs(|| {
        got.clear();
        inlet.pull_into(&mut transport, f64::INFINITY, &mut got);
    });
    assert!(!got.is_empty(), "measured drain delivered nothing");
    assert_eq!(allocs, 0, "steady-state wire drain allocated {allocs} times");
}

#[test]
fn batched_ensemble_call_is_allocation_free_once_warm() {
    // The serving micro-batcher's per-tick call: 16 windows, one batched
    // ensemble classification into a warm scratch arena.
    let artifacts = quick_trained(21, 21);
    let ensemble = &artifacts.ensemble;
    let pool = ExecPool::new(1);
    let mut scratch = EnsembleScratch::new(ensemble);
    let batch = 16;
    let per_window = CHANNELS * ensemble.window();
    let windows: Vec<f32> = (0..batch * per_window)
        .map(|i| (i as f32 * 0.11).cos())
        .collect();
    let mut out = vec![0.0f32; batch * CLASSES];

    // Warm-up grows the scratch to batch capacity and the lane buffers to
    // their steady sizes.
    ensemble.predict_batch_into(&windows, batch, CHANNELS, &pool, &mut scratch, &mut out);
    let allocs = count_allocs(|| {
        ensemble.predict_batch_into(&windows, batch, CHANNELS, &pool, &mut scratch, &mut out);
    });
    assert_eq!(
        allocs, 0,
        "warm batched inference allocated {allocs} times"
    );
}

#[test]
fn filter_bank_tick_is_allocation_free() {
    // The compiled filter bank advances a full label period (8 frames ×
    // 16 channels) through the band-pass + notch cascade without a
    // single allocation — the bank is compiled at build, state is fixed
    // at `sections × lanes`, and dispatch was resolved up front. No
    // warm-up needed: even the first frame must be clean.
    let bp = dsp::butterworth::Butterworth::bandpass(9, 0.5, 45.0, 125.0).expect("bandpass");
    let nt = dsp::notch::notch_filter(50.0, 30.0, 125.0).expect("notch");
    let mut bank = dsp::filterbank::FilterBank::new(CHANNELS, &[&bp, &nt]);
    let mut frame = [0.25f32; CHANNELS];
    let allocs = count_allocs(|| {
        for i in 0..8 {
            frame[i % CHANNELS] = i as f32 * 0.5 - 1.0;
            bank.step_frame(&mut frame);
        }
    });
    assert_eq!(allocs, 0, "filter bank tick allocated {allocs} times");
}

#[test]
fn zero_phase_rerun_is_allocation_free_once_warm() {
    // Re-running offline chains over same-shape recordings must not
    // allocate: `filtfilt_into` draws all working memory from its
    // scratch, and the bank-backed `ZeroPhaseBank` reuses its
    // interleaved extended block.
    let bp = dsp::butterworth::Butterworth::bandpass(9, 0.5, 45.0, 125.0).expect("bandpass");
    let signal: Vec<f32> = (0..400).map(|i| (i as f32 * 0.17).sin() * 12.0).collect();

    let mut out = Vec::new();
    let mut scratch = dsp::filtfilt::FiltfiltScratch::default();
    dsp::filtfilt::filtfilt_into(&bp, &signal, &mut out, &mut scratch).expect("warm-up");
    let allocs = count_allocs(|| {
        dsp::filtfilt::filtfilt_into(&bp, &signal, &mut out, &mut scratch).expect("re-run");
    });
    assert_eq!(allocs, 0, "warm filtfilt_into allocated {allocs} times");

    let mut block: Vec<f32> = (0..4 * 400).map(|i| (i as f32 * 0.07).cos() * 9.0).collect();
    let mut zp = dsp::filtfilt::ZeroPhaseBank::new(&bp, 4);
    zp.apply_channel_major(&mut block, 400).expect("warm-up");
    let allocs = count_allocs(|| {
        zp.apply_channel_major(&mut block, 400).expect("re-run");
    });
    assert_eq!(allocs, 0, "warm zero-phase bank allocated {allocs} times");
}
