//! Integration: the evolutionary search driving real training through the
//! EEG evaluator (Algorithm 1 end to end).

use cognitive_arm::eval::{EegEvaluator, TrainBudget};
use evo::{EvolutionConfig, EvolutionarySearch, Family, Genome, SearchSpace};
use integration_tests::quick_data;

fn tiny_config(seed: u64) -> EvolutionConfig {
    EvolutionConfig {
        population: 4,
        generations: 2,
        accuracy_threshold: 0.8,
        seed,
        ..EvolutionConfig::default()
    }
}

#[test]
fn search_over_cnn_family_produces_usable_front() {
    let evaluator = EegEvaluator::new(quick_data(17), TrainBudget::quick(), None)
        .with_flop_budget(1.5e9);
    let search = EvolutionarySearch::new(SearchSpace::new(Family::Cnn), tiny_config(5));
    let outcome = search.run(&evaluator);

    assert_eq!(outcome.history.len(), 8);
    assert!(!outcome.front.is_empty());
    assert!(
        outcome.best.accuracy > 0.4,
        "best candidate should beat chance: {:?}",
        outcome.best
    );
    // Front candidates must all be CNNs.
    for c in &outcome.front {
        assert!(matches!(c.genome, Genome::Cnn { .. }));
    }
}

#[test]
fn search_over_forest_family_is_fast_and_accurate() {
    let evaluator = EegEvaluator::new(quick_data(19), TrainBudget::quick(), None);
    let search = EvolutionarySearch::new(SearchSpace::new(Family::Forest), tiny_config(7));
    let t0 = std::time::Instant::now();
    let outcome = search.run(&evaluator);
    assert!(
        t0.elapsed().as_secs_f64() < 120.0,
        "forest search took too long"
    );
    assert!(
        outcome.best.accuracy > 0.7,
        "forests should do well on this data: {:?}",
        outcome.best
    );
}

#[test]
fn held_out_subject_never_contributes_to_fitness() {
    // Indirect check: evaluation with a held-out subject still works and
    // produces sane numbers (the direct exclusion is unit-tested; this
    // exercises the full path).
    let evaluator = EegEvaluator::new(quick_data(23), TrainBudget::quick(), Some(1))
        .with_flop_budget(1.5e9);
    let search = EvolutionarySearch::new(SearchSpace::new(Family::Cnn), tiny_config(9));
    let outcome = search.run(&evaluator);
    assert!(outcome.best.accuracy > 0.0);
}

#[test]
fn search_is_deterministic_end_to_end() {
    let run = |seed| {
        let evaluator = EegEvaluator::new(quick_data(29), TrainBudget::quick(), None)
            .with_flop_budget(1.5e9);
        let search = EvolutionarySearch::new(SearchSpace::new(Family::Forest), tiny_config(seed));
        search.run(&evaluator).best
    };
    assert_eq!(run(11), run(11));
}
