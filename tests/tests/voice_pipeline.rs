//! Integration: voice path (audio → VAD → spotter → mode) steering the
//! real-time EEG pipeline.

use arm::controller::ControlMode;
use arm::kinematics::Joint;
use asr::audio::{synth_clip, Command};
use asr::kws::{KeywordSpotter, KwsConfig};
use cognitive_arm::mux::VoiceMux;
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig};
use eeg::types::Action;
use integration_tests::quick_trained;

#[test]
fn spoken_fingers_redirects_intentions_to_the_grip() {
    // Voice side.
    let spotter = KeywordSpotter::train(
        KwsConfig {
            hidden: 32,
            train_per_class: 20,
            epochs: 40,
            ..KwsConfig::default()
        },
        3,
    )
    .expect("spotter trains");
    let mut mux = VoiceMux::new(spotter);

    // EEG side (ensemble from the once-per-process trained-artifact cache).
    let artifacts = quick_trained(55, 4);
    let mut system = CognitiveArm::new(PipelineConfig::default(), artifacts.ensemble.clone(), 55);
    system.set_normalization(artifacts.data.zscores[0].clone());
    system.set_subject_action(Action::Idle);
    system.run_for(2.0).expect("pre-roll");

    // Speak "fingers", wire the recognized mode into the pipeline (the
    // paper runs ASR in a parallel thread; the wiring point is the same).
    let (clip, _, _) = synth_clip(Command::Fingers, 0.03, 404);
    let mode = mux
        .process_clip(&clip)
        .expect("clip processes")
        .expect("keyword recognized");
    assert_eq!(mode, ControlMode::Fingers);
    system.set_mode(mode);

    let grip_before = system.joint(Joint::Grip);
    let lift_before = system.joint(Joint::Lift);
    system.set_subject_action(Action::Right);
    system.run_for(4.0).expect("control phase");
    let grip_moved = (system.joint(Joint::Grip) - grip_before).abs();
    let lift_moved = (system.joint(Joint::Lift) - lift_before).abs();
    assert!(grip_moved > 1.0, "grip should move, moved {grip_moved}");
    assert!(
        lift_moved < 1e-6,
        "lift must be untouched in fingers mode, moved {lift_moved}"
    );
}

#[test]
fn noise_does_not_switch_modes() {
    let spotter = KeywordSpotter::train(
        KwsConfig {
            hidden: 32,
            train_per_class: 15,
            epochs: 30,
            ..KwsConfig::default()
        },
        5,
    )
    .expect("spotter trains");
    let mut mux = VoiceMux::new(spotter);
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(6);
    let noise: Vec<f32> = (0..24000).map(|_| rng.gen_range(-0.04f32..0.04)).collect();
    assert_eq!(mux.process_clip(&noise).expect("processes"), None);
}
