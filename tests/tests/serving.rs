//! Multi-session serving determinism: the serving engine must never let
//! concurrency touch outputs.
//!
//! Three independent guarantees are locked here:
//!
//! 1. **Multiplexing is invisible.** N sessions advanced concurrently by a
//!    `SessionManager` over one pool produce traces bit-identical to N
//!    sequential single-session `CognitiveArm` runs — and bit-identical
//!    across pool sizes (CI runs this suite at `COGARM_THREADS=1` and
//!    `=4`).
//! 2. **Streaming is invisible.** The two-stage streaming pipeline (wire →
//!    dejitter → filter stage ∥ inference stage over a bounded channel)
//!    reproduces the monolithic batch loop's label trace exactly.
//! 3. **Parallel training is invisible.** `train_default_ensemble` fans
//!    its members out on the pool; a 1-thread pool and a 4-thread pool
//!    must train bit-identical ensembles.

use std::sync::Arc;

use cognitive_arm::eval::train_default_ensemble_with;
use cognitive_arm::eval::TrainBudget;
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig, SessionTrace};
use eeg::types::Action;
use exec::ExecPool;
use integration_tests::{quick_data, quick_trained};
use serve::{Scheduling, SessionManager, SessionSpec, StreamSession};
use stream::transport::TransportParams;

/// Subject seeds for the concurrent-session fleet. All sessions share one
/// trained ensemble (the deployment shape: one artifact, many users); the
/// subjects — boards, wire seeds, normalization targets — differ.
const SUBJECTS: [u64; 4] = [21, 22, 23, 24];

fn spec_for(subject: u64) -> SessionSpec {
    let artifacts = quick_trained(21, 21);
    SessionSpec::new(
        PipelineConfig::default(),
        artifacts.ensemble.clone(),
        subject,
    )
    .with_normalization(artifacts.data.zscores[0].clone())
    .with_action(Action::Right)
}

fn assert_identical(context: &str, a: &SessionTrace, b: &SessionTrace) {
    assert_eq!(a.labels.len(), b.labels.len(), "{context}: label counts");
    for (x, y) in a.labels.iter().zip(&b.labels) {
        assert!(
            x.t.to_bits() == y.t.to_bits() && x.label == y.label,
            "{context}: label diverged ({}, {}) vs ({}, {})",
            x.t,
            x.label,
            y.t,
            y.label
        );
    }
    assert_eq!(a.joints.len(), b.joints.len(), "{context}: joint counts");
    for (x, y) in a.joints.iter().zip(&b.joints) {
        assert!(
            x.0.to_bits() == y.0.to_bits()
                && x.1.to_bits() == y.1.to_bits()
                && x.2.to_bits() == y.2.to_bits()
                && x.3.to_bits() == y.3.to_bits(),
            "{context}: joints diverged {x:?} vs {y:?}"
        );
    }
}

/// Reference: each subject run alone, sequentially, through the monolithic
/// batch loop on a single-threaded pool.
fn sequential_reference(seconds: f64) -> Vec<SessionTrace> {
    let artifacts = quick_trained(21, 21);
    SUBJECTS
        .iter()
        .map(|&subject| {
            let mut arm = CognitiveArm::with_pool(
                PipelineConfig::default(),
                artifacts.ensemble.clone(),
                subject,
                Arc::new(ExecPool::new(1)),
            );
            arm.set_normalization(artifacts.data.zscores[0].clone());
            arm.set_subject_action(Action::Right);
            arm.run_for(seconds).expect("reference run")
        })
        .collect()
}

fn manager_traces(threads: usize, streaming: bool, seconds: f64) -> Vec<SessionTrace> {
    let mut manager = SessionManager::new(Arc::new(ExecPool::new(threads)));
    for &subject in &SUBJECTS {
        if streaming {
            manager
                .add_streaming_session(spec_for(subject))
                .expect("admit streaming session");
        } else {
            manager.add_session(spec_for(subject)).expect("admit session");
        }
    }
    manager.run_for(seconds).expect("manager run")
}

#[test]
fn concurrent_batch_sessions_match_sequential_runs_bitwise() {
    let reference = sequential_reference(2.0);
    assert!(
        reference.iter().all(|t| !t.labels.is_empty()),
        "reference produced no labels"
    );
    for threads in [1, 4] {
        let concurrent = manager_traces(threads, false, 2.0);
        for (i, (a, b)) in reference.iter().zip(&concurrent).enumerate() {
            assert_identical(&format!("batch threads={threads} session={i}"), a, b);
        }
    }
}

#[test]
fn streaming_sessions_match_the_monolithic_loop_bitwise() {
    // The strongest equivalence in the serving layer: wire transport,
    // dejitter, and the stage split must all be label-invisible.
    let reference = sequential_reference(2.0);
    for threads in [1, 4] {
        let streamed = manager_traces(threads, true, 2.0);
        for (i, (a, b)) in reference.iter().zip(&streamed).enumerate() {
            assert_identical(&format!("streaming threads={threads} session={i}"), a, b);
        }
    }
}

#[test]
fn sixteen_session_micro_batch_matches_sequential_bitwise() {
    // The cross-session micro-batcher's core promise: sixteen sessions
    // sharing one artifact are classified in ONE batched ensemble call
    // per tick, and every trace is bit-identical to running that subject
    // alone — at 1 and 4 threads.
    let artifacts = quick_trained(21, 21);
    let subjects: Vec<u64> = (40..56).collect();
    let solo: Vec<SessionTrace> = subjects
        .iter()
        .map(|&subject| {
            let mut arm = CognitiveArm::with_pool(
                PipelineConfig::default(),
                artifacts.ensemble.clone(),
                subject,
                Arc::new(ExecPool::new(1)),
            );
            arm.set_normalization(artifacts.data.zscores[0].clone());
            arm.set_subject_action(Action::Right);
            arm.run_for(1.5).expect("solo run")
        })
        .collect();
    assert!(solo.iter().all(|t| !t.labels.is_empty()));

    for threads in [1, 4] {
        let mut manager = SessionManager::new(Arc::new(ExecPool::new(threads)));
        for &subject in &subjects {
            let spec = SessionSpec::new(
                PipelineConfig::default(),
                artifacts.ensemble.clone(),
                subject,
            )
            .with_normalization(artifacts.data.zscores[0].clone())
            .with_action(Action::Right);
            manager.add_session(spec).expect("admit");
        }
        // All sixteen landed in one micro-batch group.
        assert_eq!(manager.group_sizes(), vec![16], "threads={threads}");
        let batched = manager.run_for(1.5).expect("batched run");
        for (i, (a, b)) in solo.iter().zip(&batched).enumerate() {
            assert_identical(&format!("micro-batch threads={threads} session={i}"), a, b);
        }
    }
}

#[test]
fn ready_set_scheduler_matches_barrier_scheduler_bitwise() {
    // The ready-set scheduler pipelines each tick's batched ensemble call
    // with the next tick's filter advances; per-session traces must be
    // bit-identical to the barrier scheduler's at 1 and 4 threads (and to
    // the solo reference, transitively via the barrier suite above).
    let artifacts = quick_trained(21, 21);
    let subjects: Vec<u64> = (70..82).collect();
    let run = |threads: usize, scheduling: Scheduling| -> Vec<SessionTrace> {
        let mut manager = SessionManager::new(Arc::new(ExecPool::new(threads)));
        manager.set_scheduling(scheduling);
        for &subject in &subjects {
            let spec = SessionSpec::new(
                PipelineConfig::default(),
                artifacts.ensemble.clone(),
                subject,
            )
            .with_normalization(artifacts.data.zscores[0].clone())
            .with_action(Action::Right);
            manager.add_session(spec).expect("admit");
        }
        manager.run_for(2.0).expect("fleet runs")
    };
    let barrier = run(1, Scheduling::Barrier);
    assert!(barrier.iter().all(|t| !t.labels.is_empty()));
    for threads in [1, 4] {
        let ready = run(threads, Scheduling::ReadySet);
        for (i, (a, b)) in barrier.iter().zip(&ready).enumerate() {
            assert_identical(&format!("ready-set threads={threads} session={i}"), a, b);
        }
    }
    // Barrier itself is thread-invariant too (so the two schedulers are
    // interchangeable at any pool size).
    let barrier4 = run(4, Scheduling::Barrier);
    for (i, (a, b)) in barrier.iter().zip(&barrier4).enumerate() {
        assert_identical(&format!("barrier threads=4 session={i}"), a, b);
    }
}

#[test]
fn adversarial_wire_streaming_matches_the_monolithic_loop_bitwise() {
    // Burst jitter far above the sample cadence, 5% loss with
    // retransmission, heavy reordering: the pooled wire must deliver a
    // label trace bit-identical to the wire-free monolithic loop (the
    // allocating reference path), because the dejitter ring restores
    // sequence order no matter how packets arrive.
    let adversarial = TransportParams {
        base_latency: 0.004,
        jitter: 0.050, // > 6 sample periods of reorder
        loss_prob: 0.05,
        retransmit: true,
        timestamps: true,
        overhead_bytes: 66,
    };
    let reference = sequential_reference(3.0);
    for threads in [1usize, 4] {
        let pool = Arc::new(ExecPool::new(threads));
        for (i, &subject) in SUBJECTS.iter().enumerate() {
            let spec = spec_for(subject).with_wire(adversarial);
            let mut session =
                StreamSession::new(spec, Arc::clone(&pool), 4).expect("session assembles");
            let trace = session.run_for(3.0).expect("adversarial run");
            assert_identical(
                &format!("adversarial threads={threads} session={i}"),
                &reference[i],
                &trace,
            );
            assert!(
                session.out_of_order() > 0,
                "wire never reordered — the adversarial path went untested"
            );
        }
    }
}

#[test]
fn silently_lossy_wires_are_rejected_at_admission() {
    // A lossy wire without retransmission would park the dejitter cursor
    // on the first dropped sequence number forever; admission must refuse
    // it with a typed error instead.
    let mut manager = SessionManager::new(Arc::new(ExecPool::new(1)));
    let spec = spec_for(21).with_wire(TransportParams::udp());
    assert!(
        manager.add_streaming_session(spec).is_err(),
        "silently lossy wire must be refused"
    );
    // Lossless non-retransmitting wires are fine.
    let mut quiet = TransportParams::udp();
    quiet.loss_prob = 0.0;
    let spec = spec_for(21).with_wire(quiet);
    assert!(manager.add_streaming_session(spec).is_ok());
}

#[test]
fn session_churn_keeps_survivors_bitwise_identical() {
    // Connect/disconnect churn: sessions leave mid-flight, the group
    // re-batches around the survivors (row-count invariance makes the
    // shrinking batch invisible), ids stay stable, and every survivor's
    // concatenated trace is bit-identical to running that subject alone.
    //
    // Segment lengths are whole label periods (1.024 s = 128 samples =
    // 16 ticks of 8) so the segmented tick grid lines up with the
    // continuous reference — a partial trailing chunk would legitimately
    // emit an extra boundary label.
    let solo = sequential_reference(2.048);

    for threads in [1usize, 4] {
        let mut manager = SessionManager::new(Arc::new(ExecPool::new(threads)));
        let ids: Vec<_> = SUBJECTS
            .iter()
            .map(|&subject| manager.add_session(spec_for(subject)).expect("admit"))
            .collect();
        assert_eq!(manager.len(), 4);

        // Segment 1: everyone runs.
        let first = manager.run_for(1.024).expect("segment 1");

        // Subject 22 (index 1) disconnects.
        manager.remove_session(ids[1]).expect("remove");
        assert_eq!(manager.len(), 3);
        assert!(
            manager.remove_session(ids[1]).is_err(),
            "double remove must refuse"
        );
        assert!(manager.set_action(ids[1], Action::Idle).is_err());
        assert_eq!(
            manager.session_ids(),
            vec![ids[0], ids[2], ids[3]],
            "survivor ids in admission order"
        );

        // Segment 2: survivors continue from their segment-1 state.
        let second = manager.run_for(1.024).expect("segment 2");
        assert_eq!(second.len(), 3);

        let survivors = [0usize, 2, 3];
        for (k, &i) in survivors.iter().enumerate() {
            let mut joined = first[i].clone();
            joined.labels.extend(second[k].labels.iter().copied());
            joined.joints.extend(second[k].joints.iter().copied());
            assert_identical(
                &format!("churn threads={threads} subject={}", SUBJECTS[i]),
                &solo[i],
                &joined,
            );
        }

        // Reconnects are fresh sessions with fresh ids.
        let re = manager.add_session(spec_for(22)).expect("re-admit");
        assert_ne!(re, ids[1]);
        assert_eq!(manager.len(), 4);
    }
}

#[test]
fn mixed_artifacts_form_separate_groups_and_stay_bitwise_correct() {
    // Two different trained ensembles: admission must separate them into
    // two groups (a batched call can only run one model), and every trace
    // must still match its solo reference.
    let a = quick_trained(21, 21);
    let b = quick_trained(22, 22);
    let sessions: Vec<(u64, &std::sync::Arc<integration_tests::QuickArtifacts>)> =
        vec![(60, &a), (61, &b), (62, &a), (63, &b), (64, &a)];

    let solo: Vec<SessionTrace> = sessions
        .iter()
        .map(|&(subject, artifacts)| {
            let mut arm = CognitiveArm::with_pool(
                PipelineConfig::default(),
                artifacts.ensemble.clone(),
                subject,
                Arc::new(ExecPool::new(1)),
            );
            arm.set_normalization(artifacts.data.zscores[0].clone());
            arm.set_subject_action(Action::Left);
            arm.run_for(1.5).expect("solo run")
        })
        .collect();

    let mut manager = SessionManager::new(Arc::new(ExecPool::new(2)));
    for &(subject, artifacts) in &sessions {
        let spec = SessionSpec::new(
            PipelineConfig::default(),
            artifacts.ensemble.clone(),
            subject,
        )
        .with_normalization(artifacts.data.zscores[0].clone())
        .with_action(Action::Left);
        manager.add_session(spec).expect("admit");
    }
    assert_eq!(manager.group_sizes(), vec![3, 2], "grouping by artifact");
    let batched = manager.run_for(1.5).expect("mixed run");
    for (i, (x, y)) in solo.iter().zip(&batched).enumerate() {
        assert_identical(&format!("mixed-group session={i}"), x, y);
    }
}

#[test]
fn sessions_keep_state_across_segments() {
    // Serving is segmented (one run_for per scheduling quantum); two
    // managers driven through the same segment schedule must agree, and a
    // second segment must continue — not restart — the first.
    let run_segments = |threads: usize| -> Vec<SessionTrace> {
        let mut manager = SessionManager::new(Arc::new(ExecPool::new(threads)));
        for &subject in &SUBJECTS[..2] {
            manager
                .add_streaming_session(spec_for(subject))
                .expect("admit");
        }
        let first = manager.run_for(1.0).expect("segment 1");
        let second = manager.run_for(1.0).expect("segment 2");
        first
            .into_iter()
            .zip(second)
            .map(|(mut a, b)| {
                a.labels.extend(b.labels);
                a.joints.extend(b.joints);
                a
            })
            .collect()
    };
    let a = run_segments(1);
    let b = run_segments(4);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_identical(&format!("segmented session={i}"), x, y);
        // Second-segment timestamps continue past the first segment.
        assert!(
            x.labels.last().expect("labels").t > 1.0,
            "session {i} restarted instead of continuing"
        );
    }
}

#[test]
fn parallel_ensemble_training_is_bit_identical_to_serial() {
    let data = quick_data(11);
    let serial =
        train_default_ensemble_with(&data, &TrainBudget::quick(), 3, &ExecPool::new(1))
            .expect("serial training");
    let parallel =
        train_default_ensemble_with(&data, &TrainBudget::quick(), 3, &ExecPool::new(4))
            .expect("parallel training");
    // Ensemble PartialEq is structural: every weight, every tree node.
    assert_eq!(serial, parallel, "members diverged across pool sizes");
}

#[test]
fn manager_rejects_degenerate_requests() {
    let mut manager = SessionManager::new(Arc::new(ExecPool::new(2)));
    assert!(manager.run_for(1.0).is_err(), "empty manager must refuse");
    let id = manager.add_session(spec_for(21)).expect("admit");
    assert!(manager.run_for(0.0).is_err(), "zero duration must refuse");
    assert!(manager.set_action(id, Action::Idle).is_ok());
    let mut bad = spec_for(21);
    bad.config.label_every = 0;
    assert!(manager.add_session(bad).is_err(), "bad spec must refuse");
}

#[test]
fn run_for_each_matches_run_for_on_healthy_fleets() {
    let traces = {
        let mut manager = SessionManager::new(Arc::new(ExecPool::new(2)));
        for &subject in &SUBJECTS[..2] {
            manager.add_session(spec_for(subject)).expect("admit");
        }
        manager.run_for(1.0).expect("run_for")
    };
    let mut manager = SessionManager::new(Arc::new(ExecPool::new(2)));
    let ids: Vec<_> = SUBJECTS[..2]
        .iter()
        .map(|&subject| manager.add_session(spec_for(subject)).expect("admit"))
        .collect();
    let each = manager.run_for_each(1.0).expect("run_for_each");
    assert_eq!(each.len(), traces.len());
    for (i, (granular, flat)) in each.iter().zip(&traces).enumerate() {
        let granular = granular.as_ref().expect("healthy session");
        assert_identical(&format!("run_for_each session={i}"), granular, flat);
    }
    for id in ids {
        assert!(!manager.is_poisoned(id).expect("known id"));
    }
}

#[test]
fn streaming_sessions_report_stage_latency() {
    let artifacts = quick_trained(21, 21);
    let spec = SessionSpec::new(
        PipelineConfig::default(),
        artifacts.ensemble.clone(),
        SUBJECTS[0],
    )
    .with_normalization(artifacts.data.zscores[0].clone());
    let mut session =
        StreamSession::new(spec, Arc::new(ExecPool::new(2)), 4).expect("session assembles");
    let trace = session.run_for(2.0).expect("runs");
    let lat = session.latency();
    assert_eq!(lat.inference.count as usize, trace.labels.len());
    assert!(lat.inference.mean_s() > 0.0);
    assert!(lat.filter.count > 0, "filter stage never timed");
    assert!(lat.filter.mean_s() > 0.0);
}

#[test]
fn streaming_wire_reordering_is_label_invisible() {
    // The LSL-role transport retransmits ~1% of packets with extra latency,
    // so the inlet does see out-of-order arrivals on a long enough run;
    // the dejitter buffer must hide all of it (labels already checked
    // above — here we confirm the wire was actually adversarial).
    let artifacts = quick_trained(21, 21);
    let spec = SessionSpec::new(
        PipelineConfig::default(),
        artifacts.ensemble.clone(),
        SUBJECTS[0],
    )
    .with_normalization(artifacts.data.zscores[0].clone());
    let mut session =
        StreamSession::new(spec, Arc::new(ExecPool::new(2)), 4).expect("session assembles");
    let trace = session.run_for(4.0).expect("runs");
    assert!(!trace.labels.is_empty());
    assert!(
        session.out_of_order() > 0,
        "wire never reordered — the dejitter path went untested \
         (out_of_order = {})",
        session.out_of_order()
    );
}

/// The artifact registry's contract: one interned `WeightImage` per
/// distinct artifact no matter how many times — or through which format
/// version — it is opened, and sessions admitted through the shared
/// image trace bit-identically to sessions built from their own eagerly
/// loaded copy, at 1 and 4 threads.
#[test]
fn interned_artifact_sessions_match_eager_sessions_bitwise() {
    let artifacts = quick_trained(21, 21);
    let dir = std::env::temp_dir().join(format!("serve-intern-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let v2 = dir.join("artifact.cogm");
    let v1 = dir.join("artifact-v1.cogm");
    let saved = model_io::SavedModel {
        pipeline: PipelineConfig::default(),
        ensemble: artifacts.ensemble.clone(),
        normalization: Some(artifacts.data.zscores[0].clone()),
    };
    saved.save(&v2).expect("saves v2");
    saved
        .to_container()
        .expect("persistable")
        .save_v1(&v1)
        .expect("saves v1");

    for threads in [1usize, 4] {
        // Shared path: every session reads through one interned image.
        let mut manager = SessionManager::new(Arc::new(ExecPool::new(threads)));
        let artifact = manager.open_artifact(&v2).expect("artifact interns");
        // Re-opens dedup — same path, and the same model saved in the
        // legacy format (content hashes agree post-upgrade).
        assert_eq!(manager.open_artifact(&v2).expect("reopen"), artifact);
        assert_eq!(manager.open_artifact(&v1).expect("v1 open"), artifact);
        assert_eq!(manager.artifact_count(), 1, "dedup failed");
        for &subject in &SUBJECTS {
            manager
                .add_session_from_artifact(artifact, subject)
                .expect("admits from artifact");
        }
        let shared = manager.run_for(2.0).expect("shared-image fleet runs");

        // Eager path: each session decodes a private copy from disk.
        let mut manager = SessionManager::new(Arc::new(ExecPool::new(threads)));
        for &subject in &SUBJECTS {
            let model = model_io::SavedModel::load_zero_copy(&v2).expect("loads");
            manager
                .add_session(SessionSpec::from_saved(model, subject))
                .expect("admits eager");
        }
        let eager = manager.run_for(2.0).expect("eager fleet runs");

        assert!(shared.iter().all(|t| !t.labels.is_empty()), "no labels");
        for (i, (a, b)) in eager.iter().zip(&shared).enumerate() {
            assert_identical(&format!("interned threads={threads} session={i}"), a, b);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// CI hook: when `COGARM_MODEL` points at an artifact saved by another
/// process — any format version; v1 takes the in-memory upgrade — intern
/// it through the mmap-backed registry and prove a fleet serves it with
/// identical traces at 1 and 4 worker threads.
#[test]
fn env_model_artifact_serves_through_the_interned_image() {
    let Some(path) = std::env::var_os("COGARM_MODEL") else {
        return; // not running under the CI v1-upgrade step
    };
    let run = |threads: usize| -> Vec<SessionTrace> {
        let mut manager = SessionManager::new(Arc::new(ExecPool::new(threads)));
        let artifact = manager.open_artifact(&path).expect("COGARM_MODEL interns");
        for &subject in &SUBJECTS {
            manager
                .add_session_from_artifact(artifact, subject)
                .expect("admits from artifact");
        }
        manager.run_for(2.0).expect("fleet runs")
    };
    let single = run(1);
    assert!(
        single.iter().all(|t| !t.labels.is_empty()),
        "env artifact fleet emitted no labels"
    );
    let quad = run(4);
    for (i, (a, b)) in single.iter().zip(&quad).enumerate() {
        assert_identical(&format!("env artifact session={i}"), a, b);
    }
}
