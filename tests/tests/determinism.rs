//! Determinism regression: the whole stack (synthetic subject, training,
//! closed-loop pipeline) is seeded, so two identically-seeded runs must be
//! bit-for-bit identical — the verification discipline the repo's
//! benchmarks rely on.

use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, TrainBudget};
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig, SessionTrace};
use eeg::dataset::Protocol;
use eeg::types::Action;

fn seeded_trace(seed: u64) -> SessionTrace {
    let data = DatasetBuilder::new(Protocol::quick(), 1, seed)
        .build()
        .expect("dataset builds");
    let ensemble =
        train_default_ensemble(&data, &TrainBudget::quick(), seed).expect("ensemble trains");
    let mut system = CognitiveArm::new(PipelineConfig::default(), ensemble, seed);
    system.set_normalization(data.zscores[0].clone());
    system.set_subject_action(Action::Right);
    system.run_for(3.0).expect("runs")
}

fn assert_identical(a: &SessionTrace, b: &SessionTrace) {
    assert_eq!(a.labels.len(), b.labels.len(), "label counts differ");
    for (x, y) in a.labels.iter().zip(&b.labels) {
        assert!(
            x.t.to_bits() == y.t.to_bits() && x.label == y.label,
            "label trace diverged: ({}, {}) vs ({}, {})",
            x.t,
            x.label,
            y.t,
            y.label
        );
    }
    assert_eq!(a.joints.len(), b.joints.len(), "joint sample counts differ");
    for (x, y) in a.joints.iter().zip(&b.joints) {
        assert!(
            x.0.to_bits() == y.0.to_bits()
                && x.1.to_bits() == y.1.to_bits()
                && x.2.to_bits() == y.2.to_bits()
                && x.3.to_bits() == y.3.to_bits(),
            "joint trajectory diverged: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn same_seed_produces_identical_traces() {
    let first = seeded_trace(1234);
    let second = seeded_trace(1234);
    assert!(!first.labels.is_empty(), "run produced no labels");
    assert!(!first.joints.is_empty(), "run produced no joint samples");
    assert_identical(&first, &second);
}

#[test]
fn different_seeds_produce_different_subjects() {
    // Guard against the determinism test passing vacuously (e.g. a constant
    // trace): distinct seeds must actually change the joint trajectory.
    let a = seeded_trace(1234);
    let b = seeded_trace(4321);
    let identical = a.joints.len() == b.joints.len()
        && a.joints
            .iter()
            .zip(&b.joints)
            .all(|(x, y)| x.1.to_bits() == y.1.to_bits() && x.2.to_bits() == y.2.to_bits());
    assert!(!identical, "seeds 1234 and 4321 produced identical trajectories");
}
