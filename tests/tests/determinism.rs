//! Determinism regression: the whole stack (synthetic subject, training,
//! closed-loop pipeline) is seeded, so two identically-seeded runs must be
//! bit-for-bit identical — the verification discipline the repo's
//! benchmarks rely on. Since every parallel path runs on the deterministic
//! `exec` substrate, the same holds across thread counts: a 4-worker run
//! must reproduce a single-threaded run bit for bit.
//!
//! These tests deliberately bypass the shared trained-artifact cache —
//! retraining from scratch is the point.

use std::sync::Arc;

use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, TrainBudget};
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig, SessionTrace};
use eeg::dataset::Protocol;
use eeg::types::Action;
use exec::ExecPool;
use ml::forest::{ForestConfig, RandomForest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn seeded_trace(seed: u64) -> SessionTrace {
    seeded_trace_with_threads(seed, None)
}

/// Builds and runs the full stack; `threads` pins every parallel stage
/// (offline filtering, ensemble inference) to an explicit pool size.
fn seeded_trace_with_threads(seed: u64, threads: Option<usize>) -> SessionTrace {
    let mut builder = DatasetBuilder::new(Protocol::quick(), 1, seed);
    if let Some(n) = threads {
        builder = builder.with_pool(Arc::new(ExecPool::new(n)));
    }
    let data = builder.build().expect("dataset builds");
    let ensemble =
        train_default_ensemble(&data, &TrainBudget::quick(), seed).expect("ensemble trains");
    let config = PipelineConfig {
        threads,
        ..PipelineConfig::default()
    };
    let mut system = CognitiveArm::new(config, ensemble, seed);
    system.set_normalization(data.zscores[0].clone());
    system.set_subject_action(Action::Right);
    system.run_for(3.0).expect("runs")
}

fn assert_identical(a: &SessionTrace, b: &SessionTrace) {
    assert_eq!(a.labels.len(), b.labels.len(), "label counts differ");
    for (x, y) in a.labels.iter().zip(&b.labels) {
        assert!(
            x.t.to_bits() == y.t.to_bits() && x.label == y.label,
            "label trace diverged: ({}, {}) vs ({}, {})",
            x.t,
            x.label,
            y.t,
            y.label
        );
    }
    assert_eq!(a.joints.len(), b.joints.len(), "joint sample counts differ");
    for (x, y) in a.joints.iter().zip(&b.joints) {
        assert!(
            x.0.to_bits() == y.0.to_bits()
                && x.1.to_bits() == y.1.to_bits()
                && x.2.to_bits() == y.2.to_bits()
                && x.3.to_bits() == y.3.to_bits(),
            "joint trajectory diverged: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn same_seed_produces_identical_traces() {
    let first = seeded_trace(1234);
    let second = seeded_trace(1234);
    assert!(!first.labels.is_empty(), "run produced no labels");
    assert!(!first.joints.is_empty(), "run produced no joint samples");
    assert_identical(&first, &second);
}

#[test]
fn thread_count_does_not_change_the_label_trace() {
    let single = seeded_trace_with_threads(1234, Some(1));
    let four = seeded_trace_with_threads(1234, Some(4));
    assert!(!single.labels.is_empty(), "run produced no labels");
    assert_identical(&single, &four);
}

#[test]
fn thread_count_does_not_change_the_forest_model() {
    // Separable toy rows; the shape training sees after feature extraction.
    let mut rng = StdRng::seed_from_u64(31);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..200 {
        let row: Vec<f32> = (0..12).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        ys.push(usize::from(row[0] > 0.0) + usize::from(row[1] > 0.0));
        xs.push(row);
    }
    let config = ForestConfig {
        n_estimators: 24,
        max_depth: Some(8),
        min_samples_split: 2,
        classes: 3,
        seed: 77,
    };
    let single = RandomForest::fit_with(config, &xs, &ys, &ExecPool::new(1)).expect("fits");
    let four = RandomForest::fit_with(config, &xs, &ys, &ExecPool::new(4)).expect("fits");
    // PartialEq covers every split threshold and leaf distribution —
    // tree-for-tree, node-for-node equality, not just summary stats.
    assert_eq!(single, four, "forest models diverged across thread counts");
    assert_eq!(
        single.predict_batch(&xs, &ExecPool::new(4)),
        four.predict_batch(&xs, &ExecPool::new(1)),
        "batched predictions diverged across thread counts"
    );
}

#[test]
fn different_seeds_produce_different_subjects() {
    // Guard against the determinism test passing vacuously (e.g. a constant
    // trace): distinct seeds must actually change the joint trajectory.
    let a = seeded_trace(1234);
    let b = seeded_trace(4321);
    let identical = a.joints.len() == b.joints.len()
        && a.joints
            .iter()
            .zip(&b.joints)
            .all(|(x, y)| x.1.to_bits() == y.1.to_bits() && x.2.to_bits() == y.2.to_bits());
    assert!(!identical, "seeds 1234 and 4321 produced identical trajectories");
}
