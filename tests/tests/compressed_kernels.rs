//! The compressed-kernel bit-identity contract.
//!
//! PR 9 replaces the execution kernels behind pruned (CSR) and quantized
//! (int8) models — CSC/densified sparse execution formats and SIMD int8
//! GEMMs selected at plan-compile time. The swap must be **bit-invisible**:
//! a compressed model's label trace may not move by a single bit when the
//! kernels underneath it change, at any thread count and under both plan
//! versions. This suite locks that three ways:
//!
//! 1. golden label traces for pruned and quantized ensembles under plan
//!    v1 and v2, committed as fixtures *before* the kernel swap
//!    (regenerate deliberately with `COGARM_REGEN_FIXTURES=1 cargo test
//!    -q --test compressed_kernels`);
//! 2. thread-count invariance in-test: a 4-thread pool must reproduce the
//!    1-thread bits exactly (CI additionally runs the whole file at
//!    `COGARM_THREADS=1` and `=4`);
//! 3. seeded property sweeps pinning every new kernel to its scalar
//!    reference: the sparse execution format against the storage-CSR
//!    kernel at batches {1, 3, 16}, and the SIMD int8 path against the
//!    straight-line integer reference across remainder-lane shapes.
//!
//! Version selection is explicit (`with_version`), never `COGARM_PLAN` —
//! tests run concurrently and must not race on process state.

use std::path::PathBuf;

use eeg::CHANNELS;
use exec::ExecPool;
use integration_tests::quick_trained;
use ml::compress::{prune_global, quantize, QuantMode};
use ml::ensemble::{Ensemble, EnsembleScratch};
use ml::infer::{ExecScratch, QuantMatrix};
use ml::matexec::SparseExec;
use ml::models::CLASSES;
use ml::plan::PlanVersion;
use ml::sparse::CsrMatrix;
use ml::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// A compression transform applied to a trained ensemble in place.
type Compressor = fn(&mut Ensemble);

/// The compression variants under contract, keyed by fixture tag.
fn variants() -> Vec<(&'static str, Compressor)> {
    vec![
        ("pruned70", |e: &mut Ensemble| {
            e.visit_net_models_mut(|m| prune_global(m, 0.7));
        }),
        ("int8cal", |e: &mut Ensemble| {
            e.visit_net_models_mut(|m| {
                quantize(m, QuantMode::Calibrated).expect("dense model quantizes");
            });
        }),
        ("int8global", |e: &mut Ensemble| {
            e.visit_net_models_mut(|m| {
                quantize(m, QuantMode::GlobalFaithful).expect("dense model quantizes");
            });
        }),
    ]
}

/// Classifies 24 real (synthetic-EEG) windows through `ensemble` on a
/// pool of `threads` and renders the trace: one line per window, the
/// argmax label followed by every combined probability as raw f32 bits.
fn render_trace(ensemble: &Ensemble, version: PlanVersion, threads: usize) -> String {
    let artifacts = quick_trained(21, 21);
    let win = ensemble.window();
    let labeled = artifacts.data.windows(win, 25).expect("windows cut");
    let take = 24.min(labeled.len());
    let mut flat = Vec::with_capacity(take * CHANNELS * win);
    for w in labeled.iter().take(take) {
        flat.extend_from_slice(&w.data);
    }

    let pool = ExecPool::new(threads);
    let mut scratch = EnsembleScratch::with_version(ensemble, version);
    let mut probas = vec![0.0f32; take * CLASSES];
    ensemble.predict_batch_into(&flat, take, CHANNELS, &pool, &mut scratch, &mut probas);

    let tag = match version {
        PlanVersion::V1 => "v1",
        PlanVersion::V2 => "v2",
    };
    let mut out = format!(
        "# golden compressed label trace, plan {tag}: <label> <proba f32 bits, hex, per class>\n"
    );
    for b in 0..take {
        let row = &probas[b * CLASSES..(b + 1) * CLASSES];
        out.push_str(&ml::ensemble::argmax(row).to_string());
        for p in row {
            out.push_str(&format!(" {:08x}", p.to_bits()));
        }
        out.push('\n');
    }
    out
}

/// Seeded random `[rows, cols]` tensor with roughly `density` of its
/// entries kept non-zero (plus a sprinkling of exact zeros in the
/// activations' case, handled by the caller).
fn random_sparse_tensor(rows: usize, cols: usize, density: f64, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tensor::uniform(vec![rows, cols], 1.0, &mut rng);
    for v in t.data_mut() {
        if !rng.gen_bool(density) {
            *v = 0.0;
        }
    }
    t
}

#[test]
fn sparse_execution_format_matches_storage_kernel_at_all_batches() {
    // Public-API property sweep: whatever form `SparseExec::compile`
    // selects (CSC, hybrid, densified) must reproduce the storage CSR
    // kernel bit-for-bit at every batch width the serving paths use —
    // m == 1 chains, the scalar batch tail, and the 8-wide SIMD panels.
    for (density, seed) in [(0.1, 40), (0.35, 41), (0.8, 42)] {
        for (k, n) in [(64, 3), (57, 24), (48, 8)] {
            let w = random_sparse_tensor(k, n, density, seed);
            let csr = CsrMatrix::from_dense(&w);
            let exec = SparseExec::compile(&csr);
            for m in [1usize, 3, 16] {
                let mut rng = StdRng::seed_from_u64(seed + m as u64);
                let mut x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
                // Exact zeros the storage kernel skips and the exec
                // formats must still agree about.
                for v in x.iter_mut().step_by(7) {
                    *v = 0.0;
                }
                let mut want = vec![0.0f32; m * n];
                csr.left_matmul_into(&x, m, &mut want);
                let mut got = vec![1.0f32; m * n];
                let (mut xt, mut yt) = (Vec::new(), Vec::new());
                exec.left_matmul_into(&x, m, &mut got, &mut xt, &mut yt);
                let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                let got: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                assert_eq!(want, got, "density {density} shape {k}x{n} m {m}");
            }
        }
    }
}

#[test]
fn int8_simd_path_matches_straight_line_reference() {
    // Public-API property sweep: the batch-stacked SIMD int8 GEMM — SIMD
    // activation quantization, `vpmaddwd` dots or 16-column panels,
    // fused dequant — against a straight-line scalar reference written
    // out here independently. Shapes hit every remainder lane: odd k
    // (zero-padded pair), n % 16 column tails, m % 4 row tails.
    for (m, k, n, seed) in [
        (1usize, 57usize, 3usize, 50u64),
        (5, 30, 35, 51),
        (3, 19, 48, 52),
        (7, 16, 16, 53),
    ] {
        for act_scale in [None, Some(1.0f32)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let dense = Tensor::uniform(vec![k, n], 0.8, &mut rng);
            let scale = 0.8 / 127.0;
            let q = QuantMatrix::quantize(&dense, scale, act_scale);
            let x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-3.0f32..3.0)).collect();

            let mut got = vec![0.0f32; m * n];
            q.left_matmul_into(&x, m, &mut got, &mut ExecScratch::default());

            // Straight-line reference: per row, scalar round-half-away
            // quantization, plain i32 dot per output, dequant on store.
            let mut want = vec![0.0f32; m * n];
            for i in 0..m {
                let xrow = &x[i * k..(i + 1) * k];
                let ax = act_scale.unwrap_or_else(|| {
                    let max = xrow.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                    if max == 0.0 {
                        1.0
                    } else {
                        max / 127.0
                    }
                });
                let xq: Vec<i8> = xrow
                    .iter()
                    .map(|&v| (v / ax).round().clamp(-127.0, 127.0) as i8)
                    .collect();
                for c in 0..n {
                    let mut acc = 0i32;
                    for (p, &xv) in xq.iter().enumerate() {
                        acc += i32::from(xv) * i32::from(q.data[p * n + c]);
                    }
                    want[i * n + c] = acc as f32 * (ax * scale);
                }
            }
            let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            let got: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(want, got, "shape m{m} k{k} n{n} act_scale {act_scale:?}");
        }
    }
}

#[test]
fn golden_compressed_traces_survive_the_kernel_swap() {
    let artifacts = quick_trained(21, 21);
    let regen = std::env::var_os("COGARM_REGEN_FIXTURES").is_some();
    for (tag, compress) in variants() {
        let mut ensemble = artifacts.ensemble.clone();
        compress(&mut ensemble);
        for version in [PlanVersion::V1, PlanVersion::V2] {
            let rendered = render_trace(&ensemble, version, 1);
            // Thread-count invariance, in-test: the compressed kernels run
            // inside per-lane scratch, so the pool size can never reach the
            // numerics.
            let on_four = render_trace(&ensemble, version, 4);
            assert_eq!(
                rendered, on_four,
                "{tag}: thread count changed compressed {version:?} bits"
            );

            let vtag = match version {
                PlanVersion::V1 => "v1",
                PlanVersion::V2 => "v2",
            };
            let name = format!("trace_{tag}_{vtag}.txt");
            let path = fixture_path(&name);
            if regen {
                std::fs::create_dir_all(path.parent().expect("fixtures dir")).expect("mkdir");
                std::fs::write(&path, &rendered).expect("write fixture");
                continue;
            }
            let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("missing fixture {name} ({e}); run with COGARM_REGEN_FIXTURES=1")
            });
            assert_eq!(
                committed, rendered,
                "{name}: the compressed {vtag} path no longer reproduces its committed \
                 golden trace — the kernel swap moved bits; execution-format kernels must \
                 be bit-identical to the storage kernels they replace"
            );
        }
    }
}
