//! Feature extraction for the classical-ML path.
//!
//! The paper's Random Forest consumes per-channel statistical features
//! (Table III: mean, std, min, max, var); the spectral helpers additionally
//! expose canonical EEG band powers used for analysis and the artifact
//! detector.

use serde::{Deserialize, Serialize};

use crate::welch::welch_psd;
use crate::Result;

/// The five statistical features of Table III, for one channel.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Arithmetic mean.
    pub mean: f32,
    /// Standard deviation (population).
    pub std: f32,
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
    /// Variance (population).
    pub var: f32,
}

impl ChannelStats {
    /// Computes statistics over one channel of samples.
    ///
    /// Returns all-zero stats for an empty slice.
    #[must_use]
    pub fn compute(samples: &[f32]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| f64::from(x)).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&x| (f64::from(x) - mean).powi(2))
            .sum::<f64>()
            / n;
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Self {
            mean: mean as f32,
            std: var.sqrt() as f32,
            min,
            max,
            var: var as f32,
        }
    }

    /// Flattens to the fixed feature order `[mean, std, min, max, var]`.
    #[must_use]
    pub fn to_vec(self) -> Vec<f32> {
        vec![self.mean, self.std, self.min, self.max, self.var]
    }

    /// Number of features per channel.
    pub const LEN: usize = 5;
}

/// Extracts the Table III statistical feature vector from a multichannel
/// window laid out as `channels` rows of `window_len` contiguous samples.
///
/// Output length is `channels * ChannelStats::LEN`.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `channels`.
#[must_use]
pub fn stat_features(data: &[f32], channels: usize) -> Vec<f32> {
    assert!(
        channels > 0 && data.len().is_multiple_of(channels),
        "data length {} not divisible by channel count {channels}",
        data.len()
    );
    let per = data.len() / channels;
    let mut out = Vec::with_capacity(channels * ChannelStats::LEN);
    for ch in 0..channels {
        let stats = ChannelStats::compute(&data[ch * per..(ch + 1) * per]);
        out.extend(stats.to_vec());
    }
    out
}

/// Canonical EEG frequency bands, in Hz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Band {
    /// 0.5–4 Hz.
    Delta,
    /// 4–8 Hz.
    Theta,
    /// 8–13 Hz (the mu rhythm over motor cortex lives here).
    Alpha,
    /// 13–30 Hz.
    Beta,
    /// 30–45 Hz (upper limit set by the paper's band-pass).
    Gamma,
}

impl Band {
    /// All bands in ascending frequency order.
    pub const ALL: [Band; 5] = [Band::Delta, Band::Theta, Band::Alpha, Band::Beta, Band::Gamma];

    /// The `(low, high)` edges of this band in Hz.
    #[must_use]
    pub fn edges(self) -> (f64, f64) {
        match self {
            Band::Delta => (0.5, 4.0),
            Band::Theta => (4.0, 8.0),
            Band::Alpha => (8.0, 13.0),
            Band::Beta => (13.0, 30.0),
            Band::Gamma => (30.0, 45.0),
        }
    }
}

impl std::fmt::Display for Band {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Band::Delta => "delta",
            Band::Theta => "theta",
            Band::Alpha => "alpha",
            Band::Beta => "beta",
            Band::Gamma => "gamma",
        };
        f.write_str(name)
    }
}

/// Per-band absolute powers for one channel.
///
/// # Errors
///
/// Propagates the PSD estimation error for signals shorter than one Welch
/// segment.
pub fn band_powers(samples: &[f32], fs: f64, segment_len: usize) -> Result<[f64; 5]> {
    let psd = welch_psd(samples, fs, segment_len)?;
    let mut out = [0.0; 5];
    for (i, band) in Band::ALL.iter().enumerate() {
        let (lo, hi) = band.edges();
        out[i] = psd.band_power(lo, hi);
    }
    Ok(out)
}

/// Relative band powers (each band divided by total power in 0.5–45 Hz).
///
/// # Errors
///
/// Propagates the PSD estimation error for signals shorter than one Welch
/// segment.
pub fn relative_band_powers(samples: &[f32], fs: f64, segment_len: usize) -> Result<[f64; 5]> {
    let mut powers = band_powers(samples, fs, segment_len)?;
    let total: f64 = powers.iter().sum();
    if total > 0.0 {
        for p in &mut powers {
            *p /= total;
        }
    }
    Ok(powers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sequence() {
        let s = ChannelStats::compute(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-6);
        assert!((s.var - 1.25).abs() < 1e-6);
        assert!((s.std - 1.25_f32.sqrt()).abs() < 1e-6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn empty_input_gives_default() {
        assert_eq!(ChannelStats::compute(&[]), ChannelStats::default());
    }

    #[test]
    fn stat_features_layout_is_channel_major() {
        // 2 channels x 3 samples.
        let data = [1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let f = stat_features(&data, 2);
        assert_eq!(f.len(), 10);
        assert_eq!(f[0], 1.0); // mean of channel 0
        assert_eq!(f[5], 5.0); // mean of channel 1
        assert_eq!(f[1], 0.0); // std of constant channel
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn ragged_input_panics() {
        let _ = stat_features(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn band_edges_are_contiguous() {
        for w in Band::ALL.windows(2) {
            assert_eq!(w[0].edges().1, w[1].edges().0);
        }
    }

    #[test]
    fn alpha_tone_dominates_relative_power() {
        let fs = 125.0;
        let sig: Vec<f32> = (0..4000)
            .map(|i| (2.0 * std::f64::consts::PI * 10.0 * i as f64 / fs).sin() as f32)
            .collect();
        let rel = relative_band_powers(&sig, fs, 256).unwrap();
        let alpha_idx = 2;
        assert!(rel[alpha_idx] > 0.9, "alpha fraction {}", rel[alpha_idx]);
        let sum: f64 = rel.iter().sum();
        assert!((sum - 1.0).abs() < 0.05, "relative powers sum to {sum}");
    }

    #[test]
    fn band_display_names() {
        assert_eq!(Band::Alpha.to_string(), "alpha");
        assert_eq!(Band::Gamma.to_string(), "gamma");
    }
}
