//! Artifact detection and repair (Sec. III-A3).
//!
//! The paper relies on "standard signal cleaning techniques provided by
//! BrainFlow" for eye blinks and muscle (EMG) activity. We reproduce the two
//! mechanisms such toolkits actually apply:
//!
//! * **amplitude-threshold detection** — eye blinks appear as large, slow
//!   deflections (hundreds of µV) mostly over frontal channels; samples whose
//!   moving z-score exceeds a threshold are flagged, and
//! * **repair by clamping or interpolation** — flagged spans are either
//!   linearly interpolated from clean neighbours or the whole window is
//!   rejected, depending on severity.

use serde::{Deserialize, Serialize};

/// A contiguous run of samples flagged as artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactSpan {
    /// First flagged sample index.
    pub start: usize,
    /// One past the last flagged sample index.
    pub end: usize,
}

impl ArtifactSpan {
    /// Span length in samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Configuration of the artifact detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArtifactConfig {
    /// Z-score above which a sample is flagged (default 4.0).
    pub z_threshold: f32,
    /// Samples of margin added around each detection (default 8, ≈64 ms at
    /// 125 Hz) to catch blink shoulders.
    pub margin: usize,
    /// Fraction of flagged samples beyond which a window should be rejected
    /// rather than repaired (default 0.3).
    pub reject_fraction: f32,
}

impl Default for ArtifactConfig {
    fn default() -> Self {
        Self {
            z_threshold: 4.0,
            margin: 8,
            reject_fraction: 0.3,
        }
    }
}

/// Outcome of [`clean_channel`].
#[derive(Debug, Clone, PartialEq)]
pub enum CleanOutcome {
    /// Signal was already clean; nothing changed.
    Clean,
    /// Artifact spans were repaired in place by linear interpolation.
    Repaired(Vec<ArtifactSpan>),
    /// Too much of the signal was contaminated; caller should drop it.
    Rejected {
        /// Fraction of samples flagged.
        contaminated: f32,
    },
}

/// Flags samples whose amplitude deviates more than `z_threshold` standard
/// deviations from the channel's robust baseline.
///
/// The baseline uses the median and the median absolute deviation (scaled to
/// σ) so the blink itself does not inflate the threshold.
#[must_use]
pub fn detect_artifacts(samples: &[f32], config: &ArtifactConfig) -> Vec<ArtifactSpan> {
    if samples.len() < 4 {
        return Vec::new();
    }
    let mut sorted: Vec<f32> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let median = sorted[sorted.len() / 2];
    let mut devs: Vec<f32> = samples.iter().map(|&x| (x - median).abs()).collect();
    devs.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let mad = devs[devs.len() / 2];
    // 1.4826 converts MAD to a Gaussian sigma estimate.
    let sigma = (mad * 1.4826).max(1e-6);

    let mut spans: Vec<ArtifactSpan> = Vec::new();
    let mut current: Option<ArtifactSpan> = None;
    for (i, &x) in samples.iter().enumerate() {
        let z = (x - median).abs() / sigma;
        if z > config.z_threshold {
            match &mut current {
                Some(span) => span.end = i + 1,
                None => {
                    current = Some(ArtifactSpan {
                        start: i,
                        end: i + 1,
                    });
                }
            }
        } else if let Some(mut span) = current.take() {
            // Close the span with margin.
            span.start = span.start.saturating_sub(config.margin);
            span.end = (span.end + config.margin).min(samples.len());
            merge_push(&mut spans, span);
        }
    }
    if let Some(mut span) = current.take() {
        span.start = span.start.saturating_sub(config.margin);
        span.end = (span.end + config.margin).min(samples.len());
        merge_push(&mut spans, span);
    }
    spans
}

fn merge_push(spans: &mut Vec<ArtifactSpan>, span: ArtifactSpan) {
    if let Some(last) = spans.last_mut() {
        if span.start <= last.end {
            last.end = last.end.max(span.end);
            return;
        }
    }
    spans.push(span);
}

/// Detects and repairs artifacts on one channel in place.
///
/// Spans are linearly interpolated between the nearest clean samples; if the
/// total contamination exceeds `config.reject_fraction` the signal is left
/// untouched and [`CleanOutcome::Rejected`] is returned so the caller can
/// drop the window.
pub fn clean_channel(samples: &mut [f32], config: &ArtifactConfig) -> CleanOutcome {
    let spans = detect_artifacts(samples, config);
    if spans.is_empty() {
        return CleanOutcome::Clean;
    }
    let flagged: usize = spans.iter().map(ArtifactSpan::len).sum();
    let fraction = flagged as f32 / samples.len() as f32;
    if fraction > config.reject_fraction {
        return CleanOutcome::Rejected {
            contaminated: fraction,
        };
    }
    for span in &spans {
        interpolate_span(samples, span);
    }
    CleanOutcome::Repaired(spans)
}

fn interpolate_span(samples: &mut [f32], span: &ArtifactSpan) {
    let left_idx = span.start.checked_sub(1);
    let right_idx = if span.end < samples.len() {
        Some(span.end)
    } else {
        None
    };
    let (left, right) = match (left_idx, right_idx) {
        (Some(l), Some(r)) => (samples[l], samples[r]),
        (Some(l), None) => (samples[l], samples[l]),
        (None, Some(r)) => (samples[r], samples[r]),
        (None, None) => (0.0, 0.0),
    };
    let n = span.len() as f32 + 1.0;
    for (k, i) in (span.start..span.end).enumerate() {
        let t = (k as f32 + 1.0) / n;
        samples[i] = left + (right - left) * t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alpha_background(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 10.0 * i as f64 / 125.0).sin() as f32)
            .collect()
    }

    #[test]
    fn clean_signal_has_no_artifacts() {
        let sig = alpha_background(500);
        let spans = detect_artifacts(&sig, &ArtifactConfig::default());
        assert!(spans.is_empty(), "false positives: {spans:?}");
    }

    #[test]
    fn blink_is_detected_and_covers_the_deflection() {
        let mut sig = alpha_background(500);
        // A blink: large slow bump over samples 200..230.
        for v in &mut sig[200..230] {
            *v += 40.0;
        }
        let spans = detect_artifacts(&sig, &ArtifactConfig::default());
        assert_eq!(spans.len(), 1);
        assert!(spans[0].start <= 200 && spans[0].end >= 230);
    }

    #[test]
    fn repair_restores_plausible_amplitude() {
        let mut sig = alpha_background(500);
        for v in &mut sig[250..270] {
            *v += 50.0;
        }
        let outcome = clean_channel(&mut sig, &ArtifactConfig::default());
        assert!(matches!(outcome, CleanOutcome::Repaired(_)));
        let peak = sig.iter().fold(0.0_f32, |m, &x| m.max(x.abs()));
        assert!(peak < 3.0, "residual peak {peak}");
    }

    #[test]
    fn heavy_contamination_is_rejected_not_repaired() {
        let mut sig = alpha_background(200);
        // 40% contamination: above reject_fraction but below the 50% where
        // the median itself would break down.
        for v in &mut sig[60..140] {
            *v += 80.0;
        }
        let before = sig.clone();
        let outcome = clean_channel(&mut sig, &ArtifactConfig::default());
        assert!(matches!(outcome, CleanOutcome::Rejected { .. }));
        assert_eq!(sig, before, "rejected signal must be untouched");
    }

    #[test]
    fn adjacent_spans_merge() {
        let mut sig = alpha_background(400);
        for v in &mut sig[100..110] {
            *v += 60.0;
        }
        for v in &mut sig[118..128] {
            *v -= 60.0;
        }
        // Margin 8 makes the two spans touch.
        let spans = detect_artifacts(&sig, &ArtifactConfig::default());
        assert_eq!(spans.len(), 1, "{spans:?}");
    }

    #[test]
    fn span_len_and_empty() {
        let s = ArtifactSpan { start: 3, end: 7 };
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(ArtifactSpan { start: 5, end: 5 }.is_empty());
    }

    #[test]
    fn short_input_is_ignored() {
        let spans = detect_artifacts(&[1.0, 2.0], &ArtifactConfig::default());
        assert!(spans.is_empty());
    }
}
