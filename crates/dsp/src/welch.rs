//! Welch power-spectral-density estimation.
//!
//! Used by the feature extractor to measure band power (mu/beta
//! desynchronization is the discriminative signal for motor imagery) and by
//! the artifact detector to quantify residual line noise.

use crate::fft::{bin_frequency, rfft};
use crate::{DspError, Result};

/// A one-sided power spectral density estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Psd {
    /// Frequency of each bin in Hz.
    pub frequencies: Vec<f64>,
    /// Power density at each bin, in (input units)² / Hz.
    pub power: Vec<f64>,
}

impl Psd {
    /// Integrates the PSD over `[low, high)` Hz (trapezoid-free simple sum ×
    /// bin width, which is the convention BrainFlow's `get_band_power` uses).
    #[must_use]
    pub fn band_power(&self, low: f64, high: f64) -> f64 {
        if self.frequencies.len() < 2 {
            return 0.0;
        }
        let df = self.frequencies[1] - self.frequencies[0];
        self.frequencies
            .iter()
            .zip(&self.power)
            .filter(|(f, _)| **f >= low && **f < high)
            .map(|(_, p)| p * df)
            .sum()
    }

    /// Frequency with maximal power in `[low, high)` Hz, if any bin falls in
    /// the range.
    #[must_use]
    pub fn peak_frequency(&self, low: f64, high: f64) -> Option<f64> {
        self.frequencies
            .iter()
            .zip(&self.power)
            .filter(|(f, _)| **f >= low && **f < high)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("psd is finite"))
            .map(|(f, _)| *f)
    }
}

/// Welch PSD with Hann windowing and 50% overlap.
///
/// `segment_len` is rounded down to a power of two internally. Mean is
/// removed per segment (detrend = constant).
///
/// # Errors
///
/// Returns [`DspError::SignalTooShort`] when fewer samples than one segment
/// are provided, and [`DspError::InvalidWindow`] when `segment_len < 4`.
pub fn welch_psd(signal: &[f32], fs: f64, segment_len: usize) -> Result<Psd> {
    if segment_len < 4 {
        return Err(DspError::InvalidWindow {
            size: segment_len,
            step: segment_len / 2,
        });
    }
    let nper = if segment_len.is_power_of_two() {
        segment_len
    } else {
        segment_len.next_power_of_two() / 2
    };
    if signal.len() < nper {
        return Err(DspError::SignalTooShort {
            required: nper,
            actual: signal.len(),
        });
    }

    let hann: Vec<f64> = (0..nper)
        .map(|i| {
            0.5 * (1.0
                - (2.0 * std::f64::consts::PI * i as f64 / (nper as f64 - 1.0)).cos())
        })
        .collect();
    let win_power: f64 = hann.iter().map(|w| w * w).sum();

    let step = nper / 2;
    let n_bins = nper / 2 + 1;
    let mut acc = vec![0.0_f64; n_bins];
    let mut segments = 0usize;

    let mut start = 0;
    while start + nper <= signal.len() {
        let seg = &signal[start..start + nper];
        let mean: f64 = seg.iter().map(|&x| f64::from(x)).sum::<f64>() / nper as f64;
        let windowed: Vec<f32> = seg
            .iter()
            .zip(&hann)
            .map(|(&x, w)| ((f64::from(x) - mean) * w) as f32)
            .collect();
        let spec = rfft(&windowed)?;
        for (k, a) in acc.iter_mut().enumerate() {
            let mut p = spec[k].norm_sqr();
            // One-sided: double everything except DC and Nyquist.
            if k != 0 && k != nper / 2 {
                p *= 2.0;
            }
            *a += p / (fs * win_power);
        }
        segments += 1;
        start += step;
    }

    let frequencies = (0..n_bins).map(|k| bin_frequency(k, nper, fs)).collect();
    let power = acc.into_iter().map(|p| p / segments as f64).collect();
    Ok(Psd { frequencies, power })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 125.0;

    fn tone(f: f64, amp: f64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (amp * (2.0 * std::f64::consts::PI * f * i as f64 / FS).sin()) as f32)
            .collect()
    }

    #[test]
    fn peak_matches_tone_frequency() {
        let sig = tone(10.0, 1.0, 2000);
        let psd = welch_psd(&sig, FS, 256).unwrap();
        let peak = psd.peak_frequency(1.0, 60.0).unwrap();
        assert!((peak - 10.0).abs() < 0.5, "peak {peak}");
    }

    #[test]
    fn band_power_captures_tone_energy() {
        let sig = tone(10.0, 2.0, 4000);
        let psd = welch_psd(&sig, FS, 256).unwrap();
        // A sine of amplitude 2 has mean-square power 2.
        let alpha = psd.band_power(8.0, 13.0);
        assert!((alpha - 2.0).abs() < 0.2, "alpha power {alpha}");
        // Almost nothing elsewhere.
        assert!(psd.band_power(20.0, 40.0) < 0.05);
    }

    #[test]
    fn white_noise_is_flat() {
        // Deterministic pseudo-noise.
        let mut state = 0x1234_5678_u64;
        let sig: Vec<f32> = (0..8000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / f64::from(u32::MAX) - 0.5) as f32
            })
            .collect();
        let psd = welch_psd(&sig, FS, 256).unwrap();
        let low = psd.band_power(5.0, 25.0) / 20.0;
        let high = psd.band_power(35.0, 55.0) / 20.0;
        let ratio = low / high;
        assert!(ratio > 0.7 && ratio < 1.4, "flatness ratio {ratio}");
    }

    #[test]
    fn too_short_input_rejected() {
        let sig = tone(10.0, 1.0, 100);
        assert!(matches!(
            welch_psd(&sig, FS, 256),
            Err(DspError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn dc_is_removed_by_detrend() {
        let sig: Vec<f32> = tone(10.0, 1.0, 2000).iter().map(|x| x + 100.0).collect();
        let psd = welch_psd(&sig, FS, 256).unwrap();
        // DC offset must not leak into delta band.
        let delta = psd.band_power(0.0, 1.0);
        assert!(delta < 0.5, "delta power {delta}");
    }
}
