//! Powerline notch filter.
//!
//! The paper removes 50 Hz mains interference with a notch of quality factor
//! 30 (Sec. III-A3). We implement the standard second-order IIR notch (the
//! same design as `scipy.signal.iirnotch`): a pair of unit-circle zeros at
//! the notch frequency pulled inward by conjugate poles whose radius is set
//! by the quality factor.

use crate::biquad::{Biquad, SosFilter};
use crate::{DspError, Result};

/// Designs a second-order notch filter centred at `f0` Hz.
///
/// `q` is the quality factor `f0 / bandwidth`; the paper uses `q = 30` at
/// `f0 = 50 Hz`, i.e. a -3 dB bandwidth of about 1.7 Hz.
///
/// # Errors
///
/// Returns [`DspError::InvalidFrequency`] when `f0` is outside `(0, fs / 2)`
/// and [`DspError::InvalidQuality`] when `q <= 0`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dsp::DspError> {
/// let notch = dsp::notch::notch_filter(50.0, 30.0, 125.0)?;
/// // Unity gain far from the notch, zero at the notch.
/// assert!(notch.magnitude_at(50.0, 125.0) < 1e-6);
/// assert!((notch.magnitude_at(10.0, 125.0) - 1.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn notch_filter(f0: f64, q: f64, fs: f64) -> Result<SosFilter> {
    if !(f0 > 0.0 && f0 < fs / 2.0) {
        return Err(DspError::InvalidFrequency {
            frequency: f0,
            sample_rate: fs,
        });
    }
    if q <= 0.0 {
        return Err(DspError::InvalidQuality(q));
    }

    let w0 = 2.0 * std::f64::consts::PI * f0 / fs;
    let alpha = w0.sin() / (2.0 * q);
    let cw = w0.cos();

    let b = [1.0, -2.0 * cw, 1.0];
    let a = [1.0 + alpha, -2.0 * cw, 1.0 - alpha];
    Ok(SosFilter::new(vec![Biquad::new(b, a)]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 125.0;

    #[test]
    fn paper_notch_kills_50hz() {
        let n = notch_filter(50.0, 30.0, FS).unwrap();
        assert!(n.is_stable());
        assert!(n.magnitude_at(50.0, FS) < 1e-9);
    }

    #[test]
    fn passes_frequencies_away_from_notch() {
        let n = notch_filter(50.0, 30.0, FS).unwrap();
        for f in [1.0, 10.0, 30.0, 45.0] {
            let g = n.magnitude_at(f, FS);
            assert!((g - 1.0).abs() < 0.02, "gain at {f} Hz was {g}");
        }
    }

    #[test]
    fn bandwidth_scales_with_quality() {
        // Lower Q -> wider notch: gain at 48 Hz should be lower for Q=5 than Q=30.
        let narrow = notch_filter(50.0, 30.0, FS).unwrap();
        let wide = notch_filter(50.0, 5.0, FS).unwrap();
        assert!(wide.magnitude_at(48.0, FS) < narrow.magnitude_at(48.0, FS));
    }

    #[test]
    fn removes_line_noise_from_mixture() {
        let n = notch_filter(50.0, 30.0, FS).unwrap();
        let len = 1500;
        let sig: Vec<f32> = (0..len)
            .map(|i| {
                let t = i as f64 / FS;
                ((2.0 * std::f64::consts::PI * 10.0 * t).sin()
                    + 2.0 * (2.0 * std::f64::consts::PI * 50.0 * t).sin()) as f32
            })
            .collect();
        let out = n.filter(&sig);
        // After settling, output should be close to the pure 10 Hz tone.
        let tail: Vec<f64> = out[len / 2..].iter().map(|&x| f64::from(x)).collect();
        let reference: Vec<f64> = (len / 2..len)
            .map(|i| (2.0 * std::f64::consts::PI * 10.0 * i as f64 / FS).sin())
            .collect();
        let err: f64 = tail
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            / tail.len() as f64;
        assert!(err < 0.02, "residual mse {err}");
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(matches!(
            notch_filter(70.0, 30.0, FS),
            Err(DspError::InvalidFrequency { .. })
        ));
        assert!(matches!(
            notch_filter(50.0, 0.0, FS),
            Err(DspError::InvalidQuality(_))
        ));
    }
}
