//! Iterative radix-2 fast Fourier transform.
//!
//! Implemented from scratch (no external FFT crates are permitted in this
//! reproduction). The transform is the classic Cooley–Tukey decimation in
//! time with an explicit bit-reversal permutation; lengths must be powers of
//! two. Helpers for real input and for the inverse transform are provided.

use serde::{Deserialize, Serialize};

use crate::{DspError, Result};

/// A complex number in double precision.
///
/// Deliberately minimal: only the operations the DSP stack needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Creates a complex number from parts.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Zero.
    #[must_use]
    pub fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// `e^{i theta}`.
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|^2`.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex square root (principal branch).
    #[must_use]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).max(0.0).sqrt();
        Self {
            re,
            im: if self.im < 0.0 { -im_mag } else { im_mag },
        }
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl std::ops::Add for Complex64 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex64 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex64 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Div for Complex64 {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl std::ops::Neg for Complex64 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

/// In-place forward FFT.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if `buf.len()` is not a power of two
/// (zero-length input is accepted and is a no-op).
pub fn fft_in_place(buf: &mut [Complex64]) -> Result<()> {
    transform(buf, false)
}

/// In-place inverse FFT (includes the `1/N` scaling).
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if `buf.len()` is not a power of two.
pub fn ifft_in_place(buf: &mut [Complex64]) -> Result<()> {
    transform(buf, true)?;
    let n = buf.len() as f64;
    for v in buf.iter_mut() {
        *v = v.scale(1.0 / n);
    }
    Ok(())
}

fn transform(buf: &mut [Complex64], inverse: bool) -> Result<()> {
    let n = buf.len();
    if n == 0 {
        return Ok(());
    }
    if !n.is_power_of_two() {
        return Err(DspError::NotPowerOfTwo(n));
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::from_polar(1.0, ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of length `signal.len().next_power_of_two()`.
///
/// # Errors
///
/// Returns [`DspError::SignalTooShort`] if the input is empty.
pub fn rfft(signal: &[f32]) -> Result<Vec<Complex64>> {
    if signal.is_empty() {
        return Err(DspError::SignalTooShort {
            required: 1,
            actual: 0,
        });
    }
    let n = signal.len().next_power_of_two();
    let mut buf = vec![Complex64::zero(); n];
    for (b, &s) in buf.iter_mut().zip(signal) {
        b.re = f64::from(s);
    }
    fft_in_place(&mut buf)?;
    Ok(buf)
}

/// Frequency in Hz of FFT bin `k` for an `n`-point transform at rate `fs`.
#[must_use]
pub fn bin_frequency(k: usize, n: usize, fs: f64) -> f64 {
    k as f64 * fs / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex64::zero(); 8];
        buf[0] = Complex64::new(1.0, 0.0);
        fft_in_place(&mut buf).unwrap();
        for v in buf {
            assert_close(v.re, 1.0, 1e-12);
            assert_close(v.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_then_ifft_roundtrips() {
        let mut buf: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let orig = buf.clone();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&orig) {
            assert_close(a.re, b.re, 1e-9);
            assert_close(a.im, b.im, 1e-9);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 256;
        let fs = 125.0;
        let f0 = fs * 16.0 / n as f64; // exactly bin 16
        let signal: Vec<f32> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin() as f32)
            .collect();
        let spec = rfft(&signal).unwrap();
        let mags: Vec<f64> = spec.iter().take(n / 2).map(|c| c.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 16);
        assert_close(bin_frequency(peak, n, fs), f0, 1e-9);
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut buf = vec![Complex64::zero(); 12];
        assert_eq!(
            fft_in_place(&mut buf).unwrap_err(),
            DspError::NotPowerOfTwo(12)
        );
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let signal: Vec<f32> = (0..128).map(|i| ((i * 31 + 7) % 17) as f32 - 8.0).collect();
        let time_energy: f64 = signal.iter().map(|&x| f64::from(x).powi(2)).sum();
        let spec = rfft(&signal).unwrap();
        let freq_energy: f64 =
            spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / spec.len() as f64;
        assert_close(time_energy, freq_energy, 1e-6);
    }

    #[test]
    fn rfft_roundtrips_through_ifft_within_1e9() {
        // Real signal -> rfft -> inverse transform recovers the signal to
        // 1e-9, and the spectrum of a real signal is conjugate-symmetric.
        let n = 512;
        let signal: Vec<f32> = (0..n)
            .map(|i| {
                let t = i as f64 / 125.0;
                ((2.0 * std::f64::consts::PI * 10.0 * t).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 23.0 * t).cos()) as f32
            })
            .collect();
        let spec = rfft(&signal).unwrap();
        assert_eq!(spec.len(), n);
        for k in 1..n / 2 {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert_close(a.re, b.re, 1e-9);
            assert_close(a.im, b.im, 1e-9);
        }
        let mut buf = spec;
        ifft_in_place(&mut buf).unwrap();
        for (got, want) in buf.iter().zip(&signal) {
            assert_close(got.re, f64::from(*want), 1e-9);
            assert_close(got.im, 0.0, 1e-9);
        }
    }

    #[test]
    fn fft_is_linear() {
        let n = 128;
        let xa: Vec<Complex64> = (0..n).map(|i| Complex64::new((i as f64).sin(), 0.0)).collect();
        let xb: Vec<Complex64> = (0..n).map(|i| Complex64::new(0.0, (i as f64 * 0.5).cos())).collect();
        let fft_of = |v: &[Complex64]| {
            let mut b = v.to_vec();
            fft_in_place(&mut b).unwrap();
            b
        };
        let fa = fft_of(&xa);
        let fb = fft_of(&xb);
        let sum: Vec<Complex64> = xa.iter().zip(&xb).map(|(&a, &b)| a + b).collect();
        let fsum = fft_of(&sum);
        for k in 0..n {
            assert_close(fsum[k].re, fa[k].re + fb[k].re, 1e-9);
            assert_close(fsum[k].im, fa[k].im + fb[k].im, 1e-9);
        }
    }

    #[test]
    fn complex_sqrt_squares_back() {
        for (re, im) in [(3.0, 4.0), (-2.0, 1.0), (0.0, -9.0), (5.0, 0.0)] {
            let z = Complex64::new(re, im);
            let r = z.sqrt();
            let back = r * r;
            assert_close(back.re, re, 1e-9);
            assert_close(back.im, im, 1e-9);
        }
    }
}
