//! Second-order IIR sections (biquads) and cascades.
//!
//! All designed filters in this crate are represented as a cascade of
//! [`Biquad`] sections evaluated in direct-form-II-transposed, which is the
//! numerically preferred realization for audio-rate and biosignal IIR
//! filtering. Coefficients and state are kept in `f64` even though the public
//! sample type is `f32`; a 9th-order Butterworth at a 125 Hz rate has poles
//! close to the unit circle and single precision state is not reliable there.

use serde::{Deserialize, Serialize};

/// One second-order section `H(z) = (b0 + b1 z^-1 + b2 z^-2) / (1 + a1 z^-1 + a2 z^-2)`.
///
/// The denominator is stored normalized (`a0 == 1`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Biquad {
    /// Numerator coefficients `b0, b1, b2`.
    pub b: [f64; 3],
    /// Denominator coefficients `a1, a2` (with implicit `a0 = 1`).
    pub a: [f64; 2],
}

impl Biquad {
    /// Creates a section from raw transfer-function coefficients.
    ///
    /// `a` is the full denominator `[a0, a1, a2]`; all coefficients are
    /// normalized by `a0`.
    ///
    /// # Panics
    ///
    /// Panics if `a[0]` is zero.
    #[must_use]
    pub fn new(b: [f64; 3], a: [f64; 3]) -> Self {
        assert!(a[0] != 0.0, "a0 coefficient must be non-zero");
        Self {
            b: [b[0] / a[0], b[1] / a[0], b[2] / a[0]],
            a: [a[1] / a[0], a[2] / a[0]],
        }
    }

    /// The identity (pass-through) section.
    #[must_use]
    pub fn identity() -> Self {
        Self {
            b: [1.0, 0.0, 0.0],
            a: [0.0, 0.0],
        }
    }

    /// Evaluates the complex frequency response at normalized angular
    /// frequency `omega` (radians/sample). Returns `(re, im)`.
    #[must_use]
    pub fn response_at(&self, omega: f64) -> (f64, f64) {
        // e^{-j w k} terms for k = 0, 1, 2.
        let (c1, s1) = (omega.cos(), -omega.sin());
        let (c2, s2) = ((2.0 * omega).cos(), -(2.0 * omega).sin());
        let num_re = self.b[0] + self.b[1] * c1 + self.b[2] * c2;
        let num_im = self.b[1] * s1 + self.b[2] * s2;
        let den_re = 1.0 + self.a[0] * c1 + self.a[1] * c2;
        let den_im = self.a[0] * s1 + self.a[1] * s2;
        let mag2 = den_re * den_re + den_im * den_im;
        (
            (num_re * den_re + num_im * den_im) / mag2,
            (num_im * den_re - num_re * den_im) / mag2,
        )
    }

    /// Magnitude of the frequency response at normalized angular frequency.
    #[must_use]
    pub fn magnitude_at(&self, omega: f64) -> f64 {
        let (re, im) = self.response_at(omega);
        re.hypot(im)
    }

    /// Returns `true` when both poles are strictly inside the unit circle.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        // Jury criterion for a quadratic 1 + a1 z^-1 + a2 z^-2.
        let (a1, a2) = (self.a[0], self.a[1]);
        a2.abs() < 1.0 && (a1.abs()) < 1.0 + a2
    }
}

/// Running state for one biquad (direct form II transposed).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct BiquadState {
    z1: f64,
    z2: f64,
}

impl BiquadState {
    #[inline]
    fn step(&mut self, coeff: &Biquad, x: f64) -> f64 {
        let y = coeff.b[0] * x + self.z1;
        self.z1 = coeff.b[1] * x - coeff.a[0] * y + self.z2;
        self.z2 = coeff.b[2] * x - coeff.a[1] * y;
        y
    }
}

/// A cascade of second-order sections forming one higher-order filter.
///
/// The cascade is immutable once designed; running it allocates transient
/// state internally (see [`SosFilter::filter`]) or explicitly through
/// [`SosFilter::runner`] for streaming use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SosFilter {
    sections: Vec<Biquad>,
}

impl SosFilter {
    /// Builds a cascade from individual sections.
    #[must_use]
    pub fn new(sections: Vec<Biquad>) -> Self {
        Self { sections }
    }

    /// The second-order sections of this filter.
    #[must_use]
    pub fn sections(&self) -> &[Biquad] {
        &self.sections
    }

    /// Total filter order (2 per section).
    #[must_use]
    pub fn order(&self) -> usize {
        self.sections.len() * 2
    }

    /// Magnitude response at frequency `f` Hz for sampling rate `fs` Hz.
    #[must_use]
    pub fn magnitude_at(&self, f: f64, fs: f64) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * f / fs;
        self.sections
            .iter()
            .map(|s| s.magnitude_at(omega))
            .product()
    }

    /// Returns `true` when every section is stable.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.sections.iter().all(Biquad::is_stable)
    }

    /// Scales the overall gain by multiplying the first section's numerator.
    pub fn scale_gain(&mut self, g: f64) {
        if let Some(first) = self.sections.first_mut() {
            for b in &mut first.b {
                *b *= g;
            }
        }
    }

    /// Causally filters a signal, returning a new vector of the same length.
    ///
    /// The filter starts from zero state; for streaming use across chunk
    /// boundaries use [`SosFilter::runner`] which preserves state. Hot
    /// callers that re-run cascades should use [`SosFilter::filter_into`]
    /// with reused buffers instead.
    #[must_use]
    pub fn filter(&self, signal: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.filter_into(signal, &mut out, &mut SosScratch::default());
        out
    }

    /// [`SosFilter::filter`] into a reused output buffer (cleared first)
    /// with reused section state — identical values, zero steady-state
    /// allocations once `out` and `scratch` have warmed to the signal
    /// length and cascade depth.
    pub fn filter_into(&self, signal: &[f32], out: &mut Vec<f32>, scratch: &mut SosScratch) {
        scratch.state.clear();
        scratch.state.resize(self.sections.len(), BiquadState::default());
        out.clear();
        out.reserve(signal.len());
        for &x in signal {
            let mut acc = f64::from(x);
            for (coeff, state) in self.sections.iter().zip(scratch.state.iter_mut()) {
                acc = state.step(coeff, acc);
            }
            out.push(acc as f32);
        }
    }

    /// Creates a stateful runner for sample-by-sample streaming.
    #[must_use]
    pub fn runner(&self) -> SosRunner<'_> {
        SosRunner {
            filter: self,
            state: vec![BiquadState::default(); self.sections.len()],
        }
    }
}

/// Reusable delay-state scratch for [`SosFilter::filter_into`] — lets a
/// caller re-run cascades of any depth without per-call allocation once
/// the scratch has warmed to the deepest cascade it has seen.
#[derive(Debug, Clone, Default)]
pub struct SosScratch {
    state: Vec<BiquadState>,
}

/// Stateful executor for an [`SosFilter`], suitable for real-time streaming.
///
/// Keeps per-section delay state so consecutive chunks filter identically to
/// one contiguous signal.
#[derive(Debug, Clone)]
pub struct SosRunner<'a> {
    filter: &'a SosFilter,
    state: Vec<BiquadState>,
}

impl SosRunner<'_> {
    /// Processes one input sample and returns the filtered output sample.
    #[inline]
    pub fn step(&mut self, x: f32) -> f32 {
        let mut acc = f64::from(x);
        for (coeff, state) in self.filter.sections.iter().zip(self.state.iter_mut()) {
            acc = state.step(coeff, acc);
        }
        acc as f32
    }

    /// Processes a chunk in place.
    pub fn process(&mut self, chunk: &mut [f32]) {
        for x in chunk {
            *x = self.step(*x);
        }
    }

    /// Resets all delay state to zero.
    pub fn reset(&mut self) {
        for s in &mut self.state {
            *s = BiquadState::default();
        }
    }
}

/// An owned filter + state pair for long-lived streaming use (e.g. one per
/// EEG channel inside the real-time pipeline), where the borrowing
/// [`SosRunner`] is inconvenient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingFilter {
    filter: SosFilter,
    #[serde(skip)]
    state: Vec<BiquadState>,
}

impl StreamingFilter {
    /// Wraps a designed filter with fresh state.
    #[must_use]
    pub fn new(filter: SosFilter) -> Self {
        let state = vec![BiquadState::default(); filter.sections().len()];
        Self { filter, state }
    }

    /// The wrapped cascade.
    #[must_use]
    pub fn filter(&self) -> &SosFilter {
        &self.filter
    }

    /// Processes one sample, preserving state across calls.
    #[inline]
    pub fn step(&mut self, x: f32) -> f32 {
        if self.state.len() != self.filter.sections().len() {
            // Restores state after deserialization.
            self.state = vec![BiquadState::default(); self.filter.sections().len()];
        }
        let mut acc = f64::from(x);
        for (coeff, state) in self.filter.sections.iter().zip(self.state.iter_mut()) {
            acc = state.step(coeff, acc);
        }
        acc as f32
    }

    /// Resets the delay state.
    pub fn reset(&mut self) {
        for s in &mut self.state {
            *s = BiquadState::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_passes_signal_through() {
        let f = SosFilter::new(vec![Biquad::identity()]);
        let x = vec![1.0_f32, -2.0, 3.5, 0.0];
        assert_eq!(f.filter(&x), x);
    }

    #[test]
    fn normalization_divides_by_a0() {
        let b = Biquad::new([2.0, 0.0, 0.0], [2.0, 0.0, 0.0]);
        assert_eq!(b.b, [1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "a0")]
    fn zero_a0_panics() {
        let _ = Biquad::new([1.0, 0.0, 0.0], [0.0, 0.0, 0.0]);
    }

    #[test]
    fn stability_check_detects_unstable_pole() {
        // Pole at z = 1.1 -> unstable.
        let unstable = Biquad::new([1.0, 0.0, 0.0], [1.0, -2.2, 1.21]);
        assert!(!unstable.is_stable());
        // Poles at 0.5 -> stable.
        let stable = Biquad::new([1.0, 0.0, 0.0], [1.0, -1.0, 0.25]);
        assert!(stable.is_stable());
    }

    #[test]
    fn runner_matches_batch_across_chunks() {
        // A simple stable lowpass-ish section.
        let f = SosFilter::new(vec![Biquad::new([0.2, 0.4, 0.2], [1.0, -0.5, 0.2])]);
        let x: Vec<f32> = (0..64).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let batch = f.filter(&x);

        let mut runner = f.runner();
        let mut chunked = Vec::new();
        for chunk in x.chunks(5) {
            for &s in chunk {
                chunked.push(runner.step(s));
            }
        }
        for (a, b) in batch.iter().zip(&chunked) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn magnitude_at_dc_for_unity_gain_section() {
        let f = SosFilter::new(vec![Biquad::identity()]);
        assert!((f.magnitude_at(0.0, 125.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_filter_matches_batch() {
        let f = SosFilter::new(vec![Biquad::new([0.2, 0.4, 0.2], [1.0, -0.5, 0.2])]);
        let x: Vec<f32> = (0..64).map(|i| ((i * 11) % 7) as f32 - 3.0).collect();
        let batch = f.filter(&x);
        let mut s = StreamingFilter::new(f);
        let streamed: Vec<f32> = x.iter().map(|&v| s.step(v)).collect();
        for (a, b) in batch.iter().zip(&streamed) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn impulse_response_matches_difference_equation() {
        // Feed a unit impulse and check the first outputs against the
        // difference equation y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2]
        //                          - a1 y[n-1] - a2 y[n-2].
        let (b, a) = ([0.3, -0.1, 0.05], [1.0, -0.6, 0.25]);
        let f = SosFilter::new(vec![Biquad::new(b, a)]);
        let mut x = vec![0.0_f32; 16];
        x[0] = 1.0;
        let h = f.filter(&x);

        let mut expect = vec![0.0_f64; 16];
        for n in 0..16 {
            let xv = |k: i64| if k == 0 { 1.0 } else { 0.0 };
            let yv = |k: i64, e: &[f64]| if k < 0 { 0.0 } else { e[k as usize] };
            let n_i = n as i64;
            expect[n] = b[0] * xv(n_i) + b[1] * xv(n_i - 1) + b[2] * xv(n_i - 2)
                - a[1] * yv(n_i - 1, &expect)
                - a[2] * yv(n_i - 2, &expect);
        }
        for (got, want) in h.iter().zip(&expect) {
            assert!((f64::from(*got) - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn stable_impulse_response_decays() {
        let f = SosFilter::new(vec![Biquad::new([0.2, 0.4, 0.2], [1.0, -0.9, 0.3])]);
        let mut x = vec![0.0_f32; 256];
        x[0] = 1.0;
        let h = f.filter(&x);
        let head: f32 = h[..32].iter().map(|v| v.abs()).sum();
        let tail: f32 = h[224..].iter().map(|v| v.abs()).sum();
        assert!(head > 0.0);
        assert!(tail < 1e-12, "stable section's impulse tail {tail} did not die out");
    }

    #[test]
    fn reset_clears_state() {
        let f = SosFilter::new(vec![Biquad::new([0.2, 0.4, 0.2], [1.0, -0.5, 0.2])]);
        let mut r = f.runner();
        let first = r.step(1.0);
        r.reset();
        let second = r.step(1.0);
        assert!((first - second).abs() < 1e-9);
    }
}
