//! Runtime SIMD dispatch policy for the DSP execution kernels.
//!
//! Every vectorized kernel in this crate keeps a scalar reference body
//! that computes bit-identical results, so dispatch is a pure performance
//! decision. Selection happens once per process:
//!
//! * hosts without AVX2 always take the scalar bodies;
//! * `COGARM_NO_SIMD=1` pins the process to the scalar bodies even on
//!   AVX2 hosts — the escape hatch CI uses to lock scalar/vector parity
//!   on every runner (`ml` honors the same variable at its dispatch
//!   points).

use std::sync::OnceLock;

/// Whether the `COGARM_NO_SIMD` escape hatch is set. Read once per
/// process: dispatch must not flip while compiled banks are live.
#[must_use]
pub fn force_disabled() -> bool {
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| {
        std::env::var("COGARM_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// Whether vectorized kernel bodies run on this host: AVX2 detected and
/// the escape hatch off. Public so benches can gate speedup assertions on
/// the dispatch actually taken.
#[must_use]
pub fn enabled() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        !force_disabled() && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}
