//! Per-channel z-score normalization.
//!
//! Sec. V-A: "we normalized EEG data using the mean and standard deviation of
//! each participant's readings" — a fit/transform pair so the statistics are
//! estimated on training data only and reused at inference time (the
//! real-time loop applies the same frozen transform).

use serde::{Deserialize, Serialize};

use crate::{DspError, Result};

/// A fitted per-channel z-score transform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zscore {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl Zscore {
    /// Fits means and standard deviations on channel-major data
    /// (`channels` rows of equal length).
    ///
    /// Standard deviations below `1e-6` are clamped to 1 so constant channels
    /// normalize to zero instead of exploding.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidWindow`] when `channels` is zero or the
    /// data length is not divisible by `channels`, and
    /// [`DspError::SignalTooShort`] on empty data.
    pub fn fit(data: &[f32], channels: usize) -> Result<Self> {
        if data.is_empty() {
            return Err(DspError::SignalTooShort {
                required: 1,
                actual: 0,
            });
        }
        if channels == 0 || !data.len().is_multiple_of(channels) {
            return Err(DspError::InvalidWindow {
                size: channels,
                step: 0,
            });
        }
        let per = data.len() / channels;
        let mut means = Vec::with_capacity(channels);
        let mut stds = Vec::with_capacity(channels);
        for ch in 0..channels {
            let row = &data[ch * per..(ch + 1) * per];
            let mean = row.iter().map(|&x| f64::from(x)).sum::<f64>() / per as f64;
            let var = row
                .iter()
                .map(|&x| (f64::from(x) - mean).powi(2))
                .sum::<f64>()
                / per as f64;
            means.push(mean as f32);
            let std = var.sqrt() as f32;
            stds.push(if std < 1e-6 { 1.0 } else { std });
        }
        Ok(Self { means, stds })
    }

    /// Reassembles a transform from previously fitted statistics (the
    /// model-persistence load path).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidWindow`] when the vectors are empty,
    /// differ in length, or any statistic is non-finite or the standard
    /// deviation is not strictly positive (the streaming path divides by
    /// it).
    pub fn from_parts(means: Vec<f32>, stds: Vec<f32>) -> Result<Self> {
        let valid = !means.is_empty()
            && means.len() == stds.len()
            && means.iter().all(|m| m.is_finite())
            && stds.iter().all(|s| s.is_finite() && *s > 0.0);
        if !valid {
            return Err(DspError::InvalidWindow {
                size: means.len(),
                step: stds.len(),
            });
        }
        Ok(Self { means, stds })
    }

    /// Number of channels this transform was fitted on.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.means.len()
    }

    /// Per-channel means.
    #[must_use]
    pub fn means(&self) -> &[f32] {
        &self.means
    }

    /// Per-channel standard deviations (clamped).
    #[must_use]
    pub fn stds(&self) -> &[f32] {
        &self.stds
    }

    /// Applies the transform in place to channel-major data with any number
    /// of samples per channel.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidWindow`] if the data length is not
    /// divisible by the fitted channel count.
    pub fn apply(&self, data: &mut [f32]) -> Result<()> {
        let channels = self.channels();
        if channels == 0 || !data.len().is_multiple_of(channels) {
            return Err(DspError::InvalidWindow {
                size: channels,
                step: 0,
            });
        }
        let per = data.len() / channels;
        for ch in 0..channels {
            let mean = self.means[ch];
            let inv = 1.0 / self.stds[ch];
            for x in &mut data[ch * per..(ch + 1) * per] {
                *x = (*x - mean) * inv;
            }
        }
        Ok(())
    }

    /// Convenience: fit on `data` and normalize it in place.
    ///
    /// # Errors
    ///
    /// Same as [`Zscore::fit`].
    pub fn fit_transform(data: &mut [f32], channels: usize) -> Result<Self> {
        let z = Self::fit(data, channels)?;
        z.apply(data)?;
        Ok(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_channels_have_zero_mean_unit_std() {
        let mut data: Vec<f32> = (0..200).map(|i| 3.0 + 2.0 * (i as f32 * 0.1).sin()).collect();
        data.extend((0..200).map(|i| -5.0 + 0.5 * (i as f32 * 0.3).cos()));
        let _z = Zscore::fit_transform(&mut data, 2).unwrap();
        for ch in 0..2 {
            let row = &data[ch * 200..(ch + 1) * 200];
            let mean: f32 = row.iter().sum::<f32>() / 200.0;
            let var: f32 = row.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 200.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn constant_channel_does_not_explode() {
        let mut data = vec![7.0_f32; 100];
        let z = Zscore::fit_transform(&mut data, 1).unwrap();
        assert_eq!(z.stds()[0], 1.0);
        assert!(data.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn transform_reuses_training_statistics() {
        let train: Vec<f32> = (0..100).map(|i| i as f32).collect(); // mean 49.5
        let z = Zscore::fit(&train, 1).unwrap();
        let mut test = vec![49.5_f32; 10];
        z.apply(&mut test).unwrap();
        assert!(test.iter().all(|&x| x.abs() < 1e-4));
    }

    #[test]
    fn apply_accepts_different_length_same_channels() {
        let train = vec![0.0_f32, 1.0, 2.0, 10.0, 11.0, 12.0];
        let z = Zscore::fit(&train, 2).unwrap();
        let mut window = vec![1.0_f32, 1.0, 11.0, 11.0]; // 2 channels x 2 samples
        assert!(z.apply(&mut window).is_ok());
    }

    #[test]
    fn rejects_mismatched_layout() {
        let z = Zscore::fit(&[1.0, 2.0, 3.0, 4.0], 2).unwrap();
        let mut bad = vec![0.0_f32; 5];
        assert!(z.apply(&mut bad).is_err());
        assert!(Zscore::fit(&[], 2).is_err());
        assert!(Zscore::fit(&[1.0; 10], 3).is_err());
    }
}
