//! Compiled channel-parallel execution form for causal SOS filter chains.
//!
//! The streaming pipeline advances one [`crate::biquad::StreamingFilter`]
//! cascade per channel, one sample at a time — sixteen independent
//! recurrences whose coefficients are identical and whose state never
//! interacts. A [`FilterBank`] compiles that shape into a
//! structure-of-arrays form: delay state is laid out `[section][lane]`
//! with one lane per channel, so a single AVX2 instruction advances four
//! channels through a biquad section at once. Like `ml::matexec`, the
//! compiled form changes **where state lives, never what is computed**:
//!
//! * each lane evaluates the direct-form-II-transposed recurrence in the
//!   same operation order as [`crate::biquad::SosRunner::step`] — one
//!   multiply, add, subtract sequence per section, no FMA contraction,
//!   no reassociation;
//! * a chain of several cascades ("stages", e.g. band-pass then notch)
//!   reproduces the scalar composition exactly, including the f32
//!   round-trip at each cascade boundary (`StreamingFilter::step`
//!   narrows its accumulator to `f32` between filters);
//! * lanes are independent channels, so vectorizing across them cannot
//!   reorder any channel's accumulation.
//!
//! Dispatch follows the crate-wide policy ([`crate::simd`]): the scalar
//! reference body always exists, AVX2 is selected at runtime, and
//! `COGARM_NO_SIMD=1` pins the scalar body. `tests/tests/filters.rs`
//! locks all of this against golden traces committed before the swap.

use crate::biquad::SosFilter;

/// f64 lanes per AVX2 vector — the channel-block granularity.
pub const LANES: usize = 4;

/// A compiled bank of identical per-channel causal filter chains.
///
/// Built once per session from the designed cascades; advancing a frame
/// mutates only the delay state, so a warm bank performs zero heap
/// allocations.
#[derive(Debug, Clone)]
pub struct FilterBank {
    channels: usize,
    /// `channels` rounded up to a multiple of [`LANES`]; padding lanes
    /// carry exact zeros through every recurrence (zero state, zero
    /// input), so they can never produce denormal drag.
    lanes: usize,
    /// Per-section coefficients `[b0, b1, b2, a1, a2]`, cascade order
    /// across all stages.
    coeffs: Vec<[f64; 5]>,
    /// Exclusive section index ending each stage. The accumulator is
    /// narrowed f64 → f32 → f64 at every stage end, reproducing the
    /// scalar path's per-filter `as f32` narrowing.
    stage_ends: Vec<usize>,
    /// Delay state `z1[section * lanes + lane]`.
    z1: Vec<f64>,
    /// Delay state `z2[section * lanes + lane]`.
    z2: Vec<f64>,
    /// Widened per-lane accumulator scratch.
    acc: Vec<f64>,
    /// Resolved dispatch: run the AVX2 body.
    simd: bool,
}

impl FilterBank {
    /// Compiles `stages` (applied in order, with the scalar path's f32
    /// narrowing between them) into a bank advancing `channels` parallel
    /// chains. Dispatch is resolved here from the crate-wide policy.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or `stages` is empty.
    #[must_use]
    pub fn new(channels: usize, stages: &[&SosFilter]) -> Self {
        Self::with_simd(channels, stages, crate::simd::enabled())
    }

    /// [`FilterBank::new`] with dispatch requested explicitly — the hook
    /// for parity tests that compare both bodies in one process. The
    /// request is still clamped to what the host supports.
    #[must_use]
    pub fn with_simd(channels: usize, stages: &[&SosFilter], simd: bool) -> Self {
        assert!(channels > 0, "a filter bank needs at least one channel");
        assert!(!stages.is_empty(), "a filter bank needs at least one stage");
        let mut coeffs = Vec::new();
        let mut stage_ends = Vec::with_capacity(stages.len());
        for stage in stages {
            for s in stage.sections() {
                coeffs.push([s.b[0], s.b[1], s.b[2], s.a[0], s.a[1]]);
            }
            stage_ends.push(coeffs.len());
        }
        let lanes = channels.div_ceil(LANES) * LANES;
        let simd = simd && host_has_avx2();
        Self {
            channels,
            lanes,
            z1: vec![0.0; coeffs.len() * lanes],
            z2: vec![0.0; coeffs.len() * lanes],
            acc: vec![0.0; lanes],
            coeffs,
            stage_ends,
            simd,
        }
    }

    /// Parallel chains this bank advances.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Total biquad sections across all stages.
    #[must_use]
    pub fn sections(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the AVX2 body was selected at build.
    #[must_use]
    pub fn is_simd(&self) -> bool {
        self.simd
    }

    /// Zeroes all delay state (new session).
    pub fn reset(&mut self) {
        self.z1.fill(0.0);
        self.z2.fill(0.0);
        self.acc.fill(0.0);
    }

    /// Advances every channel one sample, in place: `frame[ch]` is the
    /// raw sample in and the fully filtered sample out. Per channel the
    /// result is bit-identical to stepping that channel's scalar
    /// [`crate::biquad::StreamingFilter`] chain.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not exactly [`FilterBank::channels`] long.
    #[inline]
    pub fn step_frame(&mut self, frame: &mut [f32]) {
        assert_eq!(frame.len(), self.channels, "frame width != bank channels");
        for (a, &x) in self.acc.iter_mut().zip(frame.iter()) {
            *a = f64::from(x);
        }
        self.advance();
        for (&a, x) in self.acc.iter().zip(frame.iter_mut()) {
            *x = a as f32;
        }
    }

    /// Advances a frame-major block in place: `data` holds consecutive
    /// frames of [`FilterBank::channels`] samples. The offline zero-phase
    /// fast path drives whole extended signals through this.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of frames.
    pub fn process_frames(&mut self, data: &mut [f32]) {
        assert_eq!(
            data.len() % self.channels,
            0,
            "block is not a whole number of frames"
        );
        for frame in data.chunks_exact_mut(self.channels) {
            self.step_frame(frame);
        }
    }

    /// One state advance over the widened accumulator.
    #[inline]
    fn advance(&mut self) {
        #[cfg(target_arch = "x86_64")]
        if self.simd {
            // SAFETY: `simd` is only set when AVX2 was detected at build;
            // state and accumulator lengths are fixed at `sections *
            // lanes` / `lanes` with `lanes` a multiple of 4.
            unsafe {
                advance_avx2(
                    &self.coeffs,
                    &self.stage_ends,
                    &mut self.z1,
                    &mut self.z2,
                    &mut self.acc,
                    self.lanes,
                );
            }
            return;
        }
        advance_scalar(
            &self.coeffs,
            &self.stage_ends,
            &mut self.z1,
            &mut self.z2,
            &mut self.acc,
            self.lanes,
        );
    }
}

/// Whether this host can run the AVX2 body at all (independent of the
/// [`crate::simd`] policy — used to clamp explicit dispatch requests).
fn host_has_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The scalar reference body: for each lane, the exact
/// direct-form-II-transposed recurrence of `SosRunner::step`, with the
/// f64 → f32 → f64 narrowing at each stage boundary.
fn advance_scalar(
    coeffs: &[[f64; 5]],
    stage_ends: &[usize],
    z1: &mut [f64],
    z2: &mut [f64],
    acc: &mut [f64],
    lanes: usize,
) {
    let mut s0 = 0usize;
    for &end in stage_ends {
        for (s, c) in coeffs.iter().enumerate().take(end).skip(s0) {
            let base = s * lanes;
            for (l, a) in acc.iter_mut().enumerate() {
                let x = *a;
                let y = c[0] * x + z1[base + l];
                z1[base + l] = (c[1] * x - c[3] * y) + z2[base + l];
                z2[base + l] = c[2] * x - c[4] * y;
                *a = y;
            }
        }
        for a in acc.iter_mut() {
            *a = f64::from(*a as f32);
        }
        s0 = end;
    }
}

/// The AVX2 body: four channels per vector, sections walked with the
/// accumulator held in a register across the whole chain. Uses separate
/// multiply/add/subtract instructions (never FMA) so every lane computes
/// the identical IEEE sequence as [`advance_scalar`]; `vcvtpd2ps` /
/// `vcvtps2pd` at stage ends perform the same round-to-nearest-even
/// narrowing as the scalar `as f32`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn advance_avx2(
    coeffs: &[[f64; 5]],
    stage_ends: &[usize],
    z1: &mut [f64],
    z2: &mut [f64],
    acc: &mut [f64],
    lanes: usize,
) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_cvtpd_ps, _mm256_cvtps_pd, _mm256_loadu_pd, _mm256_mul_pd,
        _mm256_set1_pd, _mm256_storeu_pd, _mm256_sub_pd,
    };
    debug_assert_eq!(lanes % LANES, 0);
    for blk in (0..lanes).step_by(LANES) {
        let mut v = _mm256_loadu_pd(acc.as_ptr().add(blk));
        let mut s0 = 0usize;
        for &end in stage_ends {
            for s in s0..end {
                let c = coeffs.get_unchecked(s);
                let idx = s * lanes + blk;
                let z1v = _mm256_loadu_pd(z1.as_ptr().add(idx));
                let z2v = _mm256_loadu_pd(z2.as_ptr().add(idx));
                let y = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(c[0]), v), z1v);
                let n1 = _mm256_add_pd(
                    _mm256_sub_pd(
                        _mm256_mul_pd(_mm256_set1_pd(c[1]), v),
                        _mm256_mul_pd(_mm256_set1_pd(c[3]), y),
                    ),
                    z2v,
                );
                let n2 = _mm256_sub_pd(
                    _mm256_mul_pd(_mm256_set1_pd(c[2]), v),
                    _mm256_mul_pd(_mm256_set1_pd(c[4]), y),
                );
                _mm256_storeu_pd(z1.as_mut_ptr().add(idx), n1);
                _mm256_storeu_pd(z2.as_mut_ptr().add(idx), n2);
                v = y;
            }
            v = _mm256_cvtps_pd(_mm256_cvtpd_ps(v));
            s0 = end;
        }
        _mm256_storeu_pd(acc.as_mut_ptr().add(blk), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biquad::{Biquad, StreamingFilter};

    fn chirpy(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.07;
                ((t * t).sin() * 3.0 + (t * 5.0).cos()) as f32
            })
            .collect()
    }

    fn two_stage_filters() -> (SosFilter, SosFilter) {
        let a = SosFilter::new(vec![
            Biquad::new([0.2, 0.4, 0.2], [1.0, -0.5, 0.2]),
            Biquad::new([0.3, -0.1, 0.05], [1.0, -0.6, 0.25]),
        ]);
        let b = SosFilter::new(vec![Biquad::new([0.9, -1.2, 0.9], [1.0, -1.2, 0.8])]);
        (a, b)
    }

    /// The scalar composition the bank replaces: per channel, stage A's
    /// streaming filter into stage B's, f32 between them.
    fn scalar_reference(a: &SosFilter, b: &SosFilter, channels: usize, frames: &[f32]) -> Vec<f32> {
        let mut fa: Vec<StreamingFilter> =
            (0..channels).map(|_| StreamingFilter::new(a.clone())).collect();
        let mut fb: Vec<StreamingFilter> =
            (0..channels).map(|_| StreamingFilter::new(b.clone())).collect();
        frames
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let ch = i % channels;
                fb[ch].step(fa[ch].step(x))
            })
            .collect()
    }

    #[test]
    fn bank_matches_scalar_chains_bit_for_bit() {
        let (a, b) = two_stage_filters();
        for channels in [1usize, 3, 4, 5, 16] {
            let n = 96 * channels;
            let mut data = chirpy(n);
            let want: Vec<u32> = scalar_reference(&a, &b, channels, &data)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let mut bank = FilterBank::new(channels, &[&a, &b]);
            bank.process_frames(&mut data);
            let got: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(want, got, "channels={channels} simd={}", bank.is_simd());
        }
    }

    #[test]
    fn scalar_and_simd_bodies_agree() {
        let (a, b) = two_stage_filters();
        let channels = 7;
        let mut on_simd = chirpy(64 * channels);
        let mut on_scalar = on_simd.clone();
        let mut bank_simd = FilterBank::with_simd(channels, &[&a, &b], true);
        let mut bank_scalar = FilterBank::with_simd(channels, &[&a, &b], false);
        assert!(!bank_scalar.is_simd());
        bank_simd.process_frames(&mut on_simd);
        bank_scalar.process_frames(&mut on_scalar);
        let s: Vec<u32> = on_simd.iter().map(|v| v.to_bits()).collect();
        let r: Vec<u32> = on_scalar.iter().map(|v| v.to_bits()).collect();
        assert_eq!(s, r);
    }

    #[test]
    fn reset_restores_the_initial_transient() {
        let (a, b) = two_stage_filters();
        let mut bank = FilterBank::new(3, &[&a, &b]);
        let mut first = [1.0f32, -2.0, 0.5];
        bank.step_frame(&mut first);
        bank.reset();
        let mut second = [1.0f32, -2.0, 0.5];
        bank.step_frame(&mut second);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "frame width")]
    fn wrong_frame_width_panics() {
        let (a, _) = two_stage_filters();
        let mut bank = FilterBank::new(4, &[&a]);
        bank.step_frame(&mut [0.0; 3]);
    }
}
