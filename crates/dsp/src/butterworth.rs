//! Butterworth IIR filter design via the bilinear transform.
//!
//! The paper's preprocessing uses a "9th-order Butterworth bandpass filter"
//! retaining 0.5–45 Hz (Sec. III-A3). We reproduce the standard design
//! procedure used by scientific toolkits (and by BrainFlow internally):
//!
//! 1. place the analog low-pass prototype poles on the Butterworth circle,
//! 2. pre-warp the digital corner frequencies,
//! 3. apply the analog low-pass → {low, high, band}-pass transform,
//! 4. map poles/zeros to the z-domain with the bilinear transform,
//! 5. pair conjugate roots into second-order sections, and
//! 6. normalize the cascade gain at a reference frequency.
//!
//! A low-pass prototype of order `n` yields `n` poles for low/high-pass and
//! `2n` for band-pass, so a 9th-order band-pass here is a cascade of nine
//! biquads (18 poles), matching `scipy.signal.butter(9, [lo, hi], "band")`.

use crate::biquad::{Biquad, SosFilter};
use crate::fft::Complex64;
use crate::{DspError, Result};

/// Butterworth filter designer.
///
/// This type is a namespace for the design constructors; the designed filter
/// itself is an [`SosFilter`].
#[derive(Debug, Clone, Copy)]
pub struct Butterworth;

impl Butterworth {
    /// Designs a digital low-pass filter of the given order.
    ///
    /// # Errors
    ///
    /// Returns an error when `order == 0` or `cutoff` is outside
    /// `(0, fs / 2)`.
    pub fn lowpass(order: usize, cutoff: f64, fs: f64) -> Result<SosFilter> {
        validate(order, cutoff, fs)?;
        let warped = prewarp(cutoff, fs);
        let poles: Vec<Complex64> = prototype_poles(order)
            .into_iter()
            .map(|p| p.scale(warped))
            .collect();
        // n zeros at s = infinity -> z = -1 after bilinear.
        let zeros = vec![];
        let sos = bilinear_to_sos(&poles, &zeros, order, fs, ZeroKind::AtMinusOne);
        Ok(normalized(sos, 0.0, fs))
    }

    /// Designs a digital high-pass filter of the given order.
    ///
    /// # Errors
    ///
    /// Returns an error when `order == 0` or `cutoff` is outside
    /// `(0, fs / 2)`.
    pub fn highpass(order: usize, cutoff: f64, fs: f64) -> Result<SosFilter> {
        validate(order, cutoff, fs)?;
        let warped = prewarp(cutoff, fs);
        let poles: Vec<Complex64> = prototype_poles(order)
            .into_iter()
            .map(|p| Complex64::new(warped, 0.0) / p)
            .collect();
        // n zeros at s = 0 -> z = +1 after bilinear.
        let zeros = vec![Complex64::zero(); order];
        let sos = bilinear_to_sos(&poles, &zeros, order, fs, ZeroKind::Explicit);
        Ok(normalized(sos, fs / 2.0 * 0.999, fs))
    }

    /// Designs a digital band-pass filter.
    ///
    /// `order` is the low-pass prototype order; the resulting filter has
    /// `2 * order` poles (`order` biquad sections), which matches the
    /// convention of scipy's `butter(order, [low, high], "band")`.
    ///
    /// # Errors
    ///
    /// Returns an error when `order == 0`, either edge is outside
    /// `(0, fs / 2)`, or `low >= high`.
    pub fn bandpass(order: usize, low: f64, high: f64, fs: f64) -> Result<SosFilter> {
        if order == 0 {
            return Err(DspError::ZeroOrder);
        }
        if low >= high {
            return Err(DspError::InvalidBand { low, high });
        }
        validate(order, low, fs)?;
        validate(order, high, fs)?;

        let w1 = prewarp(low, fs);
        let w2 = prewarp(high, fs);
        let bw = w2 - w1;
        let w0 = (w1 * w2).sqrt();

        // LP->BP: each prototype pole p maps to the two roots of
        //   s^2 - (p * bw) s + w0^2 = 0.
        let mut poles = Vec::with_capacity(2 * order);
        for p in prototype_poles(order) {
            let half = p.scale(bw / 2.0);
            let disc = (half * half - Complex64::new(w0 * w0, 0.0)).sqrt();
            poles.push(half + disc);
            poles.push(half - disc);
        }
        // order zeros at s = 0 (-> z = +1) and order at infinity (-> z = -1).
        let zeros = vec![Complex64::zero(); order];
        let sos = bilinear_to_sos(&poles, &zeros, 2 * order, fs, ZeroKind::Mixed);
        Ok(normalized(sos, w0_to_hz(w0, fs), fs))
    }
}

/// Converts a warped analog angular frequency back to the digital frequency
/// in Hz it corresponds to under the bilinear transform.
fn w0_to_hz(w0: f64, fs: f64) -> f64 {
    (w0 / (2.0 * fs)).atan() * fs / std::f64::consts::PI
}

fn validate(order: usize, f: f64, fs: f64) -> Result<()> {
    if order == 0 {
        return Err(DspError::ZeroOrder);
    }
    if !(f > 0.0 && f < fs / 2.0) {
        return Err(DspError::InvalidFrequency {
            frequency: f,
            sample_rate: fs,
        });
    }
    Ok(())
}

/// Pre-warps a digital corner frequency (Hz) to the analog angular frequency
/// used by the bilinear transform.
fn prewarp(f: f64, fs: f64) -> f64 {
    2.0 * fs * (std::f64::consts::PI * f / fs).tan()
}

/// Poles of the analog Butterworth low-pass prototype (cutoff 1 rad/s),
/// left-half-plane only.
fn prototype_poles(order: usize) -> Vec<Complex64> {
    (0..order)
        .map(|k| {
            let theta = std::f64::consts::PI * (2.0 * k as f64 + order as f64 + 1.0)
                / (2.0 * order as f64);
            Complex64::from_polar(1.0, theta)
        })
        .collect()
}

/// How the numerator zeros of the digital filter are laid out.
enum ZeroKind {
    /// All zeros at z = -1 (low-pass).
    AtMinusOne,
    /// Zeros given explicitly in the analog domain (high-pass: all at s=0).
    Explicit,
    /// Band-pass: one z=+1 and one z=-1 zero per section.
    Mixed,
}

/// Bilinear transform of analog poles (and optionally zeros) into z-domain
/// biquad sections. `n_poles` is the total analog pole count; zeros at
/// infinity are implied to fill the numerator degree.
fn bilinear_to_sos(
    poles: &[Complex64],
    analog_zeros: &[Complex64],
    n_poles: usize,
    fs: f64,
    kind: ZeroKind,
) -> SosFilter {
    debug_assert_eq!(poles.len(), n_poles);
    let two_fs = Complex64::new(2.0 * fs, 0.0);
    let bilinear =
        |s: Complex64| -> Complex64 { (two_fs + s) / (two_fs - s) };

    let z_poles: Vec<Complex64> = poles.iter().map(|&p| bilinear(p)).collect();
    let _ = analog_zeros;

    // Pair poles: conjugate pairs first (take those with positive imaginary
    // part), then real poles two at a time (one real pole left over for odd
    // counts pairs with an implicit pole at the origin, i.e. a first-order
    // section expressed as a biquad with a2 = 0).
    let eps = 1e-10;
    let mut complex_ps: Vec<Complex64> =
        z_poles.iter().copied().filter(|p| p.im > eps).collect();
    // Stable ordering: by |p| then angle, so designs are deterministic.
    complex_ps.sort_by(|a, b| {
        a.norm_sqr()
            .partial_cmp(&b.norm_sqr())
            .unwrap()
            .then(a.im.partial_cmp(&b.im).unwrap())
    });
    let mut real_ps: Vec<f64> = z_poles
        .iter()
        .filter(|p| p.im.abs() <= eps)
        .map(|p| p.re)
        .collect();
    real_ps.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let mut sections = Vec::new();
    for p in complex_ps {
        // (1 - p z^-1)(1 - p* z^-1) = 1 - 2 Re(p) z^-1 + |p|^2 z^-2.
        let a = [1.0, -2.0 * p.re, p.norm_sqr()];
        sections.push(make_section(a, &kind));
    }
    while real_ps.len() >= 2 {
        let p1 = real_ps.pop().expect("len checked");
        let p2 = real_ps.pop().expect("len checked");
        let a = [1.0, -(p1 + p2), p1 * p2];
        sections.push(make_section(a, &kind));
    }
    if let Some(p) = real_ps.pop() {
        // First-order remainder.
        let a = [1.0, -p, 0.0];
        let b = match kind {
            ZeroKind::AtMinusOne => [1.0, 1.0, 0.0],
            ZeroKind::Explicit => [1.0, -1.0, 0.0],
            // For band-pass the leftover real pole still needs one zero; give
            // it the z=+1 zero (the matching z=-1 zero went to another
            // section via the Mixed allocation below which always emits both,
            // so in practice band-pass never reaches this arm: pole counts
            // are even).
            ZeroKind::Mixed => [1.0, -1.0, 0.0],
        };
        sections.push(Biquad::new(b, a));
    }
    SosFilter::new(sections)
}

fn make_section(a: [f64; 3], kind: &ZeroKind) -> Biquad {
    let b = match kind {
        // (1 + z^-1)^2
        ZeroKind::AtMinusOne => [1.0, 2.0, 1.0],
        // (1 - z^-1)^2
        ZeroKind::Explicit => [1.0, -2.0, 1.0],
        // (1 - z^-1)(1 + z^-1) = 1 - z^-2
        ZeroKind::Mixed => [1.0, 0.0, -1.0],
    };
    Biquad::new(b, a)
}

/// Normalizes the cascade so its magnitude is exactly 1 at `f_ref` Hz.
fn normalized(mut sos: SosFilter, f_ref: f64, fs: f64) -> SosFilter {
    let g = sos.magnitude_at(f_ref, fs);
    if g > 0.0 && g.is_finite() {
        sos.scale_gain(1.0 / g);
    }
    sos
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 125.0;

    #[test]
    fn paper_bandpass_design_is_stable() {
        let f = Butterworth::bandpass(9, 0.5, 45.0, FS).unwrap();
        assert!(f.is_stable());
        assert_eq!(f.sections().len(), 9);
        assert_eq!(f.order(), 18);
    }

    #[test]
    fn bandpass_passes_band_and_rejects_stopbands() {
        let f = Butterworth::bandpass(4, 0.5, 45.0, FS).unwrap();
        // Mid-band close to unity.
        let mid = f.magnitude_at(10.0, FS);
        assert!((mid - 1.0).abs() < 0.05, "mid-band gain {mid}");
        // DC fully rejected.
        assert!(f.magnitude_at(0.0, FS) < 1e-6);
        // Above the band heavily attenuated.
        assert!(f.magnitude_at(60.0, FS) < 0.05);
        // Near Nyquist rejected.
        assert!(f.magnitude_at(62.0, FS) < 0.05);
    }

    #[test]
    fn lowpass_attenuates_high_frequencies() {
        let f = Butterworth::lowpass(5, 20.0, FS).unwrap();
        assert!(f.is_stable());
        assert!((f.magnitude_at(1.0, FS) - 1.0).abs() < 0.01);
        // -3 dB at the corner.
        let corner = f.magnitude_at(20.0, FS);
        assert!(
            (corner - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
            "corner gain {corner}"
        );
        assert!(f.magnitude_at(50.0, FS) < 0.01);
    }

    #[test]
    fn highpass_attenuates_low_frequencies() {
        let f = Butterworth::highpass(4, 5.0, FS).unwrap();
        assert!(f.is_stable());
        assert!(f.magnitude_at(0.1, FS) < 0.01);
        assert!((f.magnitude_at(30.0, FS) - 1.0).abs() < 0.02);
        let corner = f.magnitude_at(5.0, FS);
        assert!(
            (corner - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
            "corner gain {corner}"
        );
    }

    #[test]
    fn odd_order_lowpass_works() {
        for order in [1, 3, 7, 9] {
            let f = Butterworth::lowpass(order, 15.0, FS).unwrap();
            assert!(f.is_stable(), "order {order} unstable");
            assert!((f.magnitude_at(0.5, FS) - 1.0).abs() < 0.02);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            Butterworth::lowpass(0, 10.0, FS),
            Err(DspError::ZeroOrder)
        ));
        assert!(matches!(
            Butterworth::lowpass(4, 80.0, FS),
            Err(DspError::InvalidFrequency { .. })
        ));
        assert!(matches!(
            Butterworth::bandpass(4, 45.0, 0.5, FS),
            Err(DspError::InvalidBand { .. })
        ));
        assert!(matches!(
            Butterworth::bandpass(4, 0.0, 45.0, FS),
            Err(DspError::InvalidBand { .. }) | Err(DspError::InvalidFrequency { .. })
        ));
    }

    #[test]
    fn paper_bandpass_impulse_response_is_sane() {
        // Impulse-response sanity for the paper's 9th-order 0.5–45 Hz design:
        // finite everywhere, energy concentrated early, tail decayed.
        let f = Butterworth::bandpass(9, 0.5, 45.0, FS).unwrap();
        let mut x = vec![0.0_f32; 4096];
        x[0] = 1.0;
        let h = f.filter(&x);
        assert!(h.iter().all(|v| v.is_finite()));
        let energy = |s: &[f32]| s.iter().map(|&v| f64::from(v).powi(2)).sum::<f64>();
        let total = energy(&h);
        assert!(total > 0.0);
        // The band-pass has a slow 0.5 Hz edge (multi-second settling), but
        // at 125 Hz the first ~8 s must hold nearly all the energy…
        assert!(energy(&h[..1024]) / total > 0.99, "impulse energy arrives late");
        // …and the final second must be essentially silent.
        assert!(energy(&h[3968..]) / total < 1e-6, "impulse tail never decays");
    }

    #[test]
    fn bandpass_monotone_rolloff_outside_band() {
        let f = Butterworth::bandpass(4, 8.0, 13.0, FS).unwrap();
        let g20 = f.magnitude_at(20.0, FS);
        let g30 = f.magnitude_at(30.0, FS);
        let g45 = f.magnitude_at(45.0, FS);
        assert!(g20 > g30 && g30 > g45, "{g20} {g30} {g45}");
    }

    #[test]
    fn filtering_removes_out_of_band_tone() {
        // 10 Hz (in band) + 55 Hz (out of band) mixture at 250 Hz rate so the
        // 55 Hz tone is representable.
        let fs = 250.0;
        let f = Butterworth::bandpass(6, 0.5, 45.0, fs).unwrap();
        let n = 2000;
        let sig: Vec<f32> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                ((2.0 * std::f64::consts::PI * 10.0 * t).sin()
                    + (2.0 * std::f64::consts::PI * 55.0 * t).sin()) as f32
            })
            .collect();
        let out = f.filter(&sig);
        // Compare steady-state RMS of last half against a pure 10 Hz tone.
        let tail = &out[n / 2..];
        let rms: f64 =
            (tail.iter().map(|&x| f64::from(x).powi(2)).sum::<f64>() / tail.len() as f64).sqrt();
        let pure_rms = std::f64::consts::FRAC_1_SQRT_2;
        assert!((rms - pure_rms).abs() < 0.08, "rms {rms} vs {pure_rms}");
    }
}
