//! Sliding-window segmentation (Sec. III-B3).
//!
//! The preprocessed recording is cut into overlapping windows of 100–200
//! samples (0.8–1.6 s at 125 Hz) advanced by 25 samples (0.2 s). Each window
//! inherits the label of the mental-task block it was cut from; windows that
//! straddle a block boundary are dropped by the dataset builder (transition
//! handling lives in `eeg::dataset`).

use serde::{Deserialize, Serialize};

use crate::{DspError, Result};

/// Configuration of the sliding-window segmenter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Window length in samples (paper sweeps 100–200).
    pub size: usize,
    /// Hop between consecutive windows in samples (paper: 25).
    pub step: usize,
}

impl WindowConfig {
    /// Creates a config, validating both values are non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidWindow`] if `size == 0` or `step == 0`.
    pub fn new(size: usize, step: usize) -> Result<Self> {
        if size == 0 || step == 0 {
            return Err(DspError::InvalidWindow { size, step });
        }
        Ok(Self { size, step })
    }

    /// The paper's default: 0.2 s hop at 125 Hz.
    pub const PAPER_STEP: usize = 25;

    /// Number of windows produced from `n` samples.
    #[must_use]
    pub fn count(&self, n: usize) -> usize {
        if n < self.size {
            0
        } else {
            (n - self.size) / self.step + 1
        }
    }

    /// Start indices of every window over `n` samples.
    pub fn starts(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        let count = self.count(n);
        (0..count).map(move |i| i * self.step)
    }
}

/// Iterator over multichannel sliding windows.
///
/// Input layout is channel-major: `channels` rows of `samples_per_channel`
/// contiguous values. Each yielded window is a freshly allocated channel-major
/// buffer of `channels * size` values.
#[derive(Debug, Clone)]
pub struct Windows<'a> {
    data: &'a [f32],
    channels: usize,
    per_channel: usize,
    config: WindowConfig,
    next: usize,
}

impl<'a> Windows<'a> {
    /// Creates the window iterator.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when fewer samples than one
    /// window are available, or [`DspError::InvalidWindow`] for a degenerate
    /// config or data length not divisible by `channels`.
    pub fn new(data: &'a [f32], channels: usize, config: WindowConfig) -> Result<Self> {
        if channels == 0 || !data.len().is_multiple_of(channels) {
            return Err(DspError::InvalidWindow {
                size: config.size,
                step: config.step,
            });
        }
        let per_channel = data.len() / channels;
        if per_channel < config.size {
            return Err(DspError::SignalTooShort {
                required: config.size,
                actual: per_channel,
            });
        }
        Ok(Self {
            data,
            channels,
            per_channel,
            config,
            next: 0,
        })
    }

    /// Number of windows this iterator will yield in total.
    #[must_use]
    pub fn total(&self) -> usize {
        self.config.count(self.per_channel)
    }
}

impl Iterator for Windows<'_> {
    /// `(start_sample, channel-major window buffer)`.
    type Item = (usize, Vec<f32>);

    fn next(&mut self) -> Option<Self::Item> {
        let start = self.next;
        if start + self.config.size > self.per_channel {
            return None;
        }
        self.next += self.config.step;
        let mut buf = Vec::with_capacity(self.channels * self.config.size);
        for ch in 0..self.channels {
            let base = ch * self.per_channel + start;
            buf.extend_from_slice(&self.data[base..base + self.config.size]);
        }
        Some((start, buf))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.next + self.config.size > self.per_channel {
            0
        } else {
            (self.per_channel - self.config.size - self.next) / self.config.step + 1
        };
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window_counts() {
        // 5 minutes at 125 Hz = 37500 samples; window 190, step 25.
        let cfg = WindowConfig::new(190, 25).unwrap();
        assert_eq!(cfg.count(37_500), (37_500 - 190) / 25 + 1);
        // Shorter than one window -> zero.
        assert_eq!(cfg.count(100), 0);
    }

    #[test]
    fn windows_are_channel_major_and_overlapping() {
        // 2 channels, 10 samples each; window 4, step 2.
        let mut data = Vec::new();
        data.extend((0..10).map(|i| i as f32)); // channel 0: 0..10
        data.extend((0..10).map(|i| 100.0 + i as f32)); // channel 1
        let cfg = WindowConfig::new(4, 2).unwrap();
        let wins: Vec<_> = Windows::new(&data, 2, cfg).unwrap().collect();
        assert_eq!(wins.len(), 4);
        let (start, first) = &wins[0];
        assert_eq!(*start, 0);
        assert_eq!(first[..4], [0.0, 1.0, 2.0, 3.0]);
        assert_eq!(first[4..], [100.0, 101.0, 102.0, 103.0]);
        let (s1, second) = &wins[1];
        assert_eq!(*s1, 2);
        assert_eq!(second[..4], [2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn size_hint_matches_actual() {
        let data = vec![0.0_f32; 3 * 100];
        let cfg = WindowConfig::new(30, 7).unwrap();
        let it = Windows::new(&data, 3, cfg).unwrap();
        let hinted = it.size_hint().0;
        assert_eq!(hinted, it.count());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(WindowConfig::new(0, 25).is_err());
        assert!(WindowConfig::new(100, 0).is_err());
        let data = vec![0.0_f32; 50];
        let cfg = WindowConfig::new(100, 25).unwrap();
        assert!(matches!(
            Windows::new(&data, 1, cfg),
            Err(DspError::SignalTooShort { .. })
        ));
        assert!(Windows::new(&data, 3, cfg).is_err()); // 50 % 3 != 0
    }

    #[test]
    fn starts_iterator_matches_windows() {
        let data = vec![0.0_f32; 200];
        let cfg = WindowConfig::new(50, 25).unwrap();
        let starts: Vec<usize> = cfg.starts(200).collect();
        let wins: Vec<usize> = Windows::new(&data, 1, cfg)
            .unwrap()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(starts, wins);
    }
}
