use std::fmt;

/// Errors produced by filter design and spectral estimation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DspError {
    /// A filter was requested with order zero.
    ZeroOrder,
    /// A corner frequency is outside `(0, fs / 2)`.
    InvalidFrequency {
        /// The offending frequency in Hz.
        frequency: f64,
        /// Sampling rate in Hz the frequency was validated against.
        sample_rate: f64,
    },
    /// The band edges of a band-pass filter are inverted or equal.
    InvalidBand {
        /// Lower band edge in Hz.
        low: f64,
        /// Upper band edge in Hz.
        high: f64,
    },
    /// A quality factor must be strictly positive.
    InvalidQuality(f64),
    /// The input signal is too short for the requested operation.
    SignalTooShort {
        /// Number of samples required.
        required: usize,
        /// Number of samples provided.
        actual: usize,
    },
    /// Window parameters do not produce any segment.
    InvalidWindow {
        /// Requested window size in samples.
        size: usize,
        /// Requested step in samples.
        step: usize,
    },
    /// FFT input length must be a power of two.
    NotPowerOfTwo(usize),
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::ZeroOrder => write!(f, "filter order must be at least 1"),
            DspError::InvalidFrequency {
                frequency,
                sample_rate,
            } => write!(
                f,
                "frequency {frequency} Hz is outside (0, {}) for fs = {sample_rate} Hz",
                sample_rate / 2.0
            ),
            DspError::InvalidBand { low, high } => {
                write!(f, "band edges are invalid: low {low} Hz, high {high} Hz")
            }
            DspError::InvalidQuality(q) => {
                write!(f, "quality factor must be positive, got {q}")
            }
            DspError::SignalTooShort { required, actual } => write!(
                f,
                "signal has {actual} samples but at least {required} are required"
            ),
            DspError::InvalidWindow { size, step } => {
                write!(f, "window size {size} with step {step} yields no segments")
            }
            DspError::NotPowerOfTwo(n) => {
                write!(f, "fft length must be a power of two, got {n}")
            }
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DspError::InvalidFrequency {
            frequency: 100.0,
            sample_rate: 125.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("125"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
