//! Zero-phase (forward-backward) filtering.
//!
//! Offline dataset preparation can afford non-causal filtering, which removes
//! the phase distortion a causal IIR pass introduces. `filtfilt` runs the
//! cascade forward, reverses, runs it again and reverses back, with odd
//! reflection padding at both ends to suppress edge transients (the same
//! strategy as scipy's `filtfilt`).
//!
//! The real-time control loop must use the causal [`SosRunner`] instead; the
//! ablation bench `fig5` quantifies the difference.
//!
//! [`SosRunner`]: crate::biquad::SosRunner

use crate::biquad::{SosFilter, SosScratch};
use crate::filterbank::FilterBank;
use crate::{DspError, Result};

/// The odd-reflection pad length for `filter`.
fn reflection_pad(filter: &SosFilter) -> usize {
    3 * (filter.order() + 1)
}

/// Applies `filter` with zero phase distortion.
///
/// The effective magnitude response is the square of the cascade's, so the
/// -3 dB point moves slightly inward; this matches standard practice.
///
/// # Errors
///
/// Returns [`DspError::SignalTooShort`] when the signal is shorter than the
/// reflection pad (3 × filter order + 3 samples).
pub fn filtfilt(filter: &SosFilter, signal: &[f32]) -> Result<Vec<f32>> {
    let mut out = Vec::new();
    filtfilt_into(filter, signal, &mut out, &mut FiltfiltScratch::default())?;
    Ok(out)
}

/// Reusable working memory for [`filtfilt_into`]: the odd-reflection
/// extended signal, the intermediate pass, and the cascade delay state.
/// Re-running chains of the same shape through one scratch performs zero
/// steady-state allocations.
#[derive(Debug, Clone, Default)]
pub struct FiltfiltScratch {
    extended: Vec<f32>,
    filtered: Vec<f32>,
    sos: SosScratch,
}

/// [`filtfilt`] into a reused output buffer (cleared first), with all
/// working memory drawn from `scratch`. Identical values.
///
/// # Errors
///
/// As [`filtfilt`].
pub fn filtfilt_into(
    filter: &SosFilter,
    signal: &[f32],
    out: &mut Vec<f32>,
    scratch: &mut FiltfiltScratch,
) -> Result<()> {
    let pad = reflection_pad(filter);
    if signal.len() <= pad {
        return Err(DspError::SignalTooShort {
            required: pad + 1,
            actual: signal.len(),
        });
    }

    let FiltfiltScratch {
        extended,
        filtered,
        sos,
    } = scratch;

    // Odd reflection about the first/last sample: 2*edge - x.
    extended.clear();
    extended.reserve(signal.len() + 2 * pad);
    let first = signal[0];
    let last = signal[signal.len() - 1];
    for i in (1..=pad).rev() {
        extended.push(2.0 * first - signal[i]);
    }
    extended.extend_from_slice(signal);
    for i in (signal.len() - pad - 1..signal.len() - 1).rev() {
        extended.push(2.0 * last - signal[i]);
    }

    filter.filter_into(extended, filtered, sos);
    filtered.reverse();
    filter.filter_into(filtered, extended, sos);
    extended.reverse();

    out.clear();
    out.extend_from_slice(&extended[pad..pad + signal.len()]);
    Ok(())
}

/// Zero-phase filtering over a block of channels through a compiled
/// [`FilterBank`] — the offline fast path. One forward and one reverse
/// pass advance every channel in SIMD lanes; per channel the output is
/// bit-identical to [`filtfilt`] on that channel alone, because lanes are
/// independent and each evaluates the scalar operation sequence.
#[derive(Debug, Clone)]
pub struct ZeroPhaseBank {
    bank: FilterBank,
    pad: usize,
    /// Frame-major interleaved extended block (reused across calls).
    ext: Vec<f32>,
}

impl ZeroPhaseBank {
    /// Compiles `filter` into a bank over `channels` parallel lanes.
    #[must_use]
    pub fn new(filter: &SosFilter, channels: usize) -> Self {
        Self {
            bank: FilterBank::new(channels, &[filter]),
            pad: reflection_pad(filter),
            ext: Vec::new(),
        }
    }

    /// Lanes compiled into the bank — the widest block one
    /// [`ZeroPhaseBank::apply_channel_major`] call can filter.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.bank.channels()
    }

    /// Zero-phase filters a channel-major block in place: `block` holds
    /// up to [`ZeroPhaseBank::channels`] rows of `per` samples each.
    /// Unused lanes carry zeros. Zero steady-state allocations once the
    /// scratch has warmed to the block shape.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::SignalTooShort`] when rows are shorter than
    /// the reflection pad.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a whole number of rows or holds more
    /// rows than the bank has lanes.
    pub fn apply_channel_major(&mut self, block: &mut [f32], per: usize) -> Result<()> {
        assert_eq!(block.len() % per.max(1), 0, "block is not whole rows");
        let width = block.len().checked_div(per).unwrap_or(0);
        assert!(width <= self.bank.channels(), "block wider than the bank");
        let pad = self.pad;
        if per <= pad {
            return Err(DspError::SignalTooShort {
                required: pad + 1,
                actual: per,
            });
        }
        let lanes = self.bank.channels();
        let frames = per + 2 * pad;
        self.ext.clear();
        self.ext.resize(frames * lanes, 0.0);

        // Gather: odd reflection per lane, interleaved frame-major.
        for (c, row) in block.chunks_exact(per).enumerate() {
            let first = row[0];
            let last = row[per - 1];
            for j in 0..pad {
                self.ext[j * lanes + c] = 2.0 * first - row[pad - j];
            }
            for (j, &v) in row.iter().enumerate() {
                self.ext[(pad + j) * lanes + c] = v;
            }
            for j in 0..pad {
                self.ext[(pad + per + j) * lanes + c] = 2.0 * last - row[per - 2 - j];
            }
        }

        // Forward, reverse, forward, reverse — the filtfilt sequence,
        // with frame reversal standing in for per-channel reversal.
        self.bank.reset();
        self.bank.process_frames(&mut self.ext);
        reverse_frames(&mut self.ext, lanes);
        self.bank.reset();
        self.bank.process_frames(&mut self.ext);
        reverse_frames(&mut self.ext, lanes);

        // Scatter the unpadded span back.
        for (c, row) in block.chunks_exact_mut(per).enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = self.ext[(pad + j) * lanes + c];
            }
        }
        Ok(())
    }
}

/// Reverses the frame order of an interleaved block in place (each
/// lane's sequence reverses; lanes stay put).
fn reverse_frames(data: &mut [f32], lanes: usize) {
    let frames = data.len() / lanes;
    for i in 0..frames / 2 {
        let j = frames - 1 - i;
        for l in 0..lanes {
            data.swap(i * lanes + l, j * lanes + l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterworth::Butterworth;

    const FS: f64 = 125.0;

    fn tone(f: f64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / FS).sin() as f32)
            .collect()
    }

    #[test]
    fn preserves_length() {
        let f = Butterworth::bandpass(4, 0.5, 45.0, FS).unwrap();
        let x = tone(10.0, 500);
        let y = filtfilt(&f, &x).unwrap();
        assert_eq!(y.len(), x.len());
    }

    #[test]
    fn zero_phase_on_in_band_tone() {
        // A 10 Hz tone through a 0.5-45 Hz bandpass should come back nearly
        // unchanged AND phase-aligned (cross-correlation peak at lag 0).
        let f = Butterworth::bandpass(4, 0.5, 45.0, FS).unwrap();
        let x = tone(10.0, 1000);
        let y = filtfilt(&f, &x).unwrap();

        let corr_at = |lag: i64| -> f64 {
            let mut s = 0.0;
            for (i, &xi) in x.iter().enumerate() {
                let j = i as i64 + lag;
                if j >= 0 && (j as usize) < y.len() {
                    s += f64::from(xi) * f64::from(y[j as usize]);
                }
            }
            s
        };
        let c0 = corr_at(0);
        for lag in [-3, -2, -1, 1, 2, 3] {
            assert!(c0 > corr_at(lag), "lag {lag} beats zero lag");
        }
    }

    #[test]
    fn causal_filter_does_have_phase_lag() {
        // Sanity check that the zero-phase property above is non-trivial: the
        // causal pass of the same filter shifts the tone.
        let f = Butterworth::bandpass(4, 2.0, 30.0, FS).unwrap();
        let x = tone(10.0, 1000);
        let y = f.filter(&x);
        let dot: f64 = x
            .iter()
            .zip(&y)
            .skip(200)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        let xx: f64 = x.iter().skip(200).map(|&a| f64::from(a).powi(2)).sum();
        // Normalized in-phase component well below 1 -> phase lag exists.
        assert!(dot / xx < 0.995);
    }

    #[test]
    fn too_short_signal_is_rejected() {
        let f = Butterworth::bandpass(9, 0.5, 45.0, FS).unwrap();
        let x = vec![0.0_f32; 20];
        assert!(matches!(
            filtfilt(&f, &x),
            Err(DspError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn filtfilt_into_reuses_buffers_with_identical_values() {
        let f = Butterworth::bandpass(4, 0.5, 45.0, FS).unwrap();
        let mut out = Vec::new();
        let mut scratch = FiltfiltScratch::default();
        for freq in [5.0, 12.0, 30.0] {
            let x = tone(freq, 400);
            let want = filtfilt(&f, &x).unwrap();
            filtfilt_into(&f, &x, &mut out, &mut scratch).unwrap();
            let same = want.iter().zip(&out).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "freq {freq} diverged");
        }
    }

    #[test]
    fn zero_phase_bank_matches_filtfilt_bit_for_bit() {
        let f = Butterworth::bandpass(5, 1.0, 40.0, FS).unwrap();
        for width in [1usize, 2, 4] {
            let per = 300;
            let mut block: Vec<f32> = (0..width * per)
                .map(|i| ((i * 29 + 7) % 101) as f32 * 0.04 - 2.0)
                .collect();
            let want: Vec<Vec<f32>> = block
                .chunks_exact(per)
                .map(|row| filtfilt(&f, row).unwrap())
                .collect();
            let mut zp = ZeroPhaseBank::new(&f, 4);
            zp.apply_channel_major(&mut block, per).unwrap();
            for (c, row) in block.chunks_exact(per).enumerate() {
                let same = want[c].iter().zip(row).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "width {width} channel {c} diverged");
            }
        }
    }

    #[test]
    fn zero_phase_bank_rejects_short_rows() {
        let f = Butterworth::bandpass(9, 0.5, 45.0, FS).unwrap();
        let mut block = vec![0.0f32; 4 * 20];
        let mut zp = ZeroPhaseBank::new(&f, 4);
        assert!(matches!(
            zp.apply_channel_major(&mut block, 20),
            Err(DspError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn suppresses_out_of_band_better_than_single_pass() {
        let f = Butterworth::bandpass(2, 0.5, 20.0, FS).unwrap();
        let x = tone(25.0, 2000);
        let zero_phase = filtfilt(&f, &x).unwrap();
        let causal = f.filter(&x);
        let rms = |v: &[f32]| {
            (v.iter().skip(500).map(|&s| f64::from(s).powi(2)).sum::<f64>()
                / (v.len() - 500) as f64)
                .sqrt()
        };
        // Two passes double the stop-band attenuation in dB.
        assert!(rms(&zero_phase) < rms(&causal));
    }
}
