//! Zero-phase (forward-backward) filtering.
//!
//! Offline dataset preparation can afford non-causal filtering, which removes
//! the phase distortion a causal IIR pass introduces. `filtfilt` runs the
//! cascade forward, reverses, runs it again and reverses back, with odd
//! reflection padding at both ends to suppress edge transients (the same
//! strategy as scipy's `filtfilt`).
//!
//! The real-time control loop must use the causal [`SosRunner`] instead; the
//! ablation bench `fig5` quantifies the difference.
//!
//! [`SosRunner`]: crate::biquad::SosRunner

use crate::biquad::SosFilter;
use crate::{DspError, Result};

/// Applies `filter` with zero phase distortion.
///
/// The effective magnitude response is the square of the cascade's, so the
/// -3 dB point moves slightly inward; this matches standard practice.
///
/// # Errors
///
/// Returns [`DspError::SignalTooShort`] when the signal is shorter than the
/// reflection pad (3 × filter order + 3 samples).
pub fn filtfilt(filter: &SosFilter, signal: &[f32]) -> Result<Vec<f32>> {
    let pad = 3 * (filter.order() + 1);
    if signal.len() <= pad {
        return Err(DspError::SignalTooShort {
            required: pad + 1,
            actual: signal.len(),
        });
    }

    // Odd reflection about the first/last sample: 2*edge - x.
    let mut extended = Vec::with_capacity(signal.len() + 2 * pad);
    let first = signal[0];
    let last = signal[signal.len() - 1];
    for i in (1..=pad).rev() {
        extended.push(2.0 * first - signal[i]);
    }
    extended.extend_from_slice(signal);
    for i in (signal.len() - pad - 1..signal.len() - 1).rev() {
        extended.push(2.0 * last - signal[i]);
    }

    let mut fwd = filter.filter(&extended);
    fwd.reverse();
    let mut back = filter.filter(&fwd);
    back.reverse();

    Ok(back[pad..pad + signal.len()].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterworth::Butterworth;

    const FS: f64 = 125.0;

    fn tone(f: f64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / FS).sin() as f32)
            .collect()
    }

    #[test]
    fn preserves_length() {
        let f = Butterworth::bandpass(4, 0.5, 45.0, FS).unwrap();
        let x = tone(10.0, 500);
        let y = filtfilt(&f, &x).unwrap();
        assert_eq!(y.len(), x.len());
    }

    #[test]
    fn zero_phase_on_in_band_tone() {
        // A 10 Hz tone through a 0.5-45 Hz bandpass should come back nearly
        // unchanged AND phase-aligned (cross-correlation peak at lag 0).
        let f = Butterworth::bandpass(4, 0.5, 45.0, FS).unwrap();
        let x = tone(10.0, 1000);
        let y = filtfilt(&f, &x).unwrap();

        let corr_at = |lag: i64| -> f64 {
            let mut s = 0.0;
            for (i, &xi) in x.iter().enumerate() {
                let j = i as i64 + lag;
                if j >= 0 && (j as usize) < y.len() {
                    s += f64::from(xi) * f64::from(y[j as usize]);
                }
            }
            s
        };
        let c0 = corr_at(0);
        for lag in [-3, -2, -1, 1, 2, 3] {
            assert!(c0 > corr_at(lag), "lag {lag} beats zero lag");
        }
    }

    #[test]
    fn causal_filter_does_have_phase_lag() {
        // Sanity check that the zero-phase property above is non-trivial: the
        // causal pass of the same filter shifts the tone.
        let f = Butterworth::bandpass(4, 2.0, 30.0, FS).unwrap();
        let x = tone(10.0, 1000);
        let y = f.filter(&x);
        let dot: f64 = x
            .iter()
            .zip(&y)
            .skip(200)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        let xx: f64 = x.iter().skip(200).map(|&a| f64::from(a).powi(2)).sum();
        // Normalized in-phase component well below 1 -> phase lag exists.
        assert!(dot / xx < 0.995);
    }

    #[test]
    fn too_short_signal_is_rejected() {
        let f = Butterworth::bandpass(9, 0.5, 45.0, FS).unwrap();
        let x = vec![0.0_f32; 20];
        assert!(matches!(
            filtfilt(&f, &x),
            Err(DspError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn suppresses_out_of_band_better_than_single_pass() {
        let f = Butterworth::bandpass(2, 0.5, 20.0, FS).unwrap();
        let x = tone(25.0, 2000);
        let zero_phase = filtfilt(&f, &x).unwrap();
        let causal = f.filter(&x);
        let rms = |v: &[f32]| {
            (v.iter().skip(500).map(|&s| f64::from(s).powi(2)).sum::<f64>()
                / (v.len() - 500) as f64)
                .sqrt()
        };
        // Two passes double the stop-band attenuation in dB.
        assert!(rms(&zero_phase) < rms(&causal));
    }
}
