//! Digital signal processing substrate for the CognitiveArm reproduction.
//!
//! This crate implements, from scratch, every signal-processing primitive the
//! paper's preprocessing stage relies on (Sec. III-A3 and III-B3):
//!
//! * [`butterworth`] — Butterworth low/high/band-pass IIR design via the
//!   bilinear transform, emitted as cascaded second-order sections.
//! * [`notch`] — the 50 Hz powerline notch filter (quality factor 30).
//! * [`biquad`] — the direct-form-II-transposed second-order section used to
//!   run any designed filter, causally or zero-phase ([`filtfilt`]).
//! * [`filterbank`] — the compiled channel-interleaved execution form for
//!   per-channel causal chains: SIMD lanes advance several channels
//!   through a biquad section per instruction, bit-identical to the
//!   scalar runners ([`simd`] holds the crate-wide dispatch policy).
//! * [`fft`] — an iterative radix-2 complex FFT plus real-signal helpers.
//! * [`welch`] — Welch power-spectral-density estimation.
//! * [`features`] — statistical and band-power feature extraction.
//! * [`window`] — sliding-window segmentation (window 100–200, step 25).
//! * [`artifact`] — eye-blink / EMG artifact detection and repair.
//! * [`normalize`] — per-channel z-score normalization (Sec. V-A).
//!
//! # Examples
//!
//! Band-pass an EEG channel exactly like the paper's pipeline:
//!
//! ```
//! use dsp::butterworth::Butterworth;
//! use dsp::notch::notch_filter;
//!
//! # fn main() -> Result<(), dsp::DspError> {
//! let fs = 125.0;
//! let bandpass = Butterworth::bandpass(9, 0.5, 45.0, fs)?;
//! let notch = notch_filter(50.0, 30.0, fs)?;
//!
//! let raw: Vec<f32> = (0..500).map(|i| (i as f32 * 0.1).sin()).collect();
//! let filtered = notch.filter(&bandpass.filter(&raw));
//! assert_eq!(filtered.len(), raw.len());
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod biquad;
pub mod butterworth;
pub mod features;
pub mod fft;
pub mod filterbank;
pub mod filtfilt;
pub mod simd;
pub mod normalize;
pub mod notch;
pub mod welch;
pub mod window;

mod error;

pub use error::DspError;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, DspError>;
