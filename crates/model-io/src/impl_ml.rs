//! [`Persist`] implementations for the `ml` crate: tensors, compiled
//! inference networks, random forests, ensembles and the trainable-model
//! configurations.
//!
//! Validating constructors (`Tree::from_nodes`, `RandomForest::from_parts`,
//! …) are used on the way in wherever the target type maintains
//! invariants, so a decoded value is as well-formed as a freshly trained
//! one. Cheap local consistency checks (dimension agreement, non-zero
//! strides) guard the arithmetic the inference kernels perform.

use std::io::{Read, Write};

use ml::ensemble::{Classifier, Ensemble, ForestClassifier, Member, Voting};
use ml::forest::{ForestConfig, RandomForest, Tree, TreeNode};
use ml::infer::{
    Activation, CnnInfer, ConvInfer, InferModel, LinearInfer, LstmInfer, MatRep, QuantMatrix,
    TfBlockInfer, TfInfer,
};
use ml::models::{CnnConfig, ConvSpec, LstmConfig, PoolKind, TransformerConfig};
use ml::optim::OptimizerKind;
use ml::matexec::ExecCache;
use ml::sparse::CsrMatrix;
use ml::tensor::Tensor;

use crate::error::{ModelIoError, Result};
use crate::persist_struct;
use crate::rw::{write_slice, Persist};

/// Sanity ceiling on a classifier's window length in samples (~2.3 hours
/// at 125 Hz; real windows are hundreds of samples). Bounds the ring
/// buffer the pipeline allocates for a loaded ensemble.
pub(crate) const MAX_MEMBER_WINDOW: usize = 1 << 20;

/// Fails with [`ModelIoError::Malformed`] unless `cond` holds.
pub(crate) fn ensure(cond: bool, context: &str) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(ModelIoError::malformed(context))
    }
}

impl Persist for Tensor {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        write_slice(self.shape(), w)?;
        write_slice(self.data(), w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let shape = Vec::<usize>::read_from(r)?;
        let data = Vec::<f32>::read_from(r)?;
        let numel = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| ModelIoError::malformed("tensor shape overflows"))?;
        ensure(numel == data.len(), "tensor shape disagrees with data length")?;
        Ok(Tensor::new(shape, data))
    }
}

impl Persist for CsrMatrix {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.rows.write_to(w)?;
        self.cols.write_to(w)?;
        write_slice(&self.row_ptr, w)?;
        write_slice(&self.col_idx, w)?;
        write_slice(&self.values, w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let rows = usize::read_from(r)?;
        let cols = usize::read_from(r)?;
        let row_ptr = Vec::<usize>::read_from(r)?;
        let col_idx = Vec::<u32>::read_from(r)?;
        let values = Vec::<f32>::read_from(r)?;
        // The sparse matmul indexes `values[row_ptr[i]..row_ptr[i+1]]` and
        // columns up to `cols`; validate exactly what it assumes.
        ensure(
            rows.checked_add(1) == Some(row_ptr.len()),
            "csr row_ptr length",
        )?;
        ensure(row_ptr.first() == Some(&0), "csr row_ptr start")?;
        ensure(row_ptr.windows(2).all(|w| w[0] <= w[1]), "csr row_ptr order")?;
        ensure(row_ptr.last() == Some(&values.len()), "csr row_ptr end")?;
        ensure(col_idx.len() == values.len(), "csr col_idx length")?;
        ensure(
            col_idx.iter().all(|&c| (c as usize) < cols),
            "csr column index out of range",
        )?;
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr: row_ptr.into(),
            col_idx: col_idx.into(),
            values: values.into(),
            exec: ExecCache::default(),
        })
    }
}

impl Persist for QuantMatrix {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.rows.write_to(w)?;
        self.cols.write_to(w)?;
        write_slice(&self.data, w)?;
        self.scale.write_to(w)?;
        self.act_scale.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let rows = usize::read_from(r)?;
        let cols = usize::read_from(r)?;
        let data = Vec::<i8>::read_from(r)?;
        let scale = f32::read_from(r)?;
        let act_scale = Option::<f32>::read_from(r)?;
        let numel = rows
            .checked_mul(cols)
            .ok_or_else(|| ModelIoError::malformed("quant matrix dims overflow"))?;
        ensure(numel == data.len(), "quant matrix dims disagree with data")?;
        Ok(QuantMatrix {
            rows,
            cols,
            data: data.into(),
            scale,
            act_scale,
            exec: ExecCache::default(),
        })
    }
}

impl Persist for MatRep {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        match self {
            MatRep::Dense(t) => {
                0u8.write_to(w)?;
                t.write_to(w)
            }
            MatRep::Sparse(m) => {
                1u8.write_to(w)?;
                m.write_to(w)
            }
            MatRep::Int8(m) => {
                2u8.write_to(w)?;
                m.write_to(w)
            }
        }
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        match u8::read_from(r)? {
            0 => {
                let t = Tensor::read_from(r)?;
                ensure(t.shape().len() == 2, "dense weight must be 2-D")?;
                Ok(MatRep::Dense(t))
            }
            1 => Ok(MatRep::Sparse(CsrMatrix::read_from(r)?)),
            2 => Ok(MatRep::Int8(QuantMatrix::read_from(r)?)),
            tag => Err(ModelIoError::BadTag {
                context: "MatRep",
                tag,
            }),
        }
    }
}

impl Persist for Activation {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        let tag: u8 = match self {
            Activation::None => 0,
            Activation::Relu => 1,
            Activation::Tanh => 2,
        };
        tag.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(Activation::None),
            1 => Ok(Activation::Relu),
            2 => Ok(Activation::Tanh),
            tag => Err(ModelIoError::BadTag {
                context: "Activation",
                tag,
            }),
        }
    }
}

impl Persist for PoolKind {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        let tag: u8 = match self {
            PoolKind::Max => 0,
            PoolKind::Avg => 1,
            PoolKind::None => 2,
        };
        tag.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(PoolKind::Max),
            1 => Ok(PoolKind::Avg),
            2 => Ok(PoolKind::None),
            tag => Err(ModelIoError::BadTag {
                context: "PoolKind",
                tag,
            }),
        }
    }
}

impl Persist for LinearInfer {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.w.write_to(w)?;
        self.bias.write_to(w)?;
        self.act.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let weight = MatRep::read_from(r)?;
        let bias = Vec::<f32>::read_from(r)?;
        let act = Activation::read_from(r)?;
        ensure(
            weight.dims().1 == bias.len(),
            "linear stage bias length disagrees with weight columns",
        )?;
        Ok(LinearInfer {
            w: weight,
            bias,
            act,
        })
    }
}

impl Persist for ConvInfer {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.w.write_to(w)?;
        self.bias.write_to(w)?;
        self.cin.write_to(w)?;
        self.h.write_to(w)?;
        self.wdim.write_to(w)?;
        self.k.write_to(w)?;
        self.stride.write_to(w)?;
        self.pool.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let weight = MatRep::read_from(r)?;
        let bias = Vec::<f32>::read_from(r)?;
        let cin = usize::read_from(r)?;
        let h = usize::read_from(r)?;
        let wdim = usize::read_from(r)?;
        let k = usize::read_from(r)?;
        let stride = usize::read_from(r)?;
        let pool = PoolKind::read_from(r)?;
        // `conv_out` computes (h - k) / stride + 1; im2col walks cin·k·k
        // patches against a [patch, cout] kernel.
        ensure(stride >= 1, "conv stride must be positive")?;
        ensure(k >= 1 && k <= h && k <= wdim, "conv kernel exceeds input dims")?;
        ensure(cin >= 1, "conv input channels must be positive")?;
        let patch = cin
            .checked_mul(k)
            .and_then(|p| p.checked_mul(k))
            .ok_or_else(|| ModelIoError::malformed("conv patch size overflows"))?;
        ensure(
            weight.dims() == (patch, bias.len()),
            "conv kernel dims disagree with cin/k/bias",
        )?;
        Ok(ConvInfer {
            w: weight,
            bias,
            cin,
            h,
            wdim,
            k,
            stride,
            pool,
        })
    }
}

impl Persist for CnnInfer {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.convs.write_to(w)?;
        self.head.write_to(w)?;
        self.channels.write_to(w)?;
        self.window.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let convs = Vec::<ConvInfer>::read_from(r)?;
        let head = LinearInfer::read_from(r)?;
        let channels = usize::read_from(r)?;
        let window = usize::read_from(r)?;
        ensure(!convs.is_empty(), "cnn needs at least one conv stage")?;
        ensure(channels >= 1 && window >= 1, "cnn input dims must be positive")?;
        Ok(CnnInfer {
            convs,
            head,
            channels,
            window,
        })
    }
}

impl Persist for LstmInfer {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.cells.write_to(w)?;
        self.hidden.write_to(w)?;
        self.head.write_to(w)?;
        self.channels.write_to(w)?;
        self.window.write_to(w)?;
        self.time_stride.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let cells = Vec::<LinearInfer>::read_from(r)?;
        let hidden = usize::read_from(r)?;
        let head = LinearInfer::read_from(r)?;
        let channels = usize::read_from(r)?;
        let window = usize::read_from(r)?;
        let time_stride = usize::read_from(r)?;
        // The recurrence unwraps the last cell and divides by the stride.
        ensure(!cells.is_empty(), "lstm needs at least one cell")?;
        ensure(hidden >= 1, "lstm hidden width must be positive")?;
        ensure(time_stride >= 1, "lstm time stride must be positive")?;
        ensure(
            channels >= 1 && window >= 1,
            "lstm input dims must be positive",
        )?;
        let gate_width = hidden
            .checked_mul(4)
            .ok_or_else(|| ModelIoError::malformed("lstm hidden width overflows"))?;
        ensure(
            cells.iter().all(|c| c.bias.len() == gate_width),
            "lstm cell gate width disagrees with hidden size",
        )?;
        Ok(LstmInfer {
            cells,
            hidden,
            head,
            channels,
            window,
            time_stride,
        })
    }
}

impl Persist for TfBlockInfer {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.wq.write_to(w)?;
        self.wk.write_to(w)?;
        self.wv.write_to(w)?;
        self.wo.write_to(w)?;
        self.ln1.write_to(w)?;
        self.ff1.write_to(w)?;
        self.ff2.write_to(w)?;
        self.ln2.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        Ok(TfBlockInfer {
            wq: LinearInfer::read_from(r)?,
            wk: LinearInfer::read_from(r)?,
            wv: LinearInfer::read_from(r)?,
            wo: LinearInfer::read_from(r)?,
            ln1: <(Vec<f32>, Vec<f32>)>::read_from(r)?,
            ff1: LinearInfer::read_from(r)?,
            ff2: LinearInfer::read_from(r)?,
            ln2: <(Vec<f32>, Vec<f32>)>::read_from(r)?,
        })
    }
}

impl Persist for TfInfer {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.input_proj.write_to(w)?;
        self.blocks.write_to(w)?;
        self.head.write_to(w)?;
        self.pos.write_to(w)?;
        self.heads.write_to(w)?;
        self.d_model.write_to(w)?;
        self.channels.write_to(w)?;
        self.window.write_to(w)?;
        self.time_stride.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let input_proj = LinearInfer::read_from(r)?;
        let blocks = Vec::<TfBlockInfer>::read_from(r)?;
        let head = LinearInfer::read_from(r)?;
        let pos = Tensor::read_from(r)?;
        let heads = usize::read_from(r)?;
        let d_model = usize::read_from(r)?;
        let channels = usize::read_from(r)?;
        let window = usize::read_from(r)?;
        let time_stride = usize::read_from(r)?;
        ensure(time_stride >= 1, "transformer time stride must be positive")?;
        ensure(
            channels >= 1 && window >= 1,
            "transformer input dims must be positive",
        )?;
        ensure(
            heads >= 1 && d_model >= 1 && d_model.is_multiple_of(heads),
            "transformer heads must divide d_model",
        )?;
        let t_len = window.div_ceil(time_stride);
        ensure(
            pos.shape() == [t_len, d_model],
            "positional encoding shape disagrees with window/d_model",
        )?;
        ensure(
            blocks.iter().all(|b| {
                b.ln1.0.len() == d_model
                    && b.ln1.1.len() == d_model
                    && b.ln2.0.len() == d_model
                    && b.ln2.1.len() == d_model
            }),
            "layer-norm parameter length disagrees with d_model",
        )?;
        Ok(TfInfer {
            input_proj,
            blocks,
            head,
            pos,
            heads,
            d_model,
            channels,
            window,
            time_stride,
        })
    }
}

impl Persist for InferModel {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        match self {
            InferModel::Cnn(m) => {
                0u8.write_to(w)?;
                m.write_to(w)
            }
            InferModel::Lstm(m) => {
                1u8.write_to(w)?;
                m.write_to(w)
            }
            InferModel::Transformer(m) => {
                2u8.write_to(w)?;
                m.write_to(w)
            }
        }
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(InferModel::Cnn(CnnInfer::read_from(r)?)),
            1 => Ok(InferModel::Lstm(LstmInfer::read_from(r)?)),
            2 => Ok(InferModel::Transformer(TfInfer::read_from(r)?)),
            tag => Err(ModelIoError::BadTag {
                context: "InferModel",
                tag,
            }),
        }
    }
}

impl Persist for TreeNode {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        match self {
            TreeNode::Leaf { probs } => {
                0u8.write_to(w)?;
                probs.write_to(w)
            }
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                1u8.write_to(w)?;
                feature.write_to(w)?;
                threshold.write_to(w)?;
                left.write_to(w)?;
                right.write_to(w)
            }
        }
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(TreeNode::Leaf {
                probs: Vec::<f32>::read_from(r)?,
            }),
            1 => Ok(TreeNode::Split {
                feature: usize::read_from(r)?,
                threshold: f32::read_from(r)?,
                left: usize::read_from(r)?,
                right: usize::read_from(r)?,
            }),
            tag => Err(ModelIoError::BadTag {
                context: "TreeNode",
                tag,
            }),
        }
    }
}

impl Persist for Tree {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        write_slice(self.nodes(), w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let nodes = Vec::<TreeNode>::read_from(r)?;
        Tree::from_nodes(nodes).map_err(|e| ModelIoError::malformed(e.to_string()))
    }
}

persist_struct!(ForestConfig {
    n_estimators,
    max_depth,
    min_samples_split,
    classes,
    seed,
});

impl Persist for RandomForest {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.config().write_to(w)?;
        write_slice(self.trees(), w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let config = ForestConfig::read_from(r)?;
        let trees = Vec::<Tree>::read_from(r)?;
        RandomForest::from_parts(config, trees).map_err(|e| ModelIoError::malformed(e.to_string()))
    }
}

impl Persist for ForestClassifier {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.forest().write_to(w)?;
        Classifier::window(self).write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let forest = RandomForest::read_from(r)?;
        let window = usize::read_from(r)?;
        ensure(window >= 1, "forest window must be positive")?;
        Ok(ForestClassifier::new(forest, window))
    }
}

impl Persist for Voting {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        let tag: u8 = match self {
            Voting::Soft => 0,
            Voting::Hard => 1,
        };
        tag.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(Voting::Soft),
            1 => Ok(Voting::Hard),
            tag => Err(ModelIoError::BadTag {
                context: "Voting",
                tag,
            }),
        }
    }
}

impl Persist for Member {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        match self {
            Member::Net(m) => {
                0u8.write_to(w)?;
                m.write_to(w)
            }
            Member::Forest(c) => {
                1u8.write_to(w)?;
                c.write_to(w)
            }
            Member::Custom(c) => Err(ModelIoError::UnsupportedMember { name: c.name() }),
        }
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(Member::Net(InferModel::read_from(r)?)),
            1 => Ok(Member::Forest(ForestClassifier::read_from(r)?)),
            tag => Err(ModelIoError::BadTag {
                context: "Member",
                tag,
            }),
        }
    }
}

impl Persist for Ensemble {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.voting().write_to(w)?;
        write_slice(self.members(), w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let voting = Voting::read_from(r)?;
        let members = Vec::<Member>::read_from(r)?;
        ensure(!members.is_empty(), "ensemble needs at least one member")?;
        // The pipeline allocates a per-channel ring buffer of the longest
        // member window; cap it so a forged window cannot demand gigabytes
        // (the paper's windows are 100-200 samples).
        ensure(
            members.iter().all(|m| Classifier::window(m) <= MAX_MEMBER_WINDOW),
            "member window implausibly large",
        )?;
        Ok(Ensemble::new(members, voting))
    }
}

persist_struct!(ConvSpec {
    filters,
    kernel,
    stride,
});

persist_struct!(CnnConfig {
    convs,
    pool,
    window,
    channels,
    dropout,
});

persist_struct!(LstmConfig {
    hidden,
    layers,
    dropout,
    window,
    channels,
    time_stride,
});

persist_struct!(TransformerConfig {
    layers,
    heads,
    d_model,
    dim_ff,
    dropout,
    window,
    channels,
    time_stride,
});

impl Persist for OptimizerKind {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        match self {
            OptimizerKind::Sgd { lr, momentum } => {
                0u8.write_to(w)?;
                lr.write_to(w)?;
                momentum.write_to(w)
            }
            OptimizerKind::Adam { lr } => {
                1u8.write_to(w)?;
                lr.write_to(w)
            }
            OptimizerKind::RmsProp { lr, decay } => {
                2u8.write_to(w)?;
                lr.write_to(w)?;
                decay.write_to(w)
            }
            OptimizerKind::AdamW { lr, weight_decay } => {
                3u8.write_to(w)?;
                lr.write_to(w)?;
                weight_decay.write_to(w)
            }
        }
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(OptimizerKind::Sgd {
                lr: f32::read_from(r)?,
                momentum: f32::read_from(r)?,
            }),
            1 => Ok(OptimizerKind::Adam {
                lr: f32::read_from(r)?,
            }),
            2 => Ok(OptimizerKind::RmsProp {
                lr: f32::read_from(r)?,
                decay: f32::read_from(r)?,
            }),
            3 => Ok(OptimizerKind::AdamW {
                lr: f32::read_from(r)?,
                weight_decay: f32::read_from(r)?,
            }),
            tag => Err(ModelIoError::BadTag {
                context: "OptimizerKind",
                tag,
            }),
        }
    }
}
