//! Minimal read-only memory mapping, plus an aligned owned fallback.
//!
//! The fleet-scale serving story wants every session of an artifact to
//! read one shared, page-cached weight image instead of a private copy —
//! which means mapping the file and decoding straight out of the mapping.
//! The workspace vendors its few dependencies, so instead of pulling in a
//! full `memmap` crate this module declares the two libc symbols it needs
//! (`mmap`/`munmap`, already linked by `std` on unix) behind a safe,
//! read-only wrapper. Non-unix targets — and callers that already hold
//! the bytes (tests, network loads, the v1 → v2 in-memory upgrade) — use
//! [`AlignedBytes`], an owned buffer with the same 8-byte base alignment
//! a page-aligned mapping guarantees, so the zero-copy decoders behave
//! identically over both.

use std::fs::File;
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use core::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    /// Pre-fault the mapping at `mmap` time (Linux). The validating CRC
    /// pass touches every page anyway; one syscall beats a minor fault
    /// per page, and it is what keeps mmap cold start at or under the
    /// eager `fs::read` path.
    #[cfg(target_os = "linux")]
    pub const MAP_POPULATE: c_int = 0x8000;
    #[cfg(not(target_os = "linux"))]
    pub const MAP_POPULATE: c_int = 0;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only, private memory mapping of an entire file.
///
/// The mapping is `PROT_READ | MAP_PRIVATE`: the kernel shares the
/// backing pages across every process (and every [`Mmap`]) of the same
/// file, and nothing here can write through it. Page alignment of the
/// base pointer gives the zero-copy decoders their required 8-byte
/// alignment for free.
#[cfg(unix)]
#[derive(Debug)]
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

#[cfg(unix)]
impl Mmap {
    /// Maps all of `file` read-only.
    ///
    /// # Errors
    ///
    /// The OS error from `mmap`, or `InvalidInput` for an empty file
    /// (zero-length mappings are not portable; callers fall back to an
    /// owned read, which then fails validation with a typed error).
    pub fn map(file: &File) -> std::io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "file too large to map")
        })?;
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        // SAFETY: a fresh private read-only mapping of a file we hold
        // open; the kernel validates the fd and length.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE | sys::MAP_POPULATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self {
            ptr: ptr.cast_const().cast(),
            len,
        })
    }
}

#[cfg(unix)]
impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, unmapped only in Drop. A concurrent truncate of the
        // backing file could fault — the same exposure every mmap user
        // accepts; artifacts are immutable deployment assets.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: this struct is the sole owner of the mapping.
        unsafe {
            sys::munmap(self.ptr.cast_mut().cast(), self.len);
        }
    }
}

// SAFETY: the mapping is read-only and the raw pointer is never exposed
// mutably; sharing or moving it across threads is sound.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

/// An owned byte buffer whose base address is 8-byte aligned, matching
/// the alignment a page-aligned mapping provides — so code that
/// reinterprets aligned runs works identically over mapped and owned
/// images.
#[derive(Debug, Clone)]
pub struct AlignedBytes {
    // `u64` storage buys the alignment; `len` trims the tail padding.
    buf: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into a fresh 8-aligned buffer.
    #[must_use]
    pub fn copy_from(bytes: &[u8]) -> Self {
        let words = bytes.len().div_ceil(8);
        let mut buf = vec![0u64; words];
        // SAFETY: the u64 buffer spans at least `bytes.len()` bytes and
        // the regions cannot overlap (fresh allocation).
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr().cast(), bytes.len());
        }
        Self {
            buf,
            len: bytes.len(),
        }
    }
}

impl Deref for AlignedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: `buf` owns at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr().cast(), self.len) }
    }
}

/// The storage behind a weight image: a file mapping when the platform
/// and source allow it, an aligned owned buffer otherwise.
#[derive(Debug)]
pub enum ImageBytes {
    /// A read-only file mapping (unix only).
    #[cfg(unix)]
    Mapped(Mmap),
    /// An owned, 8-aligned copy of the image.
    Owned(AlignedBytes),
}

impl ImageBytes {
    /// Whether the bytes come from a file mapping (false: owned buffer).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            ImageBytes::Mapped(_) => true,
            ImageBytes::Owned(_) => false,
        }
    }
}

impl Deref for ImageBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            ImageBytes::Mapped(m) => m,
            ImageBytes::Owned(b) => b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("model-io-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[cfg(unix)]
    #[test]
    fn mapping_reads_the_file_and_is_aligned() {
        let path = temp_path("mapped.bin");
        let payload: Vec<u8> = (0..=255).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, payload.as_slice());
        assert_eq!(map.as_ptr() as usize % 8, 0, "mapping base not aligned");
    }

    #[cfg(unix)]
    #[test]
    fn empty_files_are_refused() {
        let path = temp_path("empty.bin");
        std::fs::write(&path, b"").unwrap();
        assert!(Mmap::map(&File::open(&path).unwrap()).is_err());
    }

    #[test]
    fn aligned_bytes_round_trip_and_alignment() {
        for n in [0usize, 1, 7, 8, 9, 4096] {
            let payload: Vec<u8> = (0..n).map(|i| i as u8).collect();
            let aligned = AlignedBytes::copy_from(&payload);
            assert_eq!(&*aligned, payload.as_slice(), "length {n}");
            assert_eq!(aligned.as_ptr() as usize % 8, 0, "length {n} misaligned");
        }
    }
}
