//! Versioned binary persistence for trained CognitiveArm artifacts.
//!
//! Until now every process retrained its models from scratch — fine for
//! tests, fatal for serving (cold starts measured in minutes) and for
//! checkpointed evolutionary search. This crate is the deployment story's
//! missing piece: a small, versioned, checksummed little-endian format
//! (`.cogm`) plus a [`Persist`] trait implemented for every trained
//! artifact in the workspace.
//!
//! # Format
//!
//! ```text
//! COGM | version u16 | section count u16 | section table | payloads | CRC32
//! ```
//!
//! See [`container`] for the exact layout. Three guarantees:
//!
//! * **Total readers.** Any byte stream either decodes or returns a typed
//!   [`ModelIoError`] — no panics, no unbounded allocation from forged
//!   length fields, no infinite loops (tree arenas are validated to be
//!   forward-pointing before a predict ever walks them).
//! * **Checksummed.** The trailing CRC32 is verified before any payload is
//!   parsed, so every single-byte corruption is caught up front.
//! * **Trust boundary.** The CRC authenticates *integrity*, not origin: a
//!   file whose checksum was deliberately recomputed over crafted payloads
//!   decodes through the same typed-error validation (dimension agreement,
//!   forward-pointing tree arenas, positivity and sanity bounds), but deep
//!   cross-stage weight-shape consistency is not fully re-derived — such a
//!   file can still fail at first predict with the same panics a
//!   wrong-shaped in-memory model produces. Artifacts are deployment
//!   assets, not an untrusted-input wire format.
//! * **Deterministic.** Writers emit identical bytes for identical values,
//!   and a loaded model is bit-identical to the saved one — the label
//!   trace of a loaded [`CognitiveArm`](cognitive_arm::pipeline::CognitiveArm)
//!   reproduces the in-memory system's trace exactly, at any
//!   `COGARM_THREADS` (the exec substrate keeps thread count out of the
//!   numerics).
//!
//! # Top-level artifacts
//!
//! * [`SavedModel`] / [`ArmPersist`] — a deployable trained system
//!   (pipeline config + ensemble + frozen normalization).
//! * [`SearchCheckpoint`] — an evolutionary search, either completed
//!   (config + history + Pareto front + best) or mid-flight (config +
//!   resumable [`evo::SearchState`] with the RNG's stream position).
//! * [`container::save_section`] / [`container::load_section`] — any
//!   single [`Persist`] value as its own file.
//!
//! Loading goes through [`LazyContainer`] where possible: the section
//! table is indexed and the checksum verified by **streaming** the file
//! through a fixed-size buffer, then each requested section decodes
//! straight from a buffered reader over its byte range — the whole
//! artifact is never materialized in memory at once.
//!
//! ```no_run
//! use model_io::ArmPersist;
//! use cognitive_arm::pipeline::CognitiveArm;
//!
//! # fn demo(system: &CognitiveArm) -> model_io::Result<()> {
//! system.save_model("subject3.cogm")?;
//! let reloaded = CognitiveArm::load_model("subject3.cogm", 3)?;
//! # let _ = reloaded; Ok(())
//! # }
//! ```

pub mod container;
pub mod crc32;
pub mod error;
pub mod image;
mod impl_core;
mod impl_evo;
mod impl_ml;
pub mod lazy;
pub mod mmap;
pub mod rw;
pub mod view;

pub use container::{
    image_version, load_section, save_section, upgrade_file_bytes, Container, FORMAT_VERSION,
    FORMAT_VERSION_V1, MAGIC,
};
pub use image::WeightImage;
pub use lazy::LazyContainer;
pub use error::{ModelIoError, Result};
pub use impl_core::{tags, ArmPersist, SavedModel, SearchCheckpoint};
pub use rw::{from_bytes, to_bytes, Persist};
pub use view::{FloatView, TensorView, ViewCursor};

/// Field-by-field [`Persist`] for a plain struct with public fields.
macro_rules! persist_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::rw::Persist for $ty {
            fn write_to<W: std::io::Write>(&self, w: &mut W) -> $crate::error::Result<()> {
                $( self.$field.write_to(w)?; )+
                Ok(())
            }

            fn read_from<R: std::io::Read>(r: &mut R) -> $crate::error::Result<Self> {
                Ok($ty { $( $field: $crate::rw::Persist::read_from(r)? ),+ })
            }
        }
    };
}
pub(crate) use persist_struct;

#[cfg(test)]
mod tests {
    use super::*;
    use ml::forest::{ForestConfig, RandomForest, Tree, TreeNode};
    use ml::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_forest(seed: u64) -> RandomForest {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..60 {
            let row: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            ys.push(usize::from(row[0] > 0.0) + usize::from(row[1] > 0.0));
            xs.push(row);
        }
        RandomForest::fit(
            ForestConfig {
                n_estimators: 4,
                max_depth: Some(4),
                min_samples_split: 2,
                classes: 3,
                seed,
            },
            &xs,
            &ys,
        )
        .expect("toy forest fits")
    }

    #[test]
    fn tensor_round_trips_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::uniform(vec![3, 5], 1.0, &mut rng);
        let back: Tensor = from_bytes(&to_bytes(&t).unwrap()).unwrap();
        assert_eq!(back, t);
        for (a, b) in back.data().iter().zip(t.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tensor_rejects_shape_data_disagreement() {
        let mut bytes = Vec::new();
        vec![2usize, 3].write_to(&mut bytes).unwrap();
        vec![0.0f32; 5].write_to(&mut bytes).unwrap();
        assert!(matches!(
            from_bytes::<Tensor>(&bytes).unwrap_err(),
            ModelIoError::Malformed { .. }
        ));
    }

    #[test]
    fn forest_round_trips_and_predicts_identically() {
        let forest = toy_forest(7);
        let back: RandomForest = from_bytes(&to_bytes(&forest).unwrap()).unwrap();
        assert_eq!(back, forest);
        let probe = vec![0.3f32, -0.2, 0.9, -0.6];
        assert_eq!(back.predict_proba(&probe), forest.predict_proba(&probe));
    }

    #[test]
    fn cyclic_tree_arena_is_rejected() {
        // A split pointing backwards would make predict loop forever; the
        // validating constructor must refuse it.
        let nodes = vec![
            TreeNode::Split {
                feature: 0,
                threshold: 0.0,
                left: 0,
                right: 1,
            },
            TreeNode::Leaf { probs: vec![1.0] },
        ];
        let bytes = {
            let mut b = Vec::new();
            nodes.write_to(&mut b).unwrap();
            b
        };
        assert!(matches!(
            from_bytes::<Tree>(&bytes).unwrap_err(),
            ModelIoError::Malformed { .. }
        ));
    }

    #[test]
    fn writer_is_deterministic() {
        let forest = toy_forest(3);
        assert_eq!(to_bytes(&forest).unwrap(), to_bytes(&forest).unwrap());
    }

    #[test]
    fn forged_extreme_dimensions_error_without_overflow() {
        use ml::sparse::CsrMatrix;
        // A CSR matrix claiming usize::MAX rows: the `rows + 1` validation
        // must reject it with a typed error, not overflow.
        let mut bytes = Vec::new();
        usize::MAX.write_to(&mut bytes).unwrap(); // rows
        4usize.write_to(&mut bytes).unwrap(); // cols
        vec![0usize].write_to(&mut bytes).unwrap(); // row_ptr
        Vec::<u32>::new().write_to(&mut bytes).unwrap(); // col_idx
        Vec::<f32>::new().write_to(&mut bytes).unwrap(); // values
        assert!(matches!(
            from_bytes::<CsrMatrix>(&bytes).unwrap_err(),
            ModelIoError::Malformed { .. }
        ));
    }

    #[test]
    fn forest_with_short_leaf_distributions_is_rejected() {
        // Leaves must carry exactly `classes` probabilities; anything else
        // would silently skew the vote after a load.
        let config = ForestConfig {
            n_estimators: 1,
            max_depth: None,
            min_samples_split: 2,
            classes: 3,
            seed: 0,
        };
        let tree = Tree::from_nodes(vec![TreeNode::Leaf {
            probs: vec![0.5, 0.5],
        }])
        .expect("arena is valid");
        let mut bytes = Vec::new();
        config.write_to(&mut bytes).unwrap();
        vec![tree].write_to(&mut bytes).unwrap();
        assert!(matches!(
            from_bytes::<RandomForest>(&bytes).unwrap_err(),
            ModelIoError::Malformed { .. }
        ));
    }
}
