//! Zero-copy decoding over an in-memory `.cogm` image: tensors decode as
//! **borrowed views** of the container buffer.
//!
//! [`crate::LazyContainer`] streams sections through a `BufReader`, which
//! bounds memory but still decodes every `f32` one `read_exact` at a
//! time. This module is the other end of the trade: the caller supplies
//! the whole file image as a plain `&[u8]` (read at once, or memory-mapped
//! by whatever means — the API only needs bytes), the envelope is
//! validated by [`crate::container::parse_sections`] (checksum first, as
//! always), and values decode *in place*:
//!
//! * Bulk `f32` payloads become [`FloatView::Borrowed`] — an
//!   alignment-checked reinterpretation of the little-endian bytes (via
//!   `slice::align_to`, sound because `f32` has no invalid bit patterns) —
//!   when the platform is little-endian and the payload happens to sit on
//!   a 4-byte boundary; otherwise a **safe copying fallback** converts via
//!   `from_le_bytes`. Either way the caller sees one `&[f32]`.
//! * `i8` payloads always borrow (alignment 1).
//! * Building an *owned* model from views costs one bulk copy per tensor
//!   (a `memcpy`, not a per-element loop) — this is what makes
//!   [`crate::SavedModel::load_zero_copy`] the fast cold-start path.
//!
//! The total-reader guarantees are unchanged: every malformed input is a
//! typed [`ModelIoError`], allocation is bounded by bytes actually
//! present (a view never allocates more than the slice it borrows), and a
//! section must be consumed exactly. The decode-equivalence and
//! corruption suites in `tests/tests/persistence.rs` hold this decoder to
//! the streaming reader's behaviour, and the golden fixtures lock its
//! numerics bit-for-bit.

use ml::arena::{ArenaOwner, ArenaVec};
use ml::ensemble::{Classifier, Ensemble, ForestClassifier, Member, Voting};
use ml::forest::{ForestConfig, RandomForest, Tree, TreeNode};
use ml::infer::{
    Activation, CnnInfer, ConvInfer, InferModel, LinearInfer, LstmInfer, MatRep, QuantMatrix,
    TfBlockInfer, TfInfer,
};
use ml::matexec::ExecCache;
use ml::sparse::CsrMatrix;
use ml::tensor::Tensor;

use crate::error::{ModelIoError, Result};
use crate::impl_ml::{ensure, MAX_MEMBER_WINDOW};
use crate::rw::MAX_LEN;

/// A run of `f32`s decoded from the image: borrowed when the bytes could
/// be reinterpreted in place, owned when the copying fallback ran.
#[derive(Debug, Clone)]
pub enum FloatView<'a> {
    /// An alignment-checked reinterpretation of the image bytes.
    Borrowed(&'a [f32]),
    /// The safe copying fallback (misaligned payload or big-endian host).
    Owned(Vec<f32>),
}

impl FloatView<'_> {
    /// The decoded values.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        match self {
            FloatView::Borrowed(s) => s,
            FloatView::Owned(v) => v,
        }
    }

    /// Whether this view borrows the image (true zero-copy).
    #[must_use]
    pub fn is_borrowed(&self) -> bool {
        matches!(self, FloatView::Borrowed(_))
    }

    /// The values as an owned vector (one bulk copy when borrowed).
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        match self {
            FloatView::Borrowed(s) => s.to_vec(),
            FloatView::Owned(v) => v,
        }
    }
}

/// A tensor decoded from the image: shape plus a [`FloatView`] of its
/// data. The zero-copy inspection surface; [`TensorView::into_tensor`]
/// materializes an owned [`Tensor`] with one bulk copy.
#[derive(Debug, Clone)]
pub struct TensorView<'a> {
    shape: Vec<usize>,
    data: FloatView<'a>,
}

impl<'a> TensorView<'a> {
    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor's values.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Whether the data borrows the image buffer.
    #[must_use]
    pub fn is_borrowed(&self) -> bool {
        self.data.is_borrowed()
    }

    /// Materializes an owned tensor (one bulk copy when borrowed).
    #[must_use]
    pub fn into_tensor(self) -> Tensor {
        Tensor::new(self.shape, self.data.into_vec())
    }

    /// Materializes a tensor whose data stays *in* the shared arena when
    /// possible: a borrowed view over arena-owned bytes becomes an
    /// arena-backed [`Tensor`] (no copy, clones are refcount bumps); the
    /// copying-fallback case is promoted into a fresh shared arena so
    /// clones stay cheap. With no arena this is [`TensorView::into_tensor`].
    fn into_tensor_in(self, arena: Option<&ArenaOwner>) -> Tensor {
        match (self.data, arena) {
            // SAFETY: the cursor's arena owner keeps the image bytes —
            // which `s` points into — alive and immutable (the
            // `ViewCursor::with_arena` contract).
            (FloatView::Borrowed(s), Some(owner)) => {
                Tensor::new(self.shape, unsafe { ArenaVec::from_owner(owner.clone(), s) })
            }
            (FloatView::Owned(v), Some(_)) => Tensor::new(self.shape, ArenaVec::shared_copy(&v)),
            (data, None) => Tensor::new(self.shape, data.into_vec()),
        }
    }

    /// Decodes a tensor view from a cursor positioned at a serialized
    /// [`Tensor`] (the same validation as the streaming reader).
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input.
    pub fn decode(cur: &mut ViewCursor<'a>) -> Result<Self> {
        let shape = cur.usize_vec("tensor shape")?;
        let numel = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| ModelIoError::malformed("tensor shape overflows"))?;
        let len = cur.len_prefix("tensor data")?;
        ensure(numel == len, "tensor shape disagrees with data length")?;
        let data = cur.f32_slice(len, "tensor data")?;
        Ok(Self { shape, data })
    }
}

/// A bounds-checked cursor over an in-memory little-endian image.
///
/// With [`ViewCursor::with_arena`] the cursor additionally carries a
/// reference-counted owner of the underlying bytes, and bulk payloads
/// decode as arena-backed [`ArenaVec`]s that borrow the image instead of
/// copying it — the shared-weight fast path.
pub struct ViewCursor<'a> {
    buf: &'a [u8],
    arena: Option<ArenaOwner>,
}

impl<'a> ViewCursor<'a> {
    /// A cursor over `buf`; bulk payloads decode as owned copies.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, arena: None }
    }

    /// A cursor over `buf` whose bulk payloads borrow from `owner`'s
    /// memory where alignment permits.
    ///
    /// # Safety
    ///
    /// `buf` must point into memory that `owner` keeps alive and
    /// unmodified for as long as `owner` has any strong reference —
    /// decoded values hold clones of `owner` and read those bytes for
    /// their whole lifetime.
    #[must_use]
    pub unsafe fn with_arena(buf: &'a [u8], owner: ArenaOwner) -> Self {
        Self {
            buf,
            arena: Some(owner),
        }
    }

    fn arena(&self) -> Option<&ArenaOwner> {
        self.arena.as_ref()
    }

    /// Wraps an element-wise decoded vector: promoted into a fresh shared
    /// arena when decoding against one (clones become refcount bumps),
    /// plain owned storage otherwise.
    fn share<T: Clone + Send + Sync + 'static>(&self, v: Vec<T>) -> ArenaVec<T> {
        if self.arena.is_some() {
            ArenaVec::shared_copy(&v)
        } else {
            v.into()
        }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(ModelIoError::Truncated { context });
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes(b.try_into().expect("length checked")))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("length checked")))
    }

    fn f32(&mut self, context: &'static str) -> Result<f32> {
        let b = self.take(4, context)?;
        Ok(f32::from_le_bytes(b.try_into().expect("length checked")))
    }

    fn usize(&mut self, context: &'static str) -> Result<usize> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| ModelIoError::LengthOverflow { context, len: v })
    }

    /// Reads a collection length prefix with the same sanity ceiling as
    /// the streaming reader.
    fn len_prefix(&mut self, context: &'static str) -> Result<usize> {
        let len = self.u64(context)?;
        if len > MAX_LEN {
            return Err(ModelIoError::LengthOverflow { context, len });
        }
        usize::try_from(len).map_err(|_| ModelIoError::LengthOverflow { context, len })
    }

    fn option_tag(&mut self, context: &'static str) -> Result<bool> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ModelIoError::BadTag { context: "Option", tag }),
        }
    }

    /// `n` little-endian `f32`s: borrowed via alignment-checked
    /// reinterpretation when possible, copied otherwise.
    fn f32_slice(&mut self, n: usize, context: &'static str) -> Result<FloatView<'a>> {
        let bytes = n
            .checked_mul(4)
            .ok_or(ModelIoError::LengthOverflow {
                context,
                len: n as u64,
            })
            .and_then(|b| self.take(b, context))?;
        #[cfg(target_endian = "little")]
        {
            // SAFETY: `f32` has no invalid bit patterns and `align_to`
            // only yields the middle when it is correctly aligned; on a
            // little-endian host the byte order already matches.
            let (head, mid, tail) = unsafe { bytes.align_to::<f32>() };
            if head.is_empty() && tail.is_empty() && mid.len() == n {
                return Ok(FloatView::Borrowed(mid));
            }
        }
        Ok(FloatView::Owned(
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("chunk size")))
                .collect(),
        ))
    }

    fn f32_vec(&mut self, context: &'static str) -> Result<Vec<f32>> {
        let n = self.len_prefix(context)?;
        Ok(self.f32_slice(n, context)?.into_vec())
    }

    /// `n` little-endian `f32`s as arena-backed storage: a borrowed view
    /// over arena-owned bytes costs nothing; the copying fallback (or a
    /// cursor with no arena) materializes owned/shared storage.
    fn f32_arena(&mut self, n: usize, context: &'static str) -> Result<ArenaVec<f32>> {
        match (self.f32_slice(n, context)?, &self.arena) {
            // SAFETY: the `with_arena` contract — `owner` keeps the image
            // bytes `s` points into alive and immutable.
            (FloatView::Borrowed(s), Some(owner)) => {
                Ok(unsafe { ArenaVec::from_owner(owner.clone(), s) })
            }
            (FloatView::Owned(v), Some(_)) => Ok(ArenaVec::shared_copy(&v)),
            (view, None) => Ok(view.into_vec().into()),
        }
    }

    /// `n` `i8`s, always borrowed (alignment 1; sign reinterpretation of
    /// a byte is value-preserving two's complement).
    fn i8_slice(&mut self, n: usize, context: &'static str) -> Result<&'a [i8]> {
        let bytes = self.take(n, context)?;
        // SAFETY: i8 and u8 have identical size/alignment and no invalid
        // bit patterns.
        let (head, mid, tail) = unsafe { bytes.align_to::<i8>() };
        debug_assert!(head.is_empty() && tail.is_empty());
        Ok(mid)
    }

    /// `n` `i8`s as arena-backed storage (borrowed whenever the cursor
    /// carries an arena — `i8` has alignment 1, so it always can be).
    fn i8_arena(&mut self, n: usize, context: &'static str) -> Result<ArenaVec<i8>> {
        let s = self.i8_slice(n, context)?;
        match &self.arena {
            // SAFETY: the `with_arena` contract — `owner` keeps the image
            // bytes `s` points into alive and immutable.
            Some(owner) => Ok(unsafe { ArenaVec::from_owner(owner.clone(), s) }),
            None => Ok(s.to_vec().into()),
        }
    }

    fn usize_vec(&mut self, context: &'static str) -> Result<Vec<usize>> {
        let n = self.len_prefix(context)?;
        // Bound before allocating: each element is 8 bytes on the wire.
        if self.remaining() < n.saturating_mul(8) {
            return Err(ModelIoError::Truncated { context });
        }
        (0..n).map(|_| self.usize(context)).collect()
    }

    fn u32_vec(&mut self, context: &'static str) -> Result<Vec<u32>> {
        let n = self.len_prefix(context)?;
        if self.remaining() < n.saturating_mul(4) {
            return Err(ModelIoError::Truncated { context });
        }
        (0..n).map(|_| self.u32(context)).collect()
    }
}

// --- ml hierarchy decoders ---------------------------------------------------
//
// Each decoder mirrors its `Persist::read_from` counterpart field for
// field, including every validation, but pulls bulk arrays through the
// view cursor. `tests/tests/persistence.rs` asserts decode-equivalence
// against the streaming reader on golden fixtures and fresh artifacts.

fn decode_csr(cur: &mut ViewCursor<'_>) -> Result<CsrMatrix> {
    let rows = cur.usize("csr rows")?;
    let cols = cur.usize("csr cols")?;
    let row_ptr = cur.usize_vec("csr row_ptr")?;
    let col_idx = cur.u32_vec("csr col_idx")?;
    let n_values = cur.len_prefix("csr values")?;
    let values = cur.f32_arena(n_values, "csr values")?;
    ensure(
        rows.checked_add(1) == Some(row_ptr.len()),
        "csr row_ptr length",
    )?;
    ensure(row_ptr.first() == Some(&0), "csr row_ptr start")?;
    ensure(row_ptr.windows(2).all(|w| w[0] <= w[1]), "csr row_ptr order")?;
    ensure(row_ptr.last() == Some(&values.len()), "csr row_ptr end")?;
    ensure(col_idx.len() == values.len(), "csr col_idx length")?;
    ensure(
        col_idx.iter().all(|&c| (c as usize) < cols),
        "csr column index out of range",
    )?;
    Ok(CsrMatrix {
        rows,
        cols,
        row_ptr: cur.share(row_ptr),
        col_idx: cur.share(col_idx),
        values,
        exec: ExecCache::default(),
    })
}

fn decode_quant(cur: &mut ViewCursor<'_>) -> Result<QuantMatrix> {
    let rows = cur.usize("quant rows")?;
    let cols = cur.usize("quant cols")?;
    let n = cur.len_prefix("quant data")?;
    let data = cur.i8_arena(n, "quant data")?;
    let scale = cur.f32("quant scale")?;
    let act_scale = if cur.option_tag("quant act_scale")? {
        Some(cur.f32("quant act_scale")?)
    } else {
        None
    };
    let numel = rows
        .checked_mul(cols)
        .ok_or_else(|| ModelIoError::malformed("quant matrix dims overflow"))?;
    ensure(numel == data.len(), "quant matrix dims disagree with data")?;
    Ok(QuantMatrix {
        rows,
        cols,
        data,
        scale,
        act_scale,
        exec: ExecCache::default(),
    })
}

fn decode_matrep(cur: &mut ViewCursor<'_>) -> Result<MatRep> {
    match cur.u8("MatRep tag")? {
        0 => {
            let t = TensorView::decode(cur)?;
            ensure(t.shape().len() == 2, "dense weight must be 2-D")?;
            let arena = cur.arena().cloned();
            Ok(MatRep::Dense(t.into_tensor_in(arena.as_ref())))
        }
        1 => Ok(MatRep::Sparse(decode_csr(cur)?)),
        2 => Ok(MatRep::Int8(decode_quant(cur)?)),
        tag => Err(ModelIoError::BadTag {
            context: "MatRep",
            tag,
        }),
    }
}

fn decode_activation(cur: &mut ViewCursor<'_>) -> Result<Activation> {
    match cur.u8("Activation tag")? {
        0 => Ok(Activation::None),
        1 => Ok(Activation::Relu),
        2 => Ok(Activation::Tanh),
        tag => Err(ModelIoError::BadTag {
            context: "Activation",
            tag,
        }),
    }
}

fn decode_pool(cur: &mut ViewCursor<'_>) -> Result<ml::models::PoolKind> {
    use ml::models::PoolKind;
    match cur.u8("PoolKind tag")? {
        0 => Ok(PoolKind::Max),
        1 => Ok(PoolKind::Avg),
        2 => Ok(PoolKind::None),
        tag => Err(ModelIoError::BadTag {
            context: "PoolKind",
            tag,
        }),
    }
}

fn decode_linear(cur: &mut ViewCursor<'_>) -> Result<LinearInfer> {
    let weight = decode_matrep(cur)?;
    let bias = cur.f32_vec("linear bias")?;
    let act = decode_activation(cur)?;
    ensure(
        weight.dims().1 == bias.len(),
        "linear stage bias length disagrees with weight columns",
    )?;
    Ok(LinearInfer {
        w: weight,
        bias,
        act,
    })
}

fn decode_conv(cur: &mut ViewCursor<'_>) -> Result<ConvInfer> {
    let weight = decode_matrep(cur)?;
    let bias = cur.f32_vec("conv bias")?;
    let cin = cur.usize("conv cin")?;
    let h = cur.usize("conv h")?;
    let wdim = cur.usize("conv w")?;
    let k = cur.usize("conv k")?;
    let stride = cur.usize("conv stride")?;
    let pool = decode_pool(cur)?;
    ensure(stride >= 1, "conv stride must be positive")?;
    ensure(k >= 1 && k <= h && k <= wdim, "conv kernel exceeds input dims")?;
    ensure(cin >= 1, "conv input channels must be positive")?;
    let patch = cin
        .checked_mul(k)
        .and_then(|p| p.checked_mul(k))
        .ok_or_else(|| ModelIoError::malformed("conv patch size overflows"))?;
    ensure(
        weight.dims() == (patch, bias.len()),
        "conv kernel dims disagree with cin/k/bias",
    )?;
    Ok(ConvInfer {
        w: weight,
        bias,
        cin,
        h,
        wdim,
        k,
        stride,
        pool,
    })
}

fn decode_cnn(cur: &mut ViewCursor<'_>) -> Result<CnnInfer> {
    let n = cur.len_prefix("cnn convs")?;
    let convs = (0..n).map(|_| decode_conv(cur)).collect::<Result<Vec<_>>>()?;
    let head = decode_linear(cur)?;
    let channels = cur.usize("cnn channels")?;
    let window = cur.usize("cnn window")?;
    ensure(!convs.is_empty(), "cnn needs at least one conv stage")?;
    ensure(channels >= 1 && window >= 1, "cnn input dims must be positive")?;
    Ok(CnnInfer {
        convs,
        head,
        channels,
        window,
    })
}

fn decode_lstm(cur: &mut ViewCursor<'_>) -> Result<LstmInfer> {
    let n = cur.len_prefix("lstm cells")?;
    let cells = (0..n).map(|_| decode_linear(cur)).collect::<Result<Vec<_>>>()?;
    let hidden = cur.usize("lstm hidden")?;
    let head = decode_linear(cur)?;
    let channels = cur.usize("lstm channels")?;
    let window = cur.usize("lstm window")?;
    let time_stride = cur.usize("lstm stride")?;
    ensure(!cells.is_empty(), "lstm needs at least one cell")?;
    ensure(hidden >= 1, "lstm hidden width must be positive")?;
    ensure(time_stride >= 1, "lstm time stride must be positive")?;
    ensure(
        channels >= 1 && window >= 1,
        "lstm input dims must be positive",
    )?;
    let gate_width = hidden
        .checked_mul(4)
        .ok_or_else(|| ModelIoError::malformed("lstm hidden width overflows"))?;
    ensure(
        cells.iter().all(|c| c.bias.len() == gate_width),
        "lstm cell gate width disagrees with hidden size",
    )?;
    Ok(LstmInfer {
        cells,
        hidden,
        head,
        channels,
        window,
        time_stride,
    })
}

fn decode_tf_block(cur: &mut ViewCursor<'_>) -> Result<TfBlockInfer> {
    Ok(TfBlockInfer {
        wq: decode_linear(cur)?,
        wk: decode_linear(cur)?,
        wv: decode_linear(cur)?,
        wo: decode_linear(cur)?,
        ln1: (cur.f32_vec("ln1 gamma")?, cur.f32_vec("ln1 beta")?),
        ff1: decode_linear(cur)?,
        ff2: decode_linear(cur)?,
        ln2: (cur.f32_vec("ln2 gamma")?, cur.f32_vec("ln2 beta")?),
    })
}

fn decode_tf(cur: &mut ViewCursor<'_>) -> Result<TfInfer> {
    let input_proj = decode_linear(cur)?;
    let n = cur.len_prefix("tf blocks")?;
    let blocks = (0..n)
        .map(|_| decode_tf_block(cur))
        .collect::<Result<Vec<_>>>()?;
    let head = decode_linear(cur)?;
    let pos_view = TensorView::decode(cur)?;
    let arena = cur.arena().cloned();
    let pos = pos_view.into_tensor_in(arena.as_ref());
    let heads = cur.usize("tf heads")?;
    let d_model = cur.usize("tf d_model")?;
    let channels = cur.usize("tf channels")?;
    let window = cur.usize("tf window")?;
    let time_stride = cur.usize("tf stride")?;
    ensure(time_stride >= 1, "transformer time stride must be positive")?;
    ensure(
        channels >= 1 && window >= 1,
        "transformer input dims must be positive",
    )?;
    ensure(
        heads >= 1 && d_model >= 1 && d_model.is_multiple_of(heads),
        "transformer heads must divide d_model",
    )?;
    let t_len = window.div_ceil(time_stride);
    ensure(
        pos.shape() == [t_len, d_model],
        "positional encoding shape disagrees with window/d_model",
    )?;
    ensure(
        blocks.iter().all(|b| {
            b.ln1.0.len() == d_model
                && b.ln1.1.len() == d_model
                && b.ln2.0.len() == d_model
                && b.ln2.1.len() == d_model
        }),
        "layer-norm parameter length disagrees with d_model",
    )?;
    Ok(TfInfer {
        input_proj,
        blocks,
        head,
        pos,
        heads,
        d_model,
        channels,
        window,
        time_stride,
    })
}

fn decode_infer_model(cur: &mut ViewCursor<'_>) -> Result<InferModel> {
    match cur.u8("InferModel tag")? {
        0 => Ok(InferModel::Cnn(decode_cnn(cur)?)),
        1 => Ok(InferModel::Lstm(decode_lstm(cur)?)),
        2 => Ok(InferModel::Transformer(decode_tf(cur)?)),
        tag => Err(ModelIoError::BadTag {
            context: "InferModel",
            tag,
        }),
    }
}

fn decode_tree_node(cur: &mut ViewCursor<'_>) -> Result<TreeNode> {
    match cur.u8("TreeNode tag")? {
        0 => Ok(TreeNode::Leaf {
            probs: cur.f32_vec("leaf probs")?,
        }),
        1 => Ok(TreeNode::Split {
            feature: cur.usize("split feature")?,
            threshold: cur.f32("split threshold")?,
            left: cur.usize("split left")?,
            right: cur.usize("split right")?,
        }),
        tag => Err(ModelIoError::BadTag {
            context: "TreeNode",
            tag,
        }),
    }
}

fn decode_tree(cur: &mut ViewCursor<'_>) -> Result<Tree> {
    let n = cur.len_prefix("tree nodes")?;
    let nodes = (0..n)
        .map(|_| decode_tree_node(cur))
        .collect::<Result<Vec<_>>>()?;
    Tree::from_nodes(nodes).map_err(|e| ModelIoError::malformed(e.to_string()))
}

fn decode_forest(cur: &mut ViewCursor<'_>) -> Result<RandomForest> {
    let config = ForestConfig {
        n_estimators: cur.usize("forest n_estimators")?,
        max_depth: if cur.option_tag("forest max_depth")? {
            Some(cur.usize("forest max_depth")?)
        } else {
            None
        },
        min_samples_split: cur.usize("forest min_samples_split")?,
        classes: cur.usize("forest classes")?,
        seed: cur.u64("forest seed")?,
    };
    let n = cur.len_prefix("forest trees")?;
    let trees = (0..n).map(|_| decode_tree(cur)).collect::<Result<Vec<_>>>()?;
    RandomForest::from_parts(config, trees).map_err(|e| ModelIoError::malformed(e.to_string()))
}

fn decode_forest_classifier(cur: &mut ViewCursor<'_>) -> Result<ForestClassifier> {
    let forest = decode_forest(cur)?;
    let window = cur.usize("forest window")?;
    ensure(window >= 1, "forest window must be positive")?;
    Ok(ForestClassifier::new(forest, window))
}

fn decode_member(cur: &mut ViewCursor<'_>) -> Result<Member> {
    match cur.u8("Member tag")? {
        0 => Ok(Member::Net(decode_infer_model(cur)?)),
        1 => Ok(Member::Forest(decode_forest_classifier(cur)?)),
        tag => Err(ModelIoError::BadTag {
            context: "Member",
            tag,
        }),
    }
}

/// Decodes a serialized [`Ensemble`] straight out of an image slice (the
/// `ENSM` section payload), requiring full consumption — the zero-copy
/// counterpart of `from_bytes::<Ensemble>`.
///
/// # Errors
///
/// Typed errors for every malformed input; never panics.
pub fn decode_ensemble(payload: &[u8]) -> Result<Ensemble> {
    decode_ensemble_cursor(ViewCursor::new(payload))
}

/// [`decode_ensemble`] against a shared weight arena: bulk payloads
/// (dense `f32` runs, `i8` matrices) *borrow* `owner`'s memory instead of
/// copying, so the decoded ensemble's weight clones are refcount bumps.
///
/// # Errors
///
/// Typed errors for every malformed input; never panics.
///
/// # Safety
///
/// `payload` must point into memory that `owner` keeps alive and
/// unmodified for as long as `owner` has any strong reference (the
/// [`ViewCursor::with_arena`] contract).
pub unsafe fn decode_ensemble_with(payload: &[u8], owner: ArenaOwner) -> Result<Ensemble> {
    decode_ensemble_cursor(ViewCursor::with_arena(payload, owner))
}

fn decode_ensemble_cursor(mut cur: ViewCursor<'_>) -> Result<Ensemble> {
    let voting = match cur.u8("Voting tag")? {
        0 => Voting::Soft,
        1 => Voting::Hard,
        tag => {
            return Err(ModelIoError::BadTag {
                context: "Voting",
                tag,
            })
        }
    };
    let n = cur.len_prefix("ensemble members")?;
    let members = (0..n)
        .map(|_| decode_member(&mut cur))
        .collect::<Result<Vec<_>>>()?;
    ensure(!members.is_empty(), "ensemble needs at least one member")?;
    ensure(
        members
            .iter()
            .all(|m| Classifier::window(m) <= MAX_MEMBER_WINDOW),
        "member window implausibly large",
    )?;
    if cur.remaining() != 0 {
        return Err(ModelIoError::malformed(format!(
            "{} trailing bytes after value",
            cur.remaining()
        )));
    }
    Ok(Ensemble::new(members, voting))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rw::{from_bytes, to_bytes};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn aligned_f32_payloads_borrow() {
        // 8-byte length prefix then floats: a buffer starting at a Vec's
        // base is at least 8-aligned, so the floats sit on a 4-byte
        // boundary and must borrow on little-endian hosts.
        let values = vec![1.0f32, -2.5, 3.25];
        let bytes = to_bytes(&values).unwrap();
        let mut cur = ViewCursor::new(&bytes);
        let n = cur.len_prefix("test").unwrap();
        let view = cur.f32_slice(n, "test").unwrap();
        assert_eq!(view.as_slice(), values.as_slice());
        #[cfg(target_endian = "little")]
        assert!(view.is_borrowed(), "aligned payload did not borrow");
    }

    #[test]
    fn misaligned_f32_payloads_copy_correctly() {
        let values = vec![0.5f32, f32::from_bits(0x7FC0_1234), -1.0];
        let mut bytes = vec![0u8]; // shift off 4-byte alignment
        bytes.extend(to_bytes(&values).unwrap());
        let mut cur = ViewCursor::new(&bytes[1..]);
        let n = cur.len_prefix("test").unwrap();
        let view = cur.f32_slice(n, "test").unwrap();
        // The Vec base is ≥ 8-aligned, so +1 is guaranteed misaligned and
        // the fallback must run — with bit-exact values.
        assert!(!view.is_borrowed(), "misaligned payload claimed to borrow");
        for (a, b) in view.as_slice().iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tensor_view_round_trips_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::uniform(vec![4, 7], 1.0, &mut rng);
        let bytes = to_bytes(&t).unwrap();
        let mut cur = ViewCursor::new(&bytes);
        let view = TensorView::decode(&mut cur).unwrap();
        assert_eq!(cur.remaining(), 0);
        assert_eq!(view.shape(), t.shape());
        let back = view.into_tensor();
        assert_eq!(back, t);
        for (a, b) in back.data().iter().zip(t.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn view_decode_matches_streaming_decode() {
        // Structural equivalence on a mixed-representation model.
        use ml::compress::{quantize, QuantMode};
        use ml::models::CnnConfig;
        let model = CnnConfig::paper_best().build(7).unwrap();
        let mut compiled = ml::infer::compile_cnn(&model);
        quantize(&mut compiled, QuantMode::Calibrated).unwrap();
        let ensemble = Ensemble::new(vec![Member::Net(compiled)], Voting::Soft);
        let bytes = to_bytes(&ensemble).unwrap();
        let streamed: Ensemble = from_bytes(&bytes).unwrap();
        let viewed = decode_ensemble(&bytes).unwrap();
        assert_eq!(streamed, viewed);
    }

    #[test]
    fn truncations_and_trailing_bytes_are_typed() {
        let ensemble = Ensemble::new(
            vec![Member::Forest(ForestClassifier::new(
                toy_forest(),
                16,
            ))],
            Voting::Hard,
        );
        let bytes = to_bytes(&ensemble).unwrap();
        assert_eq!(decode_ensemble(&bytes).unwrap(), ensemble);
        for cut in 0..bytes.len() - 1 {
            assert!(
                decode_ensemble(&bytes[..cut]).is_err(),
                "truncation to {cut} accepted"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            decode_ensemble(&trailing).unwrap_err(),
            ModelIoError::Malformed { .. }
        ));
    }

    fn toy_forest() -> RandomForest {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..50 {
            xs.push((0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect::<Vec<_>>());
            ys.push(i % 3);
        }
        RandomForest::fit(
            ForestConfig {
                n_estimators: 3,
                max_depth: Some(4),
                min_samples_split: 2,
                classes: 3,
                seed: 2,
            },
            &xs,
            &ys,
        )
        .expect("toy forest fits")
    }
}
