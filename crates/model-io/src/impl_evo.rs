//! [`Persist`] implementations for the `evo` crate: genomes, evaluated
//! candidates and whole-search checkpoints.

use std::io::{Read, Write};

use evo::{Candidate, EvalResult, EvolutionConfig, EvolutionOutcome, Genome, SearchState};

use crate::error::{ModelIoError, Result};
use crate::impl_ml::ensure;
use crate::persist_struct;
use crate::rw::Persist;

impl Persist for Genome {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        match self {
            Genome::Cnn { config, optimizer } => {
                0u8.write_to(w)?;
                config.write_to(w)?;
                optimizer.write_to(w)
            }
            Genome::Lstm { config, optimizer } => {
                1u8.write_to(w)?;
                config.write_to(w)?;
                optimizer.write_to(w)
            }
            Genome::Transformer { config, optimizer } => {
                2u8.write_to(w)?;
                config.write_to(w)?;
                optimizer.write_to(w)
            }
            Genome::Forest { config, window } => {
                3u8.write_to(w)?;
                config.write_to(w)?;
                window.write_to(w)
            }
        }
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(Genome::Cnn {
                config: Persist::read_from(r)?,
                optimizer: Persist::read_from(r)?,
            }),
            1 => Ok(Genome::Lstm {
                config: Persist::read_from(r)?,
                optimizer: Persist::read_from(r)?,
            }),
            2 => Ok(Genome::Transformer {
                config: Persist::read_from(r)?,
                optimizer: Persist::read_from(r)?,
            }),
            3 => {
                let genome = Genome::Forest {
                    config: Persist::read_from(r)?,
                    window: Persist::read_from(r)?,
                };
                ensure(genome.window() >= 1, "forest genome window must be positive")?;
                Ok(genome)
            }
            tag => Err(ModelIoError::BadTag {
                context: "Genome",
                tag,
            }),
        }
    }
}

persist_struct!(EvolutionConfig {
    population,
    generations,
    accuracy_threshold,
    mutation_rate,
    crossover_rate,
    tournament,
    weight_accuracy,
    weight_params,
    seed,
});

persist_struct!(EvalResult { accuracy, params });

persist_struct!(Candidate {
    genome,
    accuracy,
    params,
});

persist_struct!(EvolutionOutcome {
    history,
    final_population,
    front,
    best,
});

/// Manual rather than `persist_struct!`: the RNG stream position must be
/// validated on the way in — `StdRng::from_state` panics on the all-zero
/// state (unreachable from any seed), and a load must be a typed error
/// instead.
impl Persist for SearchState {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.generation.write_to(w)?;
        self.population.write_to(w)?;
        self.history.write_to(w)?;
        self.rng_state.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let state = SearchState {
            generation: Persist::read_from(r)?,
            population: Persist::read_from(r)?,
            history: Persist::read_from(r)?,
            rng_state: Persist::read_from(r)?,
        };
        ensure(
            state.rng_state != [0; 4],
            "all-zero RNG state is degenerate (unreachable from any seed)",
        )?;
        ensure(
            !state.population.is_empty(),
            "resumable state must carry a population",
        )?;
        Ok(state)
    }
}
