//! The [`Persist`] trait and little-endian primitive codecs.
//!
//! Every multi-byte value in a `.cogm` file is little-endian. Collection
//! lengths are written as `u64` and are never trusted for allocation on
//! the way back in: readers reserve at most [`CAP_HINT`] elements up front
//! and grow with the bytes actually read, so a forged multi-gigabyte
//! length costs at most a small buffer before the stream runs dry and the
//! reader returns [`ModelIoError::Truncated`].

use std::io::{Read, Write};

use crate::error::{ModelIoError, Result};

/// Upper bound on the capacity a reader pre-reserves for one collection.
const CAP_HINT: usize = 4096;

/// Sanity ceiling on any single length field (1 Ti-elements); anything
/// larger is a corrupt or hostile file, not a model. Shared with the
/// zero-copy view cursor so both readers reject the same inputs.
pub(crate) const MAX_LEN: u64 = 1 << 40;

/// A type that can serialize itself to, and totally deserialize itself
/// from, a byte stream.
///
/// `read_from` implementations must be *total*: any byte sequence either
/// produces a value or a typed [`ModelIoError`] — never a panic, an
/// unbounded allocation, or an infinite loop.
pub trait Persist: Sized {
    /// Writes the value to `w` in the crate's little-endian encoding.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; [`ModelIoError::UnsupportedMember`] for
    /// the one non-persistable value (custom ensemble members).
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()>;

    /// Reads a value of this type from `r`.
    ///
    /// # Errors
    ///
    /// Every malformed input yields a typed [`ModelIoError`].
    fn read_from<R: Read>(r: &mut R) -> Result<Self>;

    /// Reads `len` consecutive values — the body of `Vec<T>::read_from`,
    /// split out so fixed-width types can decode in bulk. The default is
    /// the obvious per-element loop; the little-endian primitives
    /// override it to read whole chunks of bytes at a time, which is
    /// what makes the lazy streaming loader's weight decode competitive
    /// with the zero-copy path (a paper-scale ensemble is tens of
    /// thousands of `f32`s — one buffered read each adds up).
    ///
    /// # Errors
    ///
    /// Every malformed input yields a typed [`ModelIoError`].
    fn read_many<R: Read>(r: &mut R, len: usize) -> Result<Vec<Self>> {
        let mut out = Vec::with_capacity(len.min(CAP_HINT));
        for _ in 0..len {
            out.push(Self::read_from(r)?);
        }
        Ok(out)
    }
}

/// Reads exactly `N` bytes, mapping EOF to a contextual truncation error.
pub(crate) fn read_array<const N: usize, R: Read>(
    r: &mut R,
    context: &'static str,
) -> Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ModelIoError::Truncated { context }
        } else {
            ModelIoError::Io(e)
        }
    })?;
    Ok(buf)
}

/// Reads a `u64` length field and bounds-checks it.
pub(crate) fn read_len<R: Read>(r: &mut R, context: &'static str) -> Result<usize> {
    let len = u64::from_le_bytes(read_array(r, context)?);
    if len > MAX_LEN {
        return Err(ModelIoError::LengthOverflow { context, len });
    }
    usize::try_from(len).map_err(|_| ModelIoError::LengthOverflow { context, len })
}

macro_rules! persist_le_bytes {
    ($($ty:ty),+) => {$(
        impl Persist for $ty {
            fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
                w.write_all(&self.to_le_bytes())?;
                Ok(())
            }

            fn read_from<R: Read>(r: &mut R) -> Result<Self> {
                Ok(<$ty>::from_le_bytes(read_array(r, stringify!($ty))?))
            }

            /// Bulk decode: one `read_exact` per 16 KiB chunk instead of
            /// one per element. Capacity stays bounded by [`CAP_HINT`]
            /// (forged lengths run the stream dry and error before any
            /// length-proportional allocation).
            fn read_many<R: Read>(r: &mut R, len: usize) -> Result<Vec<Self>> {
                const SIZE: usize = std::mem::size_of::<$ty>();
                const CHUNK: usize = (16 * 1024) / SIZE;
                let mut out = Vec::with_capacity(len.min(CAP_HINT));
                let mut buf = [0u8; 16 * 1024];
                let mut remaining = len;
                while remaining > 0 {
                    let n = remaining.min(CHUNK);
                    let bytes = &mut buf[..n * SIZE];
                    r.read_exact(bytes).map_err(|e| {
                        if e.kind() == std::io::ErrorKind::UnexpectedEof {
                            ModelIoError::Truncated { context: concat!(stringify!($ty), " sequence") }
                        } else {
                            ModelIoError::Io(e)
                        }
                    })?;
                    out.extend(bytes.chunks_exact(SIZE).map(|c| {
                        <$ty>::from_le_bytes(c.try_into().expect("chunk size"))
                    }));
                    remaining -= n;
                }
                Ok(out)
            }
        }
    )+};
}

persist_le_bytes!(u8, u16, u32, u64, i8, f32, f64);

impl Persist for usize {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        (*self as u64).write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let v = u64::read_from(r)?;
        usize::try_from(v).map_err(|_| ModelIoError::LengthOverflow {
            context: "usize",
            len: v,
        })
    }
}

impl Persist for bool {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        u8::from(*self).write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(ModelIoError::BadTag {
                context: "bool",
                tag,
            }),
        }
    }
}

impl<T: Persist> Persist for Option<T> {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        match self {
            None => 0u8.write_to(w),
            Some(v) => {
                1u8.write_to(w)?;
                v.write_to(w)
            }
        }
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::read_from(r)?)),
            tag => Err(ModelIoError::BadTag {
                context: "Option",
                tag,
            }),
        }
    }
}

/// Writes a length-prefixed sequence without cloning (the slice-borrowing
/// counterpart of `Vec<T>::write_to`; accessor-backed types use it to
/// avoid materializing owned copies of their weight buffers).
pub fn write_slice<T: Persist, W: Write>(items: &[T], w: &mut W) -> Result<()> {
    (items.len() as u64).write_to(w)?;
    for item in items {
        item.write_to(w)?;
    }
    Ok(())
}

impl<T: Persist> Persist for Vec<T> {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        write_slice(self, w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let len = read_len(r, "Vec length")?;
        T::read_many(r, len)
    }
}

/// Fixed-size array of words (RNG stream positions); no length prefix.
impl Persist for [u64; 4] {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        for word in self {
            word.write_to(w)?;
        }
        Ok(())
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let mut out = [0u64; 4];
        for word in &mut out {
            *word = u64::read_from(r)?;
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.0.write_to(w)?;
        self.1.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        Ok((A::read_from(r)?, B::read_from(r)?))
    }
}

impl Persist for String {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        write_slice(self.as_bytes(), w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let bytes = Vec::<u8>::read_from(r)?;
        String::from_utf8(bytes).map_err(|_| ModelIoError::malformed("non-UTF-8 string"))
    }
}

/// Serializes any [`Persist`] value to a fresh byte buffer.
///
/// # Errors
///
/// Propagates the value's `write_to` failure.
pub fn to_bytes<T: Persist>(value: &T) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    value.write_to(&mut buf)?;
    Ok(buf)
}

/// Deserializes a [`Persist`] value from a byte slice, requiring the slice
/// to be fully consumed.
///
/// # Errors
///
/// Typed errors for malformed bytes; [`ModelIoError::Malformed`] when
/// trailing bytes remain.
pub fn from_bytes<T: Persist>(mut bytes: &[u8]) -> Result<T> {
    let value = T::read_from(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(ModelIoError::malformed(format!(
            "{} trailing bytes after value",
            bytes.len()
        )));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0xABu8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-7i8);
        round_trip(1.5f32);
        round_trip(-0.0f64);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(Some(42u32));
        round_trip(Option::<u32>::None);
        round_trip(vec![1u32, 2, 3]);
        round_trip((3usize, String::from("héllo")));
    }

    #[test]
    fn nan_payload_is_bit_exact() {
        let weird = f32::from_bits(0x7FC0_1234);
        let bytes = to_bytes(&weird).unwrap();
        let back: f32 = from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn forged_length_does_not_allocate() {
        // Claims 2^39 elements but carries none: must error, not OOM.
        let mut bytes = Vec::new();
        (1u64 << 39).write_to(&mut bytes).unwrap();
        let err = from_bytes::<Vec<u8>>(&bytes).unwrap_err();
        assert!(matches!(err, ModelIoError::Truncated { .. }), "{err}");
        // Beyond the sanity ceiling: rejected before any read loop.
        let mut bytes = Vec::new();
        (1u64 << 41).write_to(&mut bytes).unwrap();
        let err = from_bytes::<Vec<u8>>(&bytes).unwrap_err();
        assert!(matches!(err, ModelIoError::LengthOverflow { .. }), "{err}");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u32>(&bytes).unwrap_err(),
            ModelIoError::Malformed { .. }
        ));
    }

    #[test]
    fn bad_tags_are_typed() {
        assert!(matches!(
            from_bytes::<bool>(&[9]).unwrap_err(),
            ModelIoError::BadTag { .. }
        ));
        assert!(matches!(
            from_bytes::<Option<u8>>(&[2]).unwrap_err(),
            ModelIoError::BadTag { .. }
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = to_bytes(&vec![1.0f32, 2.0, 3.0]).unwrap();
        for cut in 0..bytes.len() - 1 {
            let err = from_bytes::<Vec<f32>>(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, ModelIoError::Truncated { .. }), "cut {cut}: {err}");
        }
    }
}
