//! [`WeightImage`]: one validated, shared, read-only `.cogm` image that
//! every session of an artifact decodes through.
//!
//! Loading used to mean "copy the file into private buffers per model" —
//! per-session weight memory scaled with session count. A `WeightImage`
//! inverts that: the artifact's bytes live once (memory-mapped on unix,
//! an aligned owned buffer otherwise), validation runs once at open, and
//! every [`WeightImage::decode`] hands out an
//! [`Ensemble`](ml::ensemble::Ensemble) whose large tensors are
//! [`ArenaVec`](ml::arena::ArenaVec) views **borrowing the image** —
//! cloning such a model for another session bumps a refcount instead of
//! copying weights, so fleet memory is `weights + sessions × scratch`.
//!
//! v1 artifacts are upgraded to the aligned v2 layout in memory at open
//! (payload bytes untouched, decode bit-identical), so the borrowed-view
//! guarantees hold regardless of the on-disk format. Cold start is
//! therefore: map (or read) + streaming CRC + table walk — no eager
//! weight copies.

use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

use ml::arena::ArenaOwner;
use ml::ensemble::Ensemble;

use crate::container::{image_version, parse_sections, upgrade_file_bytes, FORMAT_VERSION};
use crate::error::{ModelIoError, Result};
use crate::impl_core::{tags, SavedModel};
use crate::mmap::{AlignedBytes, ImageBytes};

/// A validated `.cogm` image shared by every session of one artifact.
///
/// Cheap to clone (two `Arc` bumps); see the module docs for the
/// ownership model.
#[derive(Debug, Clone)]
pub struct WeightImage {
    bytes: Arc<ImageBytes>,
    /// Section table captured by the one validation pass at open:
    /// `(tag, payload byte range)`. [`WeightImage::decode`] reads through
    /// this instead of re-walking (and re-checksumming) the whole image.
    sections: Arc<[([u8; 4], Range<usize>)]>,
    /// The image's own trailing CRC32 — a content hash suitable for
    /// interning (identical artifacts collide on purpose; v1 and v2
    /// encodings of the same sections agree because the hash is taken
    /// after the canonical v2 upgrade).
    content_hash: u32,
    /// Format version found on disk, before any in-memory upgrade.
    source_version: u16,
}

impl WeightImage {
    /// Opens and validates the artifact at `path`, memory-mapping it when
    /// the platform allows (unix, v2 on disk) and falling back to an
    /// aligned owned read otherwise. v1 files are upgraded in memory.
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input; never panics.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref();
        #[cfg(unix)]
        {
            let file = std::fs::File::open(path)?;
            if let Ok(map) = crate::mmap::Mmap::map(&file) {
                return Self::from_image_bytes(ImageBytes::Mapped(map));
            }
            // Fall through: unmappable (e.g. empty) files still get the
            // owned path's typed validation errors.
        }
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Builds an image from in-memory file bytes (network loads, tests).
    /// The bytes are copied once into an aligned buffer.
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Self::from_image_bytes(ImageBytes::Owned(AlignedBytes::copy_from(bytes)))
    }

    fn from_image_bytes(bytes: ImageBytes) -> Result<Self> {
        let source_version = image_version(&bytes)?;
        let bytes = if source_version == FORMAT_VERSION {
            bytes
        } else {
            // Legacy layout: re-encode as v2 in memory so the alignment
            // guarantees hold. `upgrade_file_bytes` validates the input.
            ImageBytes::Owned(AlignedBytes::copy_from(&upgrade_file_bytes(&bytes)?))
        };
        // The one full validation pass (structure + CRC). Payload slices
        // are converted to byte ranges so `decode` never re-walks the
        // image — cold start pays for exactly one checksum.
        let base = bytes.as_ptr() as usize;
        let sections: Arc<[([u8; 4], Range<usize>)]> = parse_sections(&bytes)?
            .into_iter()
            .map(|(tag, payload)| {
                let start = payload.as_ptr() as usize - base;
                (tag, start..start + payload.len())
            })
            .collect();
        let tail = bytes.len() - 4;
        let content_hash = u32::from_le_bytes(bytes[tail..].try_into().expect("crc checked"));
        Ok(Self {
            bytes: Arc::new(bytes),
            sections,
            content_hash,
            source_version,
        })
    }

    /// Decodes the full model. The returned ensemble's tensors borrow
    /// this image (refcounted), so cloning the model per session shares
    /// the weights; config and normalization are tiny and owned.
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input; never panics.
    pub fn decode(&self) -> Result<SavedModel> {
        let find = |tag: [u8; 4]| {
            self.sections
                .iter()
                .find(|(t, _)| *t == tag)
                .map(|(_, r)| &self.bytes[r.clone()])
        };
        let pipeline = crate::from_bytes(
            find(tags::PIPELINE).ok_or(ModelIoError::MissingSection {
                tag: tags::PIPELINE,
            })?,
        )?;
        let ensemble = self.decode_ensemble_payload(find(tags::ENSEMBLE).ok_or(
            ModelIoError::MissingSection {
                tag: tags::ENSEMBLE,
            },
        )?)?;
        let normalization = find(tags::NORMALIZATION)
            .map(crate::from_bytes)
            .transpose()?;
        SavedModel::from_parts(pipeline, ensemble, normalization)
    }

    fn decode_ensemble_payload(&self, payload: &[u8]) -> Result<Ensemble> {
        let owner: ArenaOwner = self.bytes.clone();
        // SAFETY: `payload` borrows from `self.bytes`, and `owner` is a
        // clone of that same Arc — the bytes outlive every ArenaVec that
        // captures the owner.
        unsafe { crate::view::decode_ensemble_with(payload, owner) }
    }

    /// The image's content hash (its trailing CRC32, post-upgrade) —
    /// stable across processes, suitable as an interning key.
    #[must_use]
    pub fn content_hash(&self) -> u32 {
        self.content_hash
    }

    /// Whether the bytes are a file mapping (false: owned aligned buffer,
    /// e.g. after a v1 upgrade or on non-unix platforms).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// The format version the source carried before any in-memory
    /// upgrade (1 or 2).
    #[must_use]
    pub fn source_version(&self) -> u16 {
        self.source_version
    }

    /// Total image size in bytes (header + table + payloads + checksum).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image is empty (it never is: validation requires the
    /// envelope; present for clippy's `len`-without-`is_empty` lint).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}
