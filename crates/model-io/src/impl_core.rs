//! [`Persist`] implementations for the pipeline layer, plus the two
//! top-level artifacts: [`SavedModel`] (a deployable trained system) and
//! [`SearchCheckpoint`] (a completed evolutionary-search state).

use std::io::{Read, Write};
use std::path::Path;

use arm::controller::ControllerConfig;
use arm::safety::SafetyConfig;
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig};
use cognitive_arm::preprocess::FilterSpec;
use dsp::normalize::Zscore;
use evo::{EvolutionConfig, EvolutionOutcome};
use ml::ensemble::Ensemble;

use crate::container::Container;
use crate::error::{ModelIoError, Result};
use crate::impl_ml::ensure;
use crate::persist_struct;
use crate::rw::{write_slice, Persist};

/// Section tags used by the top-level artifact files.
pub mod tags {
    /// Pipeline configuration.
    pub const PIPELINE: [u8; 4] = *b"PCFG";
    /// Trained ensemble.
    pub const ENSEMBLE: [u8; 4] = *b"ENSM";
    /// Frozen per-subject normalization (optional).
    pub const NORMALIZATION: [u8; 4] = *b"NORM";
    /// Evolutionary-search configuration.
    pub const EVO_CONFIG: [u8; 4] = *b"ECFG";
    /// Evolutionary-search outcome.
    pub const EVO_OUTCOME: [u8; 4] = *b"EOUT";
}

persist_struct!(FilterSpec {
    order,
    low_hz,
    high_hz,
    notch_hz,
    notch_q,
});

persist_struct!(ControllerConfig { step, debounce });

persist_struct!(SafetyConfig { max_step });

/// `threads` is deliberately **not** persisted: deployment concurrency is
/// host configuration, not model state — a loaded config always has
/// `threads: None`, so the serving host's `COGARM_THREADS` (or its core
/// count) governs, and thread count never changes outputs anyway.
impl Persist for PipelineConfig {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.label_every.write_to(w)?;
        self.filter.write_to(w)?;
        self.controller.write_to(w)?;
        self.safety.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        Ok(PipelineConfig {
            label_every: Persist::read_from(r)?,
            filter: Persist::read_from(r)?,
            controller: Persist::read_from(r)?,
            safety: Persist::read_from(r)?,
            threads: None,
        })
    }
}

impl Persist for Zscore {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        write_slice(self.means(), w)?;
        write_slice(self.stds(), w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let means = Vec::<f32>::read_from(r)?;
        let stds = Vec::<f32>::read_from(r)?;
        // Name the actual invariant: `DspError`'s Display here would talk
        // about windows, which is useless in a load diagnostic.
        Zscore::from_parts(means, stds).map_err(|_| {
            ModelIoError::malformed(
                "zscore statistics rejected (empty, length mismatch, \
                 or non-finite/non-positive std)",
            )
        })
    }
}

/// Everything needed to reassemble a serving [`CognitiveArm`] without
/// retraining: the pipeline configuration, the trained ensemble, and the
/// frozen per-subject normalization (when one was installed).
#[derive(Debug, Clone, PartialEq)]
pub struct SavedModel {
    /// Pipeline configuration the system was assembled with.
    pub pipeline: PipelineConfig,
    /// The trained voting ensemble.
    pub ensemble: Ensemble,
    /// Frozen normalization statistics, if fitted.
    pub normalization: Option<Zscore>,
}

impl SavedModel {
    /// Writes the model as a `.cogm` container
    /// (sections `PCFG` + `ENSM` [+ `NORM`]).
    ///
    /// # Errors
    ///
    /// [`ModelIoError::UnsupportedMember`] if the ensemble holds a
    /// `Member::Custom`; I/O failures otherwise.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        self.to_container()?.save(path)
    }

    /// The model as an in-memory container (what [`SavedModel::save`]
    /// writes).
    ///
    /// # Errors
    ///
    /// Same as [`SavedModel::save`], minus I/O.
    pub fn to_container(&self) -> Result<Container> {
        let mut container = Container::new();
        container.add(tags::PIPELINE, &self.pipeline)?;
        container.add(tags::ENSEMBLE, &self.ensemble)?;
        if let Some(z) = &self.normalization {
            container.add(tags::NORMALIZATION, z)?;
        }
        Ok(container)
    }

    /// Loads a model saved by [`SavedModel::save`].
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input; never panics.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::from_container(&Container::load(path)?)
    }

    /// Decodes a model from an already-parsed container.
    ///
    /// # Errors
    ///
    /// Same as [`SavedModel::load`], minus I/O.
    pub fn from_container(container: &Container) -> Result<Self> {
        let pipeline: PipelineConfig = container.get(tags::PIPELINE)?;
        let ensemble: Ensemble = container.get(tags::ENSEMBLE)?;
        let normalization: Option<Zscore> = container.get_optional(tags::NORMALIZATION)?;
        ensure(
            pipeline.label_every >= 1,
            "label_every must be positive (the loop advances by it)",
        )?;
        // `CognitiveArm::new` expects a designable filter; run the same
        // design here so a hostile spec is a typed error, not a panic.
        cognitive_arm::preprocess::StreamingChain::new(&pipeline.filter)
            .map_err(|e| ModelIoError::malformed(format!("filter spec rejected: {e}")))?;
        // The streaming chain indexes the z-score per hardware channel.
        if let Some(z) = &normalization {
            ensure(
                z.channels() == eeg::CHANNELS,
                "normalization channel count disagrees with the headset",
            )?;
        }
        Ok(Self {
            pipeline,
            ensemble,
            normalization,
        })
    }

    /// Assembles a runnable system for one simulated subject, installing
    /// the saved normalization when present.
    #[must_use]
    pub fn into_system(self, subject_seed: u64) -> CognitiveArm {
        let mut system = CognitiveArm::new(self.pipeline, self.ensemble, subject_seed);
        if let Some(z) = self.normalization {
            system.set_normalization(z);
        }
        system
    }
}

/// Save/load surface for the assembled closed-loop system.
///
/// Implemented for [`CognitiveArm`]; bring the trait into scope and call
/// `system.save_model(path)` / `CognitiveArm::load_model(path, seed)`.
pub trait ArmPersist: Sized {
    /// Persists the trained state (config + ensemble + normalization) as a
    /// versioned `.cogm` file.
    ///
    /// # Errors
    ///
    /// [`ModelIoError::UnsupportedMember`] for custom ensemble members;
    /// I/O failures otherwise.
    fn save_model<P: AsRef<Path>>(&self, path: P) -> Result<()>;

    /// Reassembles a system from a saved artifact for one simulated
    /// subject. The loaded system's label trace is bit-identical to the
    /// system that was saved (given the same subject seed and actions).
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input; never panics.
    fn load_model<P: AsRef<Path>>(path: P, subject_seed: u64) -> Result<Self>;
}

impl ArmPersist for CognitiveArm {
    fn save_model<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let saved = SavedModel {
            pipeline: self.config().clone(),
            ensemble: self.ensemble().clone(),
            normalization: self.normalization().cloned(),
        };
        saved.save(path)
    }

    fn load_model<P: AsRef<Path>>(path: P, subject_seed: u64) -> Result<Self> {
        Ok(SavedModel::load(path)?.into_system(subject_seed))
    }
}

/// A completed evolutionary-search state: the configuration that drove it
/// and everything it produced. Persisting it makes long searches resumable
/// across processes and their Pareto fronts auditable after the fact.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCheckpoint {
    /// The search configuration.
    pub config: EvolutionConfig,
    /// The search's full outcome (history, final population, front, best).
    pub outcome: EvolutionOutcome,
}

impl SearchCheckpoint {
    /// Writes the checkpoint as a `.cogm` container
    /// (sections `ECFG` + `EOUT`).
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let mut container = Container::new();
        container.add(tags::EVO_CONFIG, &self.config)?;
        container.add(tags::EVO_OUTCOME, &self.outcome)?;
        container.save(path)
    }

    /// Loads a checkpoint saved by [`SearchCheckpoint::save`].
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input; never panics.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let container = Container::load(path)?;
        Ok(Self {
            config: container.get(tags::EVO_CONFIG)?,
            outcome: container.get(tags::EVO_OUTCOME)?,
        })
    }
}
