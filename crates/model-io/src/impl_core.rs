//! [`Persist`] implementations for the pipeline layer, plus the two
//! top-level artifacts: [`SavedModel`] (a deployable trained system) and
//! [`SearchCheckpoint`] (a completed evolutionary-search state).

use std::io::{Read, Write};
use std::path::Path;

use arm::controller::ControllerConfig;
use arm::safety::SafetyConfig;
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig};
use cognitive_arm::preprocess::FilterSpec;
use dsp::normalize::Zscore;
use evo::{EvolutionConfig, EvolutionOutcome};
use ml::ensemble::Ensemble;

use crate::container::Container;
use crate::error::{ModelIoError, Result};
use crate::impl_ml::ensure;
use crate::persist_struct;
use crate::rw::{write_slice, Persist};

/// Section tags used by the top-level artifact files.
pub mod tags {
    /// Pipeline configuration.
    pub const PIPELINE: [u8; 4] = *b"PCFG";
    /// Trained ensemble.
    pub const ENSEMBLE: [u8; 4] = *b"ENSM";
    /// Frozen per-subject normalization (optional).
    pub const NORMALIZATION: [u8; 4] = *b"NORM";
    /// Evolutionary-search configuration.
    pub const EVO_CONFIG: [u8; 4] = *b"ECFG";
    /// Evolutionary-search outcome.
    pub const EVO_OUTCOME: [u8; 4] = *b"EOUT";
    /// Mid-search resumable state (optional; additive, so no version bump).
    pub const EVO_RESUME: [u8; 4] = *b"ERSM";
}

persist_struct!(FilterSpec {
    order,
    low_hz,
    high_hz,
    notch_hz,
    notch_q,
});

persist_struct!(ControllerConfig { step, debounce });

persist_struct!(SafetyConfig { max_step });

/// `threads` is deliberately **not** persisted: deployment concurrency is
/// host configuration, not model state — a loaded config always has
/// `threads: None`, so the serving host's `COGARM_THREADS` (or its core
/// count) governs, and thread count never changes outputs anyway.
impl Persist for PipelineConfig {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.label_every.write_to(w)?;
        self.filter.write_to(w)?;
        self.controller.write_to(w)?;
        self.safety.write_to(w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        Ok(PipelineConfig {
            label_every: Persist::read_from(r)?,
            filter: Persist::read_from(r)?,
            controller: Persist::read_from(r)?,
            safety: Persist::read_from(r)?,
            threads: None,
        })
    }
}

impl Persist for Zscore {
    fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        write_slice(self.means(), w)?;
        write_slice(self.stds(), w)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let means = Vec::<f32>::read_from(r)?;
        let stds = Vec::<f32>::read_from(r)?;
        // Name the actual invariant: `DspError`'s Display here would talk
        // about windows, which is useless in a load diagnostic.
        Zscore::from_parts(means, stds).map_err(|_| {
            ModelIoError::malformed(
                "zscore statistics rejected (empty, length mismatch, \
                 or non-finite/non-positive std)",
            )
        })
    }
}

/// Everything needed to reassemble a serving [`CognitiveArm`] without
/// retraining: the pipeline configuration, the trained ensemble, and the
/// frozen per-subject normalization (when one was installed).
#[derive(Debug, Clone, PartialEq)]
pub struct SavedModel {
    /// Pipeline configuration the system was assembled with.
    pub pipeline: PipelineConfig,
    /// The trained voting ensemble.
    pub ensemble: Ensemble,
    /// Frozen normalization statistics, if fitted.
    pub normalization: Option<Zscore>,
}

impl SavedModel {
    /// Writes the model as a `.cogm` container
    /// (sections `PCFG` + `ENSM` [+ `NORM`]).
    ///
    /// # Errors
    ///
    /// [`ModelIoError::UnsupportedMember`] if the ensemble holds a
    /// `Member::Custom`; I/O failures otherwise.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        self.to_container()?.save(path)
    }

    /// The model as an in-memory container (what [`SavedModel::save`]
    /// writes).
    ///
    /// # Errors
    ///
    /// Same as [`SavedModel::save`], minus I/O.
    pub fn to_container(&self) -> Result<Container> {
        let mut container = Container::new();
        container.add(tags::PIPELINE, &self.pipeline)?;
        container.add(tags::ENSEMBLE, &self.ensemble)?;
        if let Some(z) = &self.normalization {
            container.add(tags::NORMALIZATION, z)?;
        }
        Ok(container)
    }

    /// Loads a model saved by [`SavedModel::save`], section by section
    /// through a [`crate::LazyContainer`] — the checksum is verified by
    /// streaming and only the three model sections are ever materialized.
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input; never panics.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut lazy = crate::LazyContainer::open(path)?;
        Self::from_parts(
            lazy.get(tags::PIPELINE)?,
            lazy.get(tags::ENSEMBLE)?,
            lazy.get_optional(tags::NORMALIZATION)?,
        )
    }

    /// The zero-copy cold-start path: reads the whole file into one
    /// buffer and decodes it with [`SavedModel::from_file_bytes`]. One
    /// sequential read plus bulk tensor copies, instead of the lazy
    /// loader's element-at-a-time streaming — `benches/inference.rs`
    /// quantifies the gap. The loaded model is bit-identical to
    /// [`SavedModel::load`]'s (the golden-fixture suite locks the label
    /// traces).
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input; never panics.
    pub fn load_zero_copy<P: AsRef<Path>>(path: P) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_file_bytes(&bytes)
    }

    /// Decodes a model from a complete `.cogm` image supplied as plain
    /// bytes — the hook for memory-mapped buffers (any `&[u8]` works; the
    /// format needs nothing else). The checksum is verified first, then
    /// the ensemble's tensors decode as borrowed views over the image
    /// with alignment-checked reinterpretation (safe copying fallback),
    /// so building the owned model costs one bulk copy per tensor.
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input; never panics.
    pub fn from_file_bytes(bytes: &[u8]) -> Result<Self> {
        let sections = crate::container::parse_sections(bytes)?;
        let find = |tag: [u8; 4]| sections.iter().find(|(t, _)| *t == tag).map(|(_, p)| *p);
        let pipeline = crate::from_bytes(
            find(tags::PIPELINE).ok_or(ModelIoError::MissingSection {
                tag: tags::PIPELINE,
            })?,
        )?;
        let ensemble = crate::view::decode_ensemble(find(tags::ENSEMBLE).ok_or(
            ModelIoError::MissingSection {
                tag: tags::ENSEMBLE,
            },
        )?)?;
        let normalization = find(tags::NORMALIZATION)
            .map(crate::from_bytes)
            .transpose()?;
        Self::from_parts(pipeline, ensemble, normalization)
    }

    /// Decodes a model from an already-parsed container.
    ///
    /// # Errors
    ///
    /// Same as [`SavedModel::load`], minus I/O.
    pub fn from_container(container: &Container) -> Result<Self> {
        Self::from_parts(
            container.get(tags::PIPELINE)?,
            container.get(tags::ENSEMBLE)?,
            container.get_optional(tags::NORMALIZATION)?,
        )
    }

    /// The shared validation gate every load path funnels through
    /// (including [`crate::WeightImage::decode`]).
    pub(crate) fn from_parts(
        pipeline: PipelineConfig,
        ensemble: Ensemble,
        normalization: Option<Zscore>,
    ) -> Result<Self> {
        ensure(
            pipeline.label_every >= 1,
            "label_every must be positive (the loop advances by it)",
        )?;
        // `CognitiveArm::new` expects a designable filter; run the same
        // design here so a hostile spec is a typed error, not a panic.
        cognitive_arm::preprocess::StreamingChain::new(&pipeline.filter)
            .map_err(|e| ModelIoError::malformed(format!("filter spec rejected: {e}")))?;
        // The streaming chain indexes the z-score per hardware channel.
        if let Some(z) = &normalization {
            ensure(
                z.channels() == eeg::CHANNELS,
                "normalization channel count disagrees with the headset",
            )?;
        }
        Ok(Self {
            pipeline,
            ensemble,
            normalization,
        })
    }

    /// Assembles a runnable system for one simulated subject, installing
    /// the saved normalization when present.
    #[must_use]
    pub fn into_system(self, subject_seed: u64) -> CognitiveArm {
        let mut system = CognitiveArm::new(self.pipeline, self.ensemble, subject_seed);
        if let Some(z) = self.normalization {
            system.set_normalization(z);
        }
        system
    }
}

/// Save/load surface for the assembled closed-loop system.
///
/// Implemented for [`CognitiveArm`]; bring the trait into scope and call
/// `system.save_model(path)` / `CognitiveArm::load_model(path, seed)`.
pub trait ArmPersist: Sized {
    /// Persists the trained state (config + ensemble + normalization) as a
    /// versioned `.cogm` file.
    ///
    /// # Errors
    ///
    /// [`ModelIoError::UnsupportedMember`] for custom ensemble members;
    /// I/O failures otherwise.
    fn save_model<P: AsRef<Path>>(&self, path: P) -> Result<()>;

    /// Reassembles a system from a saved artifact for one simulated
    /// subject. The loaded system's label trace is bit-identical to the
    /// system that was saved (given the same subject seed and actions).
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input; never panics.
    fn load_model<P: AsRef<Path>>(path: P, subject_seed: u64) -> Result<Self>;
}

impl ArmPersist for CognitiveArm {
    fn save_model<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let saved = SavedModel {
            pipeline: self.config().clone(),
            ensemble: self.ensemble().clone(),
            normalization: self.normalization().cloned(),
        };
        saved.save(path)
    }

    fn load_model<P: AsRef<Path>>(path: P, subject_seed: u64) -> Result<Self> {
        Ok(SavedModel::load(path)?.into_system(subject_seed))
    }
}

/// A persisted evolutionary-search state: the configuration that drove it,
/// plus either the full **outcome** of a completed run (auditable Pareto
/// fronts), a **resumable** mid-search [`evo::SearchState`] (config +
/// pending population + accumulated history + the RNG's exact stream
/// position), or both. Saving the resume state each generation (the
/// `on_generation` hook of `EvolutionarySearch::run_from`) bounds the work
/// a crash can lose to one generation, and a resumed run is bit-identical
/// to the uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCheckpoint {
    /// The search configuration.
    pub config: EvolutionConfig,
    /// The full outcome (history, final population, front, best), present
    /// once the search has completed.
    pub outcome: Option<EvolutionOutcome>,
    /// The mid-search resume point, present while the search is running.
    pub resume: Option<evo::SearchState>,
}

impl SearchCheckpoint {
    /// A checkpoint for a completed search.
    #[must_use]
    pub fn completed(config: EvolutionConfig, outcome: EvolutionOutcome) -> Self {
        Self {
            config,
            outcome: Some(outcome),
            resume: None,
        }
    }

    /// A checkpoint for a search still in flight, resumable at `state`.
    #[must_use]
    pub fn mid_search(config: EvolutionConfig, state: evo::SearchState) -> Self {
        Self {
            config,
            outcome: None,
            resume: Some(state),
        }
    }

    /// A checkpoint must be internally consistent, not just present:
    /// `EvolutionarySearch::run_from` *panics* on a resume state whose
    /// population size or generation disagrees with the config, so both
    /// the writer and the reader reject that shape as a typed error — a
    /// loadable checkpoint is always a resumable one.
    fn validate(&self) -> Result<()> {
        ensure(
            self.outcome.is_some() || self.resume.is_some(),
            "checkpoint carries neither an outcome nor a resume state",
        )?;
        if let Some(resume) = &self.resume {
            ensure(
                resume.population.len() == self.config.population,
                "resume population size disagrees with the search config",
            )?;
            ensure(
                resume.generation < self.config.generations,
                "resume generation is past the configured generation count",
            )?;
        }
        Ok(())
    }

    /// Writes the checkpoint as a `.cogm` container
    /// (sections `ECFG` [+ `EOUT`] [+ `ERSM`]).
    ///
    /// # Errors
    ///
    /// [`ModelIoError::Malformed`] for a checkpoint that carries neither an
    /// outcome nor a resume state, or whose resume state disagrees with its
    /// config; serialization and I/O failures otherwise.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        self.validate()?;
        let mut container = Container::new();
        container.add(tags::EVO_CONFIG, &self.config)?;
        if let Some(outcome) = &self.outcome {
            container.add(tags::EVO_OUTCOME, outcome)?;
        }
        if let Some(resume) = &self.resume {
            container.add(tags::EVO_RESUME, resume)?;
        }
        container.save(path)
    }

    /// Loads a checkpoint saved by [`SearchCheckpoint::save`]. Files from
    /// before the resumable extension (sections `ECFG` + `EOUT` only) load
    /// with `resume: None`.
    ///
    /// # Errors
    ///
    /// Typed errors for every malformed input; never panics.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut lazy = crate::LazyContainer::open(path)?;
        let checkpoint = Self {
            config: lazy.get(tags::EVO_CONFIG)?,
            outcome: lazy.get_optional(tags::EVO_OUTCOME)?,
            resume: lazy.get_optional(tags::EVO_RESUME)?,
        };
        checkpoint.validate()?;
        Ok(checkpoint)
    }
}
