//! The typed error surface of the `.cogm` reader/writer.
//!
//! Readers are total: every malformed input maps to one of these variants.
//! Nothing in this crate panics on untrusted bytes, and no length field
//! read from a stream is ever trusted for an allocation.

use std::fmt;

/// Everything that can go wrong saving or loading a `.cogm` artifact.
#[derive(Debug)]
pub enum ModelIoError {
    /// An underlying I/O failure (file missing, permissions, …).
    Io(std::io::Error),
    /// The stream ended before the announced data did.
    Truncated {
        /// What was being read when the stream ran dry.
        context: &'static str,
    },
    /// The file does not start with the `COGM` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The format version is newer (or older) than this reader speaks.
    UnsupportedVersion {
        /// The version stored in the file.
        found: u16,
    },
    /// The trailing CRC32 does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes actually read.
        computed: u32,
    },
    /// A length field is implausible (would overflow or exceed the stream).
    LengthOverflow {
        /// The field whose length was rejected.
        context: &'static str,
        /// The offending length.
        len: u64,
    },
    /// An enum tag byte has no meaning in this version.
    BadTag {
        /// The enum being decoded.
        context: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A required section is absent from the container.
    MissingSection {
        /// The four-byte section tag.
        tag: [u8; 4],
    },
    /// Structurally invalid data behind a valid envelope (inconsistent
    /// dimensions, empty collections, rejected by a validating
    /// constructor, …).
    Malformed {
        /// Human-readable description of the inconsistency.
        context: String,
    },
    /// The artifact contains a `Member::Custom` classifier, which carries
    /// no kind tag and therefore cannot be serialized.
    UnsupportedMember {
        /// The member's self-reported name.
        name: String,
    },
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "i/o error: {e}"),
            ModelIoError::Truncated { context } => {
                write!(f, "truncated while reading {context}")
            }
            ModelIoError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected \"COGM\")")
            }
            ModelIoError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            ModelIoError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            ModelIoError::LengthOverflow { context, len } => {
                write!(f, "implausible length {len} for {context}")
            }
            ModelIoError::BadTag { context, tag } => {
                write!(f, "unknown tag {tag} for {context}")
            }
            ModelIoError::MissingSection { tag } => write!(
                f,
                "missing section \"{}\"",
                String::from_utf8_lossy(tag)
            ),
            ModelIoError::Malformed { context } => write!(f, "malformed artifact: {context}"),
            ModelIoError::UnsupportedMember { name } => {
                write!(f, "custom ensemble member \"{name}\" cannot be persisted")
            }
        }
    }
}

impl std::error::Error for ModelIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ModelIoError::Truncated { context: "stream" }
        } else {
            ModelIoError::Io(e)
        }
    }
}

impl ModelIoError {
    /// Shorthand for [`ModelIoError::Malformed`].
    #[must_use]
    pub fn malformed(context: impl Into<String>) -> Self {
        ModelIoError::Malformed {
            context: context.into(),
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelIoError>;
