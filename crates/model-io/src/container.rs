//! The `.cogm` container: magic, version, section table, payloads, CRC32.
//!
//! Format **v2** (what this crate writes) keeps every payload 8-byte
//! aligned so a memory-mapped file can be reinterpreted in place:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     4  magic  b"COGM"
//!      4     2  format version (little-endian u16, currently 2)
//!      6     2  section count S
//!      8  16*S  section table: S × { tag [u8;4], pad [0u8;4],
//!                                    payload length u64 (unpadded) }
//!   .            payloads in table order, each zero-padded to a
//!                multiple of 8 bytes
//!   end-4    4  CRC32 (IEEE) over every preceding byte (pads included)
//! ```
//!
//! The header is 8 bytes and every table entry 16, so the table ends on
//! an 8-byte boundary; with each payload padded to a multiple of 8, every
//! section *starts* 8-aligned. Since all wire length prefixes are `u64`,
//! `f32`/`i8` runs inside a section land at least 4-aligned — the
//! zero-copy decoders ([`crate::view`]) can borrow them straight out of a
//! page-aligned mapping.
//!
//! Format **v1** (still accepted, never written by default) is the same
//! with 12-byte table entries (no pad field) and unpadded payloads:
//!
//! ```text
//!      8  12*S  section table: S × { tag [u8;4], payload length u64 }
//!   .            payloads, concatenated without padding
//! ```
//!
//! The checksum is verified *before* any payload is parsed, so a reader
//! only ever decodes bytes the writer actually produced; parsing errors
//! past that point indicate version skew or writer bugs and still surface
//! as typed errors. Version policy: readers accept exactly the versions
//! they know how to parse ({1, 2}) and reject everything else with
//! [`ModelIoError::UnsupportedVersion`]; additive evolution (new section
//! tags) does not bump the version, layout changes do. v1 artifacts load
//! forever — [`upgrade_file_bytes`] re-encodes one as v2 in memory
//! (payload bytes are untouched, so decoding is bit-identical), and the
//! golden-fixture suite pins both formats.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use crate::crc32::crc32;
use crate::error::{ModelIoError, Result};
use crate::rw::{from_bytes, to_bytes, Persist};

/// The four magic bytes opening every artifact file.
pub const MAGIC: [u8; 4] = *b"COGM";

/// The format version this crate writes: aligned layout (see module docs).
pub const FORMAT_VERSION: u16 = 2;

/// The legacy unaligned layout; still read, written only on request
/// ([`Container::to_file_bytes_v1`]) to keep compatibility fixtures alive.
pub const FORMAT_VERSION_V1: u16 = 1;

/// Hard ceiling on sections per file (the table is tiny; anything bigger
/// is corruption).
pub(crate) const MAX_SECTIONS: usize = 256;

/// Bytes per section-table entry for a given (already validated) version.
pub(crate) fn table_entry_size(version: u16) -> usize {
    if version == FORMAT_VERSION_V1 {
        12
    } else {
        16
    }
}

/// Zero bytes appended after a `len`-byte v2 payload to reach the next
/// 8-byte boundary.
pub(crate) fn pad_after(len: u64) -> u64 {
    len.wrapping_neg() & 7
}

/// The format version claimed by a `.cogm` image, after checking the
/// magic. Accepts exactly the versions this crate can parse.
///
/// # Errors
///
/// [`ModelIoError::Truncated`] / [`ModelIoError::BadMagic`] /
/// [`ModelIoError::UnsupportedVersion`] — the same envelope triage
/// [`parse_sections`] performs, with no payload work.
pub fn image_version(buf: &[u8]) -> Result<u16> {
    if buf.len() < 8 {
        return Err(ModelIoError::Truncated { context: "header" });
    }
    let found: [u8; 4] = buf[0..4].try_into().expect("length checked");
    if found != MAGIC {
        return Err(ModelIoError::BadMagic { found });
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().expect("length checked"));
    if version != FORMAT_VERSION && version != FORMAT_VERSION_V1 {
        return Err(ModelIoError::UnsupportedVersion { found: version });
    }
    Ok(version)
}

/// An in-memory `.cogm` container: an ordered list of tagged sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Container {
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl Container {
    /// An empty container.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Serializes `value` and appends it as a section under `tag`.
    ///
    /// # Errors
    ///
    /// Propagates the value's serialization failure;
    /// [`ModelIoError::LengthOverflow`] when the section cap is hit (the
    /// writer enforces the same [`MAX_SECTIONS`] bound the reader does, so
    /// a successful save is always loadable).
    pub fn add<T: Persist>(&mut self, tag: [u8; 4], value: &T) -> Result<()> {
        if self.sections.len() >= MAX_SECTIONS {
            return Err(ModelIoError::LengthOverflow {
                context: "section count",
                len: self.sections.len() as u64 + 1,
            });
        }
        let payload = to_bytes(value)?;
        self.sections.push((tag, payload));
        Ok(())
    }

    /// The raw payload of the first section with `tag`, if present.
    #[must_use]
    pub fn section(&self, tag: [u8; 4]) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| payload.as_slice())
    }

    /// Section tags in file order.
    #[must_use]
    pub fn tags(&self) -> Vec<[u8; 4]> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }

    /// Decodes the section under `tag` as a `T`, requiring the payload to
    /// be fully consumed.
    ///
    /// # Errors
    ///
    /// [`ModelIoError::MissingSection`] when absent; the value's typed
    /// decode errors otherwise.
    pub fn get<T: Persist>(&self, tag: [u8; 4]) -> Result<T> {
        let payload = self
            .section(tag)
            .ok_or(ModelIoError::MissingSection { tag })?;
        from_bytes(payload)
    }

    /// Like [`Container::get`] but returns `None` for a missing section
    /// instead of an error (for optional sections).
    ///
    /// # Errors
    ///
    /// The value's typed decode errors when the section exists.
    pub fn get_optional<T: Persist>(&self, tag: [u8; 4]) -> Result<Option<T>> {
        match self.section(tag) {
            None => Ok(None),
            Some(payload) => from_bytes(payload).map(Some),
        }
    }

    /// Writes the container in the on-disk layout shown in the module docs.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        let bytes = self.to_file_bytes();
        w.write_all(&bytes)?;
        Ok(())
    }

    /// The complete file image, checksum included (current format, v2).
    #[must_use]
    pub fn to_file_bytes(&self) -> Vec<u8> {
        let refs: Vec<([u8; 4], &[u8])> = self
            .sections
            .iter()
            .map(|(t, p)| (*t, p.as_slice()))
            .collect();
        encode_image(FORMAT_VERSION, &refs)
    }

    /// The complete file image in the **legacy v1** layout. Exists so the
    /// compatibility fixtures (and the CI v1-artifact step) can keep
    /// producing byte-identical v1 files; new artifacts should use
    /// [`Container::to_file_bytes`].
    #[must_use]
    pub fn to_file_bytes_v1(&self) -> Vec<u8> {
        let refs: Vec<([u8; 4], &[u8])> = self
            .sections
            .iter()
            .map(|(t, p)| (*t, p.as_slice()))
            .collect();
        encode_image(FORMAT_VERSION_V1, &refs)
    }

    /// Reads a container from `r`, verifying magic, version and checksum
    /// before touching the section table.
    ///
    /// The stream is drained to its end first, so allocation is bounded by
    /// the bytes that actually exist — never by a length field.
    ///
    /// # Errors
    ///
    /// Every malformed input yields a typed [`ModelIoError`]; nothing
    /// panics.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).map_err(ModelIoError::Io)?;
        Self::from_file_bytes(&buf)
    }

    /// [`Container::read_from`] over an in-memory file image.
    ///
    /// # Errors
    ///
    /// Same as [`Container::read_from`].
    pub fn from_file_bytes(buf: &[u8]) -> Result<Self> {
        let sections = parse_sections(buf)?
            .into_iter()
            .map(|(tag, payload)| (tag, payload.to_vec()))
            .collect();
        Ok(Self { sections })
    }

    /// Writes the container to a file at `path` atomically: the bytes land
    /// in a same-directory temp file first and are renamed over the target
    /// only after a successful sync, so a crash or full disk mid-save never
    /// destroys a previously good artifact.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        save_bytes_atomically(path.as_ref(), &self.to_file_bytes())
    }

    /// [`Container::save`] in the legacy v1 layout (see
    /// [`Container::to_file_bytes_v1`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_v1<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        save_bytes_atomically(path.as_ref(), &self.to_file_bytes_v1())
    }

    /// Loads a container from a file at `path`.
    ///
    /// # Errors
    ///
    /// Same as [`Container::read_from`], plus open failures.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut file = File::open(path)?;
        Self::read_from(&mut file)
    }
}

/// Validates a complete `.cogm` file image — magic, version, checksum
/// (verified before any payload is touched), section table — and returns
/// each section's tag and payload as slices **borrowed from `buf`**,
/// copying nothing. [`Container::from_file_bytes`] copies these payloads
/// into an owned container; the zero-copy load path
/// ([`crate::view`]) decodes values straight out of them.
///
/// # Errors
///
/// Every malformed input yields a typed [`ModelIoError`]; nothing panics
/// and nothing allocates proportionally to forged lengths.
pub fn parse_sections(buf: &[u8]) -> Result<Vec<([u8; 4], &[u8])>> {
    // Envelope: magic + version + count + crc is the minimum file.
    let version = image_version(buf)?;
    if buf.len() < 12 {
        return Err(ModelIoError::Truncated { context: "checksum" });
    }
    let body = &buf[..buf.len() - 4];
    let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("length checked"));
    let computed = crc32(body);
    if stored != computed {
        return Err(ModelIoError::ChecksumMismatch { stored, computed });
    }

    let count = usize::from(u16::from_le_bytes(
        buf[6..8].try_into().expect("length checked"),
    ));
    if count > MAX_SECTIONS {
        return Err(ModelIoError::LengthOverflow {
            context: "section count",
            len: count as u64,
        });
    }
    let entry_size = table_entry_size(version);
    let table_end = 8usize
        .checked_add(
            count
                .checked_mul(entry_size)
                .ok_or(ModelIoError::LengthOverflow {
                    context: "section table",
                    len: count as u64,
                })?,
        )
        .ok_or(ModelIoError::LengthOverflow {
            context: "section table",
            len: count as u64,
        })?;
    if body.len() < table_end {
        return Err(ModelIoError::Truncated {
            context: "section table",
        });
    }
    let mut sections = Vec::with_capacity(count);
    let mut offset = table_end;
    for i in 0..count {
        let entry = &body[8 + i * entry_size..8 + (i + 1) * entry_size];
        let tag: [u8; 4] = entry[0..4].try_into().expect("length checked");
        let len = if version == FORMAT_VERSION_V1 {
            u64::from_le_bytes(entry[4..12].try_into().expect("length checked"))
        } else {
            if entry[4..8] != [0u8; 4] {
                return Err(ModelIoError::malformed(format!(
                    "nonzero reserved bytes in table entry {i}"
                )));
            }
            u64::from_le_bytes(entry[8..16].try_into().expect("length checked"))
        };
        let pad = if version == FORMAT_VERSION_V1 {
            0
        } else {
            pad_after(len)
        };
        let len = usize::try_from(len).map_err(|_| ModelIoError::LengthOverflow {
            context: "section length",
            len,
        })?;
        let end = offset.checked_add(len).ok_or(ModelIoError::LengthOverflow {
            context: "section length",
            len: len as u64,
        })?;
        let next = end
            .checked_add(pad as usize)
            .ok_or(ModelIoError::LengthOverflow {
                context: "section length",
                len: len as u64,
            })?;
        if next > body.len() {
            return Err(ModelIoError::Truncated {
                context: "section payload",
            });
        }
        if body[end..next].iter().any(|&b| b != 0) {
            return Err(ModelIoError::malformed(format!(
                "nonzero padding after section {i}"
            )));
        }
        sections.push((tag, &body[offset..end]));
        offset = next;
    }
    if offset != body.len() {
        return Err(ModelIoError::malformed(format!(
            "{} unclaimed bytes after sections",
            body.len() - offset
        )));
    }
    Ok(sections)
}

/// Encodes tagged payloads as a complete `.cogm` file image in `version`'s
/// layout (see the module docs), checksum included. Both writers and the
/// v1 → v2 upgrade funnel through here, so "same sections" always means
/// "same bytes".
pub(crate) fn encode_image(version: u16, sections: &[([u8; 4], &[u8])]) -> Vec<u8> {
    let entry_size = table_entry_size(version);
    let payload_len: usize = sections
        .iter()
        .map(|(_, p)| {
            if version == FORMAT_VERSION_V1 {
                p.len()
            } else {
                p.len() + pad_after(p.len() as u64) as usize
            }
        })
        .sum();
    let mut out = Vec::with_capacity(8 + entry_size * sections.len() + payload_len + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u16).to_le_bytes());
    for (tag, payload) in sections {
        out.extend_from_slice(tag);
        if version != FORMAT_VERSION_V1 {
            out.extend_from_slice(&[0u8; 4]);
        }
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    }
    for (_, payload) in sections {
        out.extend_from_slice(payload);
        if version != FORMAT_VERSION_V1 {
            let pad = pad_after(payload.len() as u64) as usize;
            out.extend_from_slice(&[0u8; 8][..pad]);
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Re-encodes any accepted `.cogm` image as the current format (v2). The
/// input is fully validated first; payload bytes are carried over
/// untouched, so every value decodes bit-identically to the original —
/// only the table layout and alignment padding change. A v2 input
/// round-trips to its canonical encoding (same bytes for a writer-produced
/// file).
///
/// # Errors
///
/// Same as [`parse_sections`].
pub fn upgrade_file_bytes(buf: &[u8]) -> Result<Vec<u8>> {
    let sections = parse_sections(buf)?;
    Ok(encode_image(FORMAT_VERSION, &sections))
}

/// Writes `bytes` to `path` atomically: a same-directory temp file is
/// renamed over the target only after a successful sync, so a crash or
/// full disk mid-save never destroys a previously good artifact.
fn save_bytes_atomically(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Saves one [`Persist`] value as a single-section file under `tag`.
///
/// # Errors
///
/// Propagates serialization and I/O failures.
pub fn save_section<T: Persist, P: AsRef<Path>>(path: P, tag: [u8; 4], value: &T) -> Result<()> {
    let mut container = Container::new();
    container.add(tag, value)?;
    container.save(path)
}

/// Loads one [`Persist`] value from a single-section file written by
/// [`save_section`], streaming through [`crate::LazyContainer`] so the
/// value decodes straight from disk.
///
/// # Errors
///
/// Typed errors for malformed files or a missing section.
pub fn load_section<T: Persist, P: AsRef<Path>>(path: P, tag: [u8; 4]) -> Result<T> {
    crate::LazyContainer::open(path)?.get(tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Container {
        let mut c = Container::new();
        c.add(*b"ONE ", &vec![1u32, 2, 3]).unwrap();
        c.add(*b"TWO ", &String::from("hello")).unwrap();
        c
    }

    #[test]
    fn container_round_trips() {
        let c = sample();
        let bytes = c.to_file_bytes();
        let back = Container::from_file_bytes(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.get::<Vec<u32>>(*b"ONE ").unwrap(), vec![1, 2, 3]);
        assert_eq!(back.get::<String>(*b"TWO ").unwrap(), "hello");
        assert_eq!(back.tags(), vec![*b"ONE ", *b"TWO "]);
    }

    #[test]
    fn missing_section_is_typed() {
        let c = sample();
        assert!(matches!(
            c.get::<u32>(*b"NOPE").unwrap_err(),
            ModelIoError::MissingSection { .. }
        ));
        assert_eq!(c.get_optional::<u32>(*b"NOPE").unwrap(), None);
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = sample().to_file_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Container::from_file_bytes(&bytes).unwrap_err(),
            ModelIoError::BadMagic { .. }
        ));
        let mut bytes = sample().to_file_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Container::from_file_bytes(&bytes).unwrap_err(),
            ModelIoError::UnsupportedVersion { found: 99 }
        ));
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = sample().to_file_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Container::from_file_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn every_byte_flip_errors() {
        let bytes = sample().to_file_bytes();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            assert!(
                Container::from_file_bytes(&flipped).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn v2_sections_start_8_byte_aligned() {
        // The tentpole guarantee: with an 8-aligned image base (mmap or
        // AlignedBytes), every section payload begins 8-aligned.
        let mut c = sample();
        c.add(*b"ODD ", &vec![1u8, 2, 3]).unwrap(); // 11-byte payload
        c.add(*b"MORE", &7u64).unwrap();
        let bytes = c.to_file_bytes();
        assert_eq!(
            u16::from_le_bytes(bytes[4..6].try_into().unwrap()),
            FORMAT_VERSION
        );
        let base = bytes.as_ptr() as usize;
        for (tag, payload) in parse_sections(&bytes).unwrap() {
            let offset = payload.as_ptr() as usize - base;
            assert_eq!(offset % 8, 0, "section {tag:?} starts at offset {offset}");
        }
    }

    #[test]
    fn v1_writer_output_still_loads() {
        let c = sample();
        let v1 = c.to_file_bytes_v1();
        assert_eq!(u16::from_le_bytes(v1[4..6].try_into().unwrap()), 1);
        assert!(v1.len() < c.to_file_bytes().len(), "v1 has no padding");
        let back = Container::from_file_bytes(&v1).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn upgrade_is_payload_preserving_and_canonical() {
        let c = sample();
        let v1 = c.to_file_bytes_v1();
        let upgraded = upgrade_file_bytes(&v1).unwrap();
        // Upgrading a v1 file yields exactly the bytes the v2 writer
        // produces for the same sections; a v2 file is a fixed point.
        assert_eq!(upgraded, c.to_file_bytes());
        assert_eq!(upgrade_file_bytes(&upgraded).unwrap(), upgraded);
        assert_eq!(Container::from_file_bytes(&upgraded).unwrap(), c);
        // Upgrade validates: corrupt input is refused, not re-encoded.
        let mut corrupt = v1.clone();
        let tail = corrupt.len() - 1;
        corrupt[tail] ^= 0xFF;
        assert!(upgrade_file_bytes(&corrupt).is_err());
    }

    #[test]
    fn v1_fixtures_byte_flip_and_truncation_sweeps() {
        // The hostile-input sweeps must keep holding for the legacy
        // layout as long as it is accepted.
        let bytes = sample().to_file_bytes_v1();
        for cut in 0..bytes.len() {
            assert!(
                Container::from_file_bytes(&bytes[..cut]).is_err(),
                "v1 truncation to {cut} bytes accepted"
            );
        }
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            assert!(
                Container::from_file_bytes(&flipped).is_err(),
                "v1 flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn nonzero_table_reserved_bytes_and_padding_are_rejected() {
        // Corruption is caught by the CRC; these sweeps target *forged*
        // files whose checksum was recomputed over crafted bytes.
        let bytes = sample().to_file_bytes();
        let refresh = |mut b: Vec<u8>| {
            let tail = b.len() - 4;
            let crc = crc32(&b[..tail]);
            b[tail..].copy_from_slice(&crc.to_le_bytes());
            b
        };
        // First entry's reserved bytes live at offset 8 + 4.
        let mut forged = bytes.clone();
        forged[12] = 1;
        let err = Container::from_file_bytes(&refresh(forged)).unwrap_err();
        assert!(matches!(err, ModelIoError::Malformed { .. }), "{err}");
        // First section is 20 payload bytes (8-byte len prefix + 3 × u32),
        // so its pad is 4 bytes; flip one of them.
        let sections = parse_sections(&bytes).unwrap();
        let pad_offset =
            sections[0].1.as_ptr() as usize - bytes.as_ptr() as usize + sections[0].1.len();
        assert_ne!(pad_offset % 8, 0, "sample's first section needs padding");
        let mut forged = bytes.clone();
        forged[pad_offset] = 1;
        let err = Container::from_file_bytes(&refresh(forged)).unwrap_err();
        assert!(matches!(err, ModelIoError::Malformed { .. }), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("model-io-container-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.cogm");
        sample().save(&path).unwrap();
        assert_eq!(Container::load(&path).unwrap(), sample());
        save_section(&path, *b"SOLO", &7u64).unwrap();
        assert_eq!(load_section::<u64, _>(&path, *b"SOLO").unwrap(), 7);
        std::fs::remove_file(&path).unwrap();
    }
}
