//! The `.cogm` container: magic, version, section table, payloads, CRC32.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     4  magic  b"COGM"
//!      4     2  format version (little-endian u16, currently 1)
//!      6     2  section count S
//!      8  12*S  section table: S × { tag [u8;4], payload length u64 }
//!   .            section payloads, concatenated in table order
//!   end-4    4  CRC32 (IEEE) over every preceding byte
//! ```
//!
//! The checksum is verified *before* any payload is parsed, so a reader
//! only ever decodes bytes the writer actually produced; parsing errors
//! past that point indicate version skew or writer bugs and still surface
//! as typed errors. Version policy: readers accept exactly the versions
//! they know how to parse and reject everything else with
//! [`ModelIoError::UnsupportedVersion`]; additive evolution (new section
//! tags) does not bump the version, layout changes do.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use crate::crc32::crc32;
use crate::error::{ModelIoError, Result};
use crate::rw::{from_bytes, to_bytes, Persist};

/// The four magic bytes opening every artifact file.
pub const MAGIC: [u8; 4] = *b"COGM";

/// The format version this crate writes and accepts.
pub const FORMAT_VERSION: u16 = 1;

/// Hard ceiling on sections per file (the table is tiny; anything bigger
/// is corruption).
pub(crate) const MAX_SECTIONS: usize = 256;

/// An in-memory `.cogm` container: an ordered list of tagged sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Container {
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl Container {
    /// An empty container.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Serializes `value` and appends it as a section under `tag`.
    ///
    /// # Errors
    ///
    /// Propagates the value's serialization failure;
    /// [`ModelIoError::LengthOverflow`] when the section cap is hit (the
    /// writer enforces the same [`MAX_SECTIONS`] bound the reader does, so
    /// a successful save is always loadable).
    pub fn add<T: Persist>(&mut self, tag: [u8; 4], value: &T) -> Result<()> {
        if self.sections.len() >= MAX_SECTIONS {
            return Err(ModelIoError::LengthOverflow {
                context: "section count",
                len: self.sections.len() as u64 + 1,
            });
        }
        let payload = to_bytes(value)?;
        self.sections.push((tag, payload));
        Ok(())
    }

    /// The raw payload of the first section with `tag`, if present.
    #[must_use]
    pub fn section(&self, tag: [u8; 4]) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| payload.as_slice())
    }

    /// Section tags in file order.
    #[must_use]
    pub fn tags(&self) -> Vec<[u8; 4]> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }

    /// Decodes the section under `tag` as a `T`, requiring the payload to
    /// be fully consumed.
    ///
    /// # Errors
    ///
    /// [`ModelIoError::MissingSection`] when absent; the value's typed
    /// decode errors otherwise.
    pub fn get<T: Persist>(&self, tag: [u8; 4]) -> Result<T> {
        let payload = self
            .section(tag)
            .ok_or(ModelIoError::MissingSection { tag })?;
        from_bytes(payload)
    }

    /// Like [`Container::get`] but returns `None` for a missing section
    /// instead of an error (for optional sections).
    ///
    /// # Errors
    ///
    /// The value's typed decode errors when the section exists.
    pub fn get_optional<T: Persist>(&self, tag: [u8; 4]) -> Result<Option<T>> {
        match self.section(tag) {
            None => Ok(None),
            Some(payload) => from_bytes(payload).map(Some),
        }
    }

    /// Writes the container in the on-disk layout shown in the module docs.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        let bytes = self.to_file_bytes();
        w.write_all(&bytes)?;
        Ok(())
    }

    /// The complete file image, checksum included.
    #[must_use]
    pub fn to_file_bytes(&self) -> Vec<u8> {
        let payload_len: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(8 + 12 * self.sections.len() + payload_len + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u16).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Reads a container from `r`, verifying magic, version and checksum
    /// before touching the section table.
    ///
    /// The stream is drained to its end first, so allocation is bounded by
    /// the bytes that actually exist — never by a length field.
    ///
    /// # Errors
    ///
    /// Every malformed input yields a typed [`ModelIoError`]; nothing
    /// panics.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).map_err(ModelIoError::Io)?;
        Self::from_file_bytes(&buf)
    }

    /// [`Container::read_from`] over an in-memory file image.
    ///
    /// # Errors
    ///
    /// Same as [`Container::read_from`].
    pub fn from_file_bytes(buf: &[u8]) -> Result<Self> {
        let sections = parse_sections(buf)?
            .into_iter()
            .map(|(tag, payload)| (tag, payload.to_vec()))
            .collect();
        Ok(Self { sections })
    }

    /// Writes the container to a file at `path` atomically: the bytes land
    /// in a same-directory temp file first and are renamed over the target
    /// only after a successful sync, so a crash or full disk mid-save never
    /// destroys a previously good artifact.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp-{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let result = (|| {
            let mut file = File::create(&tmp)?;
            self.write_to(&mut file)?;
            file.sync_all()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Loads a container from a file at `path`.
    ///
    /// # Errors
    ///
    /// Same as [`Container::read_from`], plus open failures.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut file = File::open(path)?;
        Self::read_from(&mut file)
    }
}

/// Validates a complete `.cogm` file image — magic, version, checksum
/// (verified before any payload is touched), section table — and returns
/// each section's tag and payload as slices **borrowed from `buf`**,
/// copying nothing. [`Container::from_file_bytes`] copies these payloads
/// into an owned container; the zero-copy load path
/// ([`crate::view`]) decodes values straight out of them.
///
/// # Errors
///
/// Every malformed input yields a typed [`ModelIoError`]; nothing panics
/// and nothing allocates proportionally to forged lengths.
pub fn parse_sections(buf: &[u8]) -> Result<Vec<([u8; 4], &[u8])>> {
    // Envelope: magic + version + count + crc is the minimum file.
    if buf.len() < 8 {
        return Err(ModelIoError::Truncated { context: "header" });
    }
    let found: [u8; 4] = buf[0..4].try_into().expect("length checked");
    if found != MAGIC {
        return Err(ModelIoError::BadMagic { found });
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().expect("length checked"));
    if version != FORMAT_VERSION {
        return Err(ModelIoError::UnsupportedVersion { found: version });
    }
    if buf.len() < 12 {
        return Err(ModelIoError::Truncated { context: "checksum" });
    }
    let body = &buf[..buf.len() - 4];
    let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("length checked"));
    let computed = crc32(body);
    if stored != computed {
        return Err(ModelIoError::ChecksumMismatch { stored, computed });
    }

    let count = usize::from(u16::from_le_bytes(
        buf[6..8].try_into().expect("length checked"),
    ));
    if count > MAX_SECTIONS {
        return Err(ModelIoError::LengthOverflow {
            context: "section count",
            len: count as u64,
        });
    }
    let table_end = 8usize
        .checked_add(count.checked_mul(12).ok_or(ModelIoError::LengthOverflow {
            context: "section table",
            len: count as u64,
        })?)
        .ok_or(ModelIoError::LengthOverflow {
            context: "section table",
            len: count as u64,
        })?;
    if body.len() < table_end {
        return Err(ModelIoError::Truncated {
            context: "section table",
        });
    }
    let mut sections = Vec::with_capacity(count);
    let mut offset = table_end;
    for i in 0..count {
        let entry = &body[8 + i * 12..8 + (i + 1) * 12];
        let tag: [u8; 4] = entry[0..4].try_into().expect("length checked");
        let len = u64::from_le_bytes(entry[4..12].try_into().expect("length checked"));
        let len = usize::try_from(len).map_err(|_| ModelIoError::LengthOverflow {
            context: "section length",
            len,
        })?;
        let end = offset.checked_add(len).ok_or(ModelIoError::LengthOverflow {
            context: "section length",
            len: len as u64,
        })?;
        if end > body.len() {
            return Err(ModelIoError::Truncated {
                context: "section payload",
            });
        }
        sections.push((tag, &body[offset..end]));
        offset = end;
    }
    if offset != body.len() {
        return Err(ModelIoError::malformed(format!(
            "{} unclaimed bytes after sections",
            body.len() - offset
        )));
    }
    Ok(sections)
}

/// Saves one [`Persist`] value as a single-section file under `tag`.
///
/// # Errors
///
/// Propagates serialization and I/O failures.
pub fn save_section<T: Persist, P: AsRef<Path>>(path: P, tag: [u8; 4], value: &T) -> Result<()> {
    let mut container = Container::new();
    container.add(tag, value)?;
    container.save(path)
}

/// Loads one [`Persist`] value from a single-section file written by
/// [`save_section`], streaming through [`crate::LazyContainer`] so the
/// value decodes straight from disk.
///
/// # Errors
///
/// Typed errors for malformed files or a missing section.
pub fn load_section<T: Persist, P: AsRef<Path>>(path: P, tag: [u8; 4]) -> Result<T> {
    crate::LazyContainer::open(path)?.get(tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Container {
        let mut c = Container::new();
        c.add(*b"ONE ", &vec![1u32, 2, 3]).unwrap();
        c.add(*b"TWO ", &String::from("hello")).unwrap();
        c
    }

    #[test]
    fn container_round_trips() {
        let c = sample();
        let bytes = c.to_file_bytes();
        let back = Container::from_file_bytes(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.get::<Vec<u32>>(*b"ONE ").unwrap(), vec![1, 2, 3]);
        assert_eq!(back.get::<String>(*b"TWO ").unwrap(), "hello");
        assert_eq!(back.tags(), vec![*b"ONE ", *b"TWO "]);
    }

    #[test]
    fn missing_section_is_typed() {
        let c = sample();
        assert!(matches!(
            c.get::<u32>(*b"NOPE").unwrap_err(),
            ModelIoError::MissingSection { .. }
        ));
        assert_eq!(c.get_optional::<u32>(*b"NOPE").unwrap(), None);
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = sample().to_file_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Container::from_file_bytes(&bytes).unwrap_err(),
            ModelIoError::BadMagic { .. }
        ));
        let mut bytes = sample().to_file_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Container::from_file_bytes(&bytes).unwrap_err(),
            ModelIoError::UnsupportedVersion { found: 99 }
        ));
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = sample().to_file_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Container::from_file_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn every_byte_flip_errors() {
        let bytes = sample().to_file_bytes();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            assert!(
                Container::from_file_bytes(&flipped).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("model-io-container-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.cogm");
        sample().save(&path).unwrap();
        assert_eq!(Container::load(&path).unwrap(), sample());
        save_section(&path, *b"SOLO", &7u64).unwrap();
        assert_eq!(load_section::<u64, _>(&path, *b"SOLO").unwrap(), 7);
        std::fs::remove_file(&path).unwrap();
    }
}
