//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! The container appends this checksum over every preceding byte, so any
//! single-byte corruption — and any burst shorter than 32 bits — is caught
//! before the section payloads are even parsed.

/// Reflected polynomial for CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32: feed chunks with [`Crc32::update`], read the digest
/// with [`Crc32::finish`]. Lets the lazy loader verify a whole artifact
/// through a fixed-size buffer instead of materializing the file.
#[derive(Debug, Clone)]
pub struct Crc32 {
    crc: u32,
}

impl Crc32 {
    /// A fresh digest.
    #[must_use]
    pub fn new() -> Self {
        Self { crc: 0xFFFF_FFFF }
    }

    /// Folds `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.crc = (self.crc >> 8) ^ TABLE[((self.crc ^ u32::from(byte)) & 0xFF) as usize];
        }
    }

    /// The final checksum.
    #[must_use]
    pub fn finish(&self) -> u32 {
        !self.crc
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes the CRC-32 of `data` in one shot.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut digest = Crc32::new();
    digest.update(data);
    digest.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_digest_matches_one_shot_for_any_chunking() {
        let data: Vec<u8> = (0..=255).cycle().take(1000).collect();
        let reference = crc32(&data);
        for chunk in [1, 3, 7, 64, 1000] {
            let mut digest = Crc32::new();
            for piece in data.chunks(chunk) {
                digest.update(piece);
            }
            assert_eq!(digest.finish(), reference, "chunk size {chunk}");
        }
    }

    #[test]
    fn single_byte_flip_changes_checksum() {
        let base = b"CognitiveArm model artifact".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 0xFF;
            assert_ne!(crc32(&flipped), reference, "flip at {i} undetected");
        }
    }
}
