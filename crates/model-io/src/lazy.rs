//! Buffered lazy section loading: open a `.cogm` file, verify its
//! checksum by **streaming** (fixed 64 KiB buffer), index the section
//! table, and decode only the sections a caller asks for — each straight
//! from a buffered reader over its byte range.
//!
//! [`crate::Container`] materializes every section in memory up front,
//! which is fine for writing (sections are assembled in memory anyway) but
//! wasteful for serving cold starts on large artifacts: a deployment that
//! only wants the ensemble still pays for every other section. A
//! [`LazyContainer`]'s peak memory is one I/O buffer plus the largest
//! *decoded* value actually requested.
//!
//! The total-reader guarantees are unchanged: checksum verified before any
//! payload is parsed, every malformed input a typed [`ModelIoError`], and
//! a section read must consume its byte range exactly.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use crate::container::{
    pad_after, table_entry_size, FORMAT_VERSION, FORMAT_VERSION_V1, MAGIC, MAX_SECTIONS,
};
use crate::crc32::Crc32;
use crate::error::{ModelIoError, Result};
use crate::rw::Persist;

/// Streaming-verification buffer size.
const VERIFY_BUF: usize = 64 * 1024;

/// One indexed section: tag, absolute payload offset, payload length.
#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    tag: [u8; 4],
    offset: u64,
    len: u64,
}

/// A `.cogm` file whose sections load on demand (see the module docs).
#[derive(Debug)]
pub struct LazyContainer {
    file: File,
    sections: Vec<SectionEntry>,
}

impl LazyContainer {
    /// Opens and verifies a `.cogm` file without materializing its
    /// payloads: header and section table are read (both bounded), offsets
    /// validated against the real file length, and the trailing CRC32
    /// checked by streaming the file through a fixed-size buffer.
    ///
    /// # Errors
    ///
    /// Every malformed input yields a typed [`ModelIoError`]; nothing
    /// panics and nothing allocates proportionally to forged lengths.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        // Envelope: magic + version + count + crc is the minimum file.
        if file_len < 8 {
            return Err(ModelIoError::Truncated { context: "header" });
        }

        let mut header = [0u8; 8];
        file.read_exact(&mut header)
            .map_err(ModelIoError::Io)?;
        let found: [u8; 4] = header[0..4].try_into().expect("length checked");
        if found != MAGIC {
            return Err(ModelIoError::BadMagic { found });
        }
        let version = u16::from_le_bytes(header[4..6].try_into().expect("length checked"));
        if version != FORMAT_VERSION && version != FORMAT_VERSION_V1 {
            return Err(ModelIoError::UnsupportedVersion { found: version });
        }
        if file_len < 12 {
            return Err(ModelIoError::Truncated { context: "checksum" });
        }
        let count = usize::from(u16::from_le_bytes(
            header[6..8].try_into().expect("length checked"),
        ));
        if count > MAX_SECTIONS {
            return Err(ModelIoError::LengthOverflow {
                context: "section count",
                len: count as u64,
            });
        }

        // The table is at most MAX_SECTIONS × 16 bytes — safe to buffer.
        let entry_size = table_entry_size(version);
        let table_len = (count * entry_size) as u64;
        let body_len = file_len - 4;
        if body_len < 8 + table_len {
            return Err(ModelIoError::Truncated {
                context: "section table",
            });
        }
        let mut table = vec![0u8; count * entry_size];
        file.read_exact(&mut table).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ModelIoError::Truncated {
                    context: "section table",
                }
            } else {
                ModelIoError::Io(e)
            }
        })?;

        let mut sections = Vec::with_capacity(count);
        let mut offset = 8 + table_len;
        for (i, entry) in table.chunks_exact(entry_size).enumerate() {
            let tag: [u8; 4] = entry[0..4].try_into().expect("length checked");
            let len = if version == FORMAT_VERSION_V1 {
                u64::from_le_bytes(entry[4..12].try_into().expect("length checked"))
            } else {
                if entry[4..8] != [0u8; 4] {
                    return Err(ModelIoError::malformed(format!(
                        "nonzero reserved bytes in table entry {i}"
                    )));
                }
                u64::from_le_bytes(entry[8..16].try_into().expect("length checked"))
            };
            let pad = if version == FORMAT_VERSION_V1 {
                0
            } else {
                pad_after(len)
            };
            let end = offset.checked_add(len).ok_or(ModelIoError::LengthOverflow {
                context: "section length",
                len,
            })?;
            let next = end.checked_add(pad).ok_or(ModelIoError::LengthOverflow {
                context: "section length",
                len,
            })?;
            if next > body_len {
                return Err(ModelIoError::Truncated {
                    context: "section payload",
                });
            }
            sections.push(SectionEntry { tag, offset, len });
            offset = next;
        }
        if offset != body_len {
            return Err(ModelIoError::malformed(format!(
                "{} unclaimed bytes after sections",
                body_len - offset
            )));
        }

        // Stream the whole body through a bounded buffer for the CRC; the
        // last four bytes are the stored checksum.
        file.seek(SeekFrom::Start(0))?;
        let mut digest = Crc32::new();
        let mut remaining = body_len;
        let mut buf = vec![0u8; VERIFY_BUF];
        while remaining > 0 {
            let take = remaining.min(VERIFY_BUF as u64) as usize;
            file.read_exact(&mut buf[..take]).map_err(ModelIoError::Io)?;
            digest.update(&buf[..take]);
            remaining -= take as u64;
        }
        let mut stored = [0u8; 4];
        file.read_exact(&mut stored).map_err(ModelIoError::Io)?;
        let stored = u32::from_le_bytes(stored);
        let computed = digest.finish();
        if stored != computed {
            return Err(ModelIoError::ChecksumMismatch { stored, computed });
        }

        Ok(Self { file, sections })
    }

    /// Section tags in file order.
    #[must_use]
    pub fn tags(&self) -> Vec<[u8; 4]> {
        self.sections.iter().map(|s| s.tag).collect()
    }

    /// The on-disk payload length of the first section with `tag`.
    #[must_use]
    pub fn section_len(&self, tag: [u8; 4]) -> Option<u64> {
        self.find(tag).map(|s| s.len)
    }

    fn find(&self, tag: [u8; 4]) -> Option<SectionEntry> {
        self.sections.iter().copied().find(|s| s.tag == tag)
    }

    /// Decodes the section under `tag` as a `T`, streaming from disk and
    /// requiring the payload to be fully consumed.
    ///
    /// # Errors
    ///
    /// [`ModelIoError::MissingSection`] when absent; the value's typed
    /// decode errors otherwise.
    pub fn get<T: Persist>(&mut self, tag: [u8; 4]) -> Result<T> {
        let entry = self.find(tag).ok_or(ModelIoError::MissingSection { tag })?;
        self.read_entry(entry)
    }

    /// Like [`LazyContainer::get`] but returns `None` for a missing
    /// section instead of an error (for optional sections).
    ///
    /// # Errors
    ///
    /// The value's typed decode errors when the section exists.
    pub fn get_optional<T: Persist>(&mut self, tag: [u8; 4]) -> Result<Option<T>> {
        match self.find(tag) {
            None => Ok(None),
            Some(entry) => self.read_entry(entry).map(Some),
        }
    }

    fn read_entry<T: Persist>(&mut self, entry: SectionEntry) -> Result<T> {
        self.file.seek(SeekFrom::Start(entry.offset))?;
        let mut reader = BufReader::new((&self.file).take(entry.len));
        let value = T::read_from(&mut reader)?;
        // Mirror `from_bytes`: a decode that leaves payload bytes behind
        // is a malformed section, not a value.
        let mut probe = [0u8; 1];
        match reader.read(&mut probe)? {
            0 => Ok(value),
            _ => Err(ModelIoError::malformed(format!(
                "trailing bytes after value in section {:?}",
                entry.tag
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::Container;

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("model-io-lazy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn sample() -> Container {
        let mut c = Container::new();
        c.add(*b"ONE ", &vec![1u32, 2, 3]).unwrap();
        c.add(*b"TWO ", &String::from("hello")).unwrap();
        c.add(*b"BIG ", &vec![0.5f32; 40_000]).unwrap();
        c
    }

    #[test]
    fn lazy_reads_match_eager_reads() {
        let path = temp_file("sample.cogm");
        sample().save(&path).unwrap();
        let mut lazy = LazyContainer::open(&path).unwrap();
        assert_eq!(lazy.tags(), sample().tags());
        assert_eq!(lazy.get::<Vec<u32>>(*b"ONE ").unwrap(), vec![1, 2, 3]);
        assert_eq!(lazy.get::<String>(*b"TWO ").unwrap(), "hello");
        assert_eq!(lazy.get::<Vec<f32>>(*b"BIG ").unwrap().len(), 40_000);
        // Repeated and out-of-order reads both work (each seeks afresh).
        assert_eq!(lazy.get::<Vec<u32>>(*b"ONE ").unwrap(), vec![1, 2, 3]);
        assert_eq!(
            lazy.section_len(*b"TWO ").unwrap(),
            8 + "hello".len() as u64
        );
    }

    #[test]
    fn missing_sections_are_typed() {
        let path = temp_file("missing.cogm");
        sample().save(&path).unwrap();
        let mut lazy = LazyContainer::open(&path).unwrap();
        assert!(matches!(
            lazy.get::<u32>(*b"NOPE").unwrap_err(),
            ModelIoError::MissingSection { .. }
        ));
        assert_eq!(lazy.get_optional::<u32>(*b"NOPE").unwrap(), None);
    }

    #[test]
    fn every_truncation_is_rejected_at_open() {
        let bytes = sample().to_file_bytes();
        let path = temp_file("trunc.cogm");
        // Sampled cuts (the eager reader sweeps every offset; here the file
        // write dominates, so probe the structure boundaries + a stride).
        let mut cuts: Vec<usize> = (0..bytes.len()).step_by(977).collect();
        cuts.extend([0, 4, 7, 8, 11, 12, 20, bytes.len() - 5, bytes.len() - 1]);
        for cut in cuts {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                LazyContainer::open(&path).is_err(),
                "truncation to {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn every_byte_flip_is_rejected_at_open() {
        let bytes = sample().to_file_bytes();
        let path = temp_file("flip.cogm");
        let mut flips: Vec<usize> = (0..bytes.len()).step_by(977).collect();
        flips.extend([0, 5, 6, 9, 15, bytes.len() - 4, bytes.len() - 1]);
        for i in flips {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            std::fs::write(&path, &corrupt).unwrap();
            assert!(
                LazyContainer::open(&path).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn partial_section_consumes_are_rejected_at_get() {
        // The checksum is fine (the writer wrote the file), so open
        // succeeds — but decoding a section as a type that consumes only a
        // prefix of its payload must be a typed error, exactly like
        // `from_bytes`' trailing-bytes rule.
        let payload = vec![0xAAu8, 0xBB, 0xCC];
        let mut c = Container::new();
        c.add(*b"RAWB", &payload).unwrap();
        let path = temp_file("trailing.cogm");
        c.save(&path).unwrap();
        let mut lazy = LazyContainer::open(&path).unwrap();
        // Full consume matches the eager reader.
        assert_eq!(lazy.get::<Vec<u8>>(*b"RAWB").unwrap(), payload);
        // The section's on-disk bytes are 8 (length prefix) + 3; a bare u64
        // consumes just the prefix and must be refused.
        assert!(matches!(
            lazy.get::<u64>(*b"RAWB").unwrap_err(),
            ModelIoError::Malformed { .. }
        ));
    }

    #[test]
    fn empty_and_garbage_files_are_typed_errors() {
        let path = temp_file("empty.cogm");
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            LazyContainer::open(&path).unwrap_err(),
            ModelIoError::Truncated { .. }
        ));
        std::fs::write(&path, b"NOPEnope").unwrap();
        assert!(matches!(
            LazyContainer::open(&path).unwrap_err(),
            ModelIoError::BadMagic { .. }
        ));
    }
}
