//! Shared scaffolding for the benchmark harness binaries.
//!
//! Every table/figure of the paper has one binary in `src/bin/` (see
//! DESIGN.md §3 for the index). They all honour the `COGARM_SCALE`
//! environment variable:
//!
//! * `quick` — seconds per harness; orderings hold, absolute numbers rough.
//! * `default` — a few minutes per harness (what CI would run).
//! * `full` — the closest to the paper's training regime; slow.
//!
//! # Bench baseline policy
//!
//! The criterion shim compares every micro-bench against a **pinned**
//! per-machine baseline under `target/cogm-bench-baselines/` and reports
//! the delta in `BENCH_<group>.json`. Pins are recorded on first run and
//! then *never* silently overwritten, so deltas measure against a fixed
//! reference. That also means pins go stale on purpose-made performance
//! changes: after an engine-generation change (new kernels, a format
//! migration, a bench rename), refresh them **once, deliberately** with
//! `COGARM_BENCH_SET_BASELINE=1 cargo bench`, in the same PR that
//! changed the performance — a delta against a pre-change pin (e.g. the
//! +244% `sequential_16` reading from the pre-plan-v2 era) is noise, not
//! signal. CI never touches pins (`COGARM_BENCH_NO_BASELINE=1`); they
//! are a local-iteration tool.
//!
//! Regression log (investigate before re-pinning — deltas have causes):
//!
//! * `inference/cold_load_lazy` drifted to +9..+16% over its pin across
//!   repeated quiet runs (never below the pin's 321 µs). Root cause:
//!   `Vec<T>` decode issued one 4-byte buffered read per element —
//!   ~16 k reads for the quick ensemble — so the lazy path paid per-read
//!   overhead proportional to parameter count. Fixed by the bulk
//!   `Persist::read_many` chunk decode (model-io); the same pin now
//!   reads ~−35%, with lazy load at parity with `cold_load_zero_copy`.
//!   Pin deliberately kept: the delta documents the win.
//! * `inference/batch_16` readings of −14%..+5% across back-to-back
//!   quiet runs bracket the pin: scheduler noise on a shared 1-core
//!   container, not a regression. Left pinned; judge it by the
//!   multi-run spread, not one delta.

use cognitive_arm::eval::{DatasetBuilder, PreparedData, TrainBudget};
use eeg::dataset::Protocol;
use evo::EvolutionConfig;

/// Benchmark effort level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per harness.
    Quick,
    /// Minutes per harness.
    Default,
    /// Paper-faithful training budgets.
    Full,
}

impl Scale {
    /// Reads `COGARM_SCALE` (quick|default|full), defaulting to `Default`.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("COGARM_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("full") => Scale::Full,
            _ => Scale::Default,
        }
    }

    /// Study size and protocol for this scale.
    #[must_use]
    pub fn protocol(self) -> (Protocol, usize) {
        match self {
            Scale::Quick => (Protocol::quick(), 2),
            Scale::Default => (
                Protocol {
                    task_secs: 8.0,
                    rest_secs: 8.0,
                    session_secs: 120.0,
                    sessions: 1,
                    transition_secs: 0.6,
                },
                3,
            ),
            Scale::Full => (Protocol::paper_default(), 5),
        }
    }

    /// Training budget for this scale.
    #[must_use]
    pub fn budget(self) -> TrainBudget {
        match self {
            Scale::Quick => TrainBudget::quick(),
            Scale::Default => TrainBudget::bench(),
            Scale::Full => TrainBudget::full(),
        }
    }

    /// Per-candidate FLOP allowance for the evolutionary search.
    #[must_use]
    pub fn flop_budget(self) -> f64 {
        match self {
            Scale::Quick => 3e9,
            Scale::Default => 2e10,
            Scale::Full => 3e11,
        }
    }

    /// Evolutionary-search shape for this scale.
    #[must_use]
    pub fn evo_config(self, seed: u64) -> EvolutionConfig {
        let (population, generations) = match self {
            Scale::Quick => (6, 3),
            Scale::Default => (8, 4),
            Scale::Full => (14, 8),
        };
        EvolutionConfig {
            population,
            generations,
            accuracy_threshold: 0.85,
            seed,
            ..EvolutionConfig::default()
        }
    }
}

/// Builds (and prints the provenance of) the prepared dataset for a scale.
///
/// # Panics
///
/// Panics if dataset generation fails (it cannot for the built-in scales).
#[must_use]
pub fn prepared_data(scale: Scale, seed: u64) -> PreparedData {
    let (protocol, subjects) = scale.protocol();
    println!(
        "# dataset: {subjects} subjects × {} session(s) × {}s, seed {seed}",
        protocol.sessions, protocol.session_secs
    );
    DatasetBuilder::new(protocol, subjects, seed)
        .build()
        .expect("dataset generation is infallible for built-in scales")
}

/// Prints a markdown-ish table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a table header with separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Mean wall-clock seconds of `f` over `iters` runs (after one warm-up).
pub fn time_mean_s(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

use cognitive_arm::eval::{fair_budget, train_genome, TrainedArtifact};
use eeg::dataset::train_val_split;
use eeg::types::LabeledWindow;
use eeg::CHANNELS;
use evo::Genome;
use ml::forest::ForestConfig;
use ml::models::{CnnConfig, LstmConfig, TransformerConfig};
use ml::optim::OptimizerKind;

/// A named trained artifact with its validation accuracy.
pub struct Trained {
    /// Human-readable configuration summary.
    pub name: String,
    /// The compiled model or fitted forest.
    pub artifact: TrainedArtifact,
    /// Validation accuracy at training time.
    pub val_acc: f64,
}

/// The four family representatives used by Figs. 11/12 and the summary.
/// At `Full` scale these are exactly the paper's winning configs (Sec. V);
/// smaller scales shrink the recurrent/attention models so the harness
/// stays minutes-fast while preserving orderings.
#[must_use]
pub fn family_genomes(scale: Scale) -> Vec<Genome> {
    let cnn = Genome::Cnn {
        config: CnnConfig::paper_best(),
        optimizer: OptimizerKind::Adam { lr: 3e-3 },
    };
    let lstm_cfg = match scale {
        Scale::Quick => LstmConfig {
            hidden: 64,
            window: 100,
            ..LstmConfig::paper_best()
        },
        Scale::Default => LstmConfig {
            hidden: 256,
            ..LstmConfig::paper_best()
        },
        Scale::Full => LstmConfig::paper_best(),
    };
    let tf_cfg = match scale {
        Scale::Quick => TransformerConfig {
            layers: 1,
            d_model: 32,
            dim_ff: 64,
            window: 100,
            ..TransformerConfig::paper_best()
        },
        Scale::Default => TransformerConfig {
            d_model: 64,
            dim_ff: 128,
            window: 130,
            ..TransformerConfig::paper_best()
        },
        Scale::Full => TransformerConfig::paper_best(),
    };
    vec![
        cnn,
        Genome::Lstm {
            config: lstm_cfg,
            optimizer: OptimizerKind::Adam { lr: 3e-3 },
        },
        Genome::Transformer {
            config: tf_cfg,
            optimizer: OptimizerKind::AdamW {
                lr: 1e-3,
                weight_decay: 1e-5,
            },
        },
        Genome::Forest {
            config: ForestConfig::paper_best(),
            window: 90,
        },
    ]
}

/// Trains one genome on `data` under the scale's fair FLOP budget.
///
/// # Panics
///
/// Panics if training fails (it cannot for the built-in genomes).
#[must_use]
pub fn train_one(data: &PreparedData, genome: &Genome, scale: Scale, seed: u64) -> Trained {
    let base = scale.budget();
    let budget = fair_budget(genome, &base, scale.flop_budget());
    let all = data
        .windows(genome.window(), base.step)
        .expect("windowing built-in genomes succeeds");
    let (train, val) = train_val_split(all, 0.2, seed ^ 0xBE);
    let (artifact, val_acc) =
        train_genome(genome, &train, &val, &budget, seed).expect("built-in genomes train");
    Trained {
        name: genome.describe(),
        artifact,
        val_acc,
    }
}

/// A common evaluation set: windows at the longest family window (190) so
/// every member can consume its own tail.
///
/// # Panics
///
/// Panics if windowing fails (it cannot for the built-in scales).
#[must_use]
pub fn common_eval_set(data: &PreparedData, cap: usize) -> Vec<LabeledWindow> {
    let mut wins = data.windows(190, 25).expect("eval windowing succeeds");
    wins.truncate(cap);
    wins
}

/// Accuracy of an arbitrary window classifier on the common eval set.
pub fn eval_accuracy(
    windows: &[LabeledWindow],
    mut classify: impl FnMut(&[f32]) -> usize,
) -> f64 {
    if windows.is_empty() {
        return 0.0;
    }
    let correct = windows
        .iter()
        .filter(|w| classify(&w.data) == w.label.label())
        .count();
    correct as f64 / windows.len() as f64
}

/// Mean single-window inference seconds for a classifier.
pub fn classifier_latency_s(
    windows: &[LabeledWindow],
    iters: usize,
    mut classify: impl FnMut(&[f32]) -> usize,
) -> f64 {
    let w = &windows[0].data;
    time_mean_s(iters, || {
        let _ = classify(w);
    })
}

/// Channel count re-exported for binaries.
pub const EEG_CHANNELS: usize = CHANNELS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_genomes_cover_all_families() {
        let genomes = family_genomes(Scale::Quick);
        let fams: Vec<String> = genomes.iter().map(|g| g.family().to_string()).collect();
        assert_eq!(fams, vec!["cnn", "lstm", "transformer", "forest"]);
    }

    #[test]
    fn scale_parses_env_values() {
        // Not setting the env var here (tests run in parallel); just check
        // the default path and the protocol mapping.
        let (p, n) = Scale::Quick.protocol();
        assert_eq!(n, 2);
        assert!(p.session_secs <= 60.0);
        let (p, n) = Scale::Full.protocol();
        assert_eq!(n, 5);
        assert_eq!(p.sessions, 3);
    }

    #[test]
    fn budgets_scale_up() {
        assert!(Scale::Full.flop_budget() > Scale::Quick.flop_budget());
        assert!(
            Scale::Full.evo_config(0).population > Scale::Quick.evo_config(0).population
        );
    }
}
