//! Sec. IV-A5 — real-world validation: 20 closed-loop sessions where the
//! simulated participant drives the arm with intentions alone. The paper
//! reports 19 of 20 sessions translating intentions successfully.

use bench::Scale;
use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, TrainBudget};
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig};
use cognitive_arm::session::{run_validation, SessionConfig};
use eeg::dataset::Protocol;

fn main() {
    let scale = Scale::from_env();
    let seed = 101;
    println!("# Real-world validation — 20 closed-loop sessions\n");

    // The participant was part of the system's calibration (paper IV-A5:
    // participants were trained users), so train on this subject's data.
    let protocol = match scale {
        Scale::Quick => Protocol::quick(),
        _ => Protocol {
            task_secs: 8.0,
            rest_secs: 8.0,
            session_secs: 120.0,
            sessions: 1,
            transition_secs: 0.6,
        },
    };
    let data = DatasetBuilder::new(protocol, 1, seed).build().expect("dataset builds");
    let budget = match scale {
        Scale::Quick => TrainBudget::quick(),
        _ => TrainBudget::bench(),
    };
    let ensemble = train_default_ensemble(&data, &budget, seed).expect("ensemble trains");
    let zscore = data.zscores[0].clone();

    let mut system = CognitiveArm::new(PipelineConfig::default(), ensemble, seed);
    system.set_normalization(zscore);

    let report = run_validation(&mut system, &SessionConfig::default()).expect("sessions run");
    println!("| session | intended | displacement | success |");
    println!("|---|---|---|---|");
    for (i, t) in report.trials.iter().enumerate() {
        println!(
            "| {} | {} | {:+.1} | {} |",
            i + 1,
            t.intended,
            t.displacement,
            if t.success { "yes" } else { "NO" }
        );
    }
    println!(
        "\nsuccesses: {}/{} (paper: 19/20)",
        report.successes(),
        report.trials.len()
    );
    let lat = system.latency();
    println!(
        "pipeline latency per label: filter {:.3} ms, inference {:.3} ms, actuation {:.3} ms (end-to-end {:.3} ms)",
        lat.filter.mean_s() * 1e3,
        lat.inference.mean_s() * 1e3,
        lat.actuation.mean_s() * 1e3,
        lat.end_to_end_s() * 1e3,
    );
}
