//! Sec. V summary — the headline numbers: best per-family configurations,
//! LOSO cross-subject accuracy (mean ± std, 91% confidence interval,
//! paired t-test vs the RF baseline), ensemble accuracy and latency, and
//! the compressed variants.

use bench::{
    classifier_latency_s, common_eval_set, eval_accuracy, family_genomes, header, prepared_data,
    row, train_one, Scale, EEG_CHANNELS,
};
use cognitive_arm::eval::{loso_accuracies, TrainedArtifact};
use ml::compress::{prune_global, quantize, QuantMode};
use ml::ensemble::{Ensemble, Voting};
use ml::metrics::{confidence_interval, mean_std, paired_t_test};

fn main() {
    let scale = Scale::from_env();
    let seed = 97;
    println!("# Sec. V summary — CognitiveArm headline results\n");
    let data = prepared_data(scale, seed);
    let eval_cap = match scale {
        Scale::Quick => 150,
        Scale::Default => 400,
        Scale::Full => 1500,
    };
    let eval_set = common_eval_set(&data, eval_cap);

    // --- LOSO cross-subject validation ---------------------------------
    println!("## Leave-one-subject-out accuracy per family\n");
    header(&["family", "per-subject accuracies", "mean ± std", "91% CI"]);
    let budget = scale.budget();
    let mut loso_by_family: Vec<(String, Vec<f64>)> = Vec::new();
    for genome in family_genomes(scale) {
        let accs = loso_accuracies(&data, &genome, &budget, seed).expect("loso runs");
        let (mean, std) = mean_std(&accs);
        let (lo, hi) = confidence_interval(&accs, 0.91);
        row(&[
            genome.family().to_string(),
            accs.iter().map(|a| format!("{a:.2}")).collect::<Vec<_>>().join(", "),
            format!("{mean:.3} ± {std:.3}"),
            format!("[{lo:.3}, {hi:.3}]"),
        ]);
        loso_by_family.push((genome.family().to_string(), accs));
    }

    // Paired t-test: best net family vs forest baseline (Sec. V-A).
    if loso_by_family.len() >= 4 {
        let cnn = &loso_by_family[0].1;
        let rf = &loso_by_family[3].1;
        if cnn.len() == rf.len() && cnn.len() >= 2 {
            let (t, df) = paired_t_test(cnn, rf);
            println!("\npaired t-test CNN vs RF across subjects: t = {t:.2}, df = {df}");
        }
    }

    // --- Ensemble + compression headline -------------------------------
    println!("\n## Deployment variants (within-study evaluation)\n");
    let genomes = family_genomes(scale);
    let cnn = train_one(&data, &genomes[0], scale, seed);
    let tf = train_one(&data, &genomes[2], scale, seed);
    let (TrainedArtifact::Net(cnn_net), TrainedArtifact::Net(tf_net)) =
        (cnn.artifact, tf.artifact)
    else {
        unreachable!("cnn/tf compile to nets")
    };

    header(&["variant", "accuracy", "inference (ms)"]);
    let report = |label: &str, a: &ml::infer::InferModel, b: &ml::infer::InferModel| {
        let e = Ensemble::new(
            vec![
                ml::ensemble::Member::Net(a.clone()),
                ml::ensemble::Member::Net(b.clone()),
            ],
            Voting::Soft,
        );
        let acc = eval_accuracy(&eval_set, |w| e.predict(w, EEG_CHANNELS));
        let lat = classifier_latency_s(&eval_set, 20, |w| e.predict(w, EEG_CHANNELS));
        row(&[label.to_owned(), format!("{acc:.3}"), format!("{:.2}", lat * 1e3)]);
        (acc, lat)
    };
    let (dense_acc, dense_lat) = report("CNN+TF ensemble (dense)", &cnn_net, &tf_net);

    let mut cp = cnn_net.clone();
    let mut tp = tf_net.clone();
    prune_global(&mut cp, 0.7);
    prune_global(&mut tp, 0.7);
    let (pr_acc, pr_lat) = report("70% pruned", &cp, &tp);

    let mut cq = cnn_net.clone();
    let mut tq = tf_net.clone();
    quantize(&mut cq, QuantMode::GlobalFaithful).expect("dense model quantizes");
    quantize(&mut tq, QuantMode::GlobalFaithful).expect("dense model quantizes");
    let (q_acc, q_lat) = report("int8 (global scale)", &cq, &tq);

    println!("\n## Paper vs measured\n");
    header(&["metric", "paper", "measured"]);
    row(&["ensemble accuracy".into(), "91%".into(), format!("{:.0}%", dense_acc * 100.0)]);
    row(&["ensemble latency".into(), "0.075 s (Jetson)".into(), format!("{:.4} s (host CPU)", dense_lat)]);
    row(&["70% pruned accuracy".into(), "90.1%".into(), format!("{:.0}%", pr_acc * 100.0)]);
    row(&["70% pruned latency".into(), "0.071 s".into(), format!("{:.4} s", pr_lat)]);
    row(&["int8 accuracy".into(), "38.5%".into(), format!("{:.0}%", q_acc * 100.0)]);
    row(&["int8 latency".into(), "0.036 s".into(), format!("{:.4} s", q_lat)]);
    println!("\nshape checks: pruned ≈ dense accuracy: {}; pruned faster than dense: {}; int8 fastest: {}; int8 least accurate: {}",
        (pr_acc - dense_acc).abs() < 0.06,
        pr_lat <= dense_lat * 1.05,
        q_lat <= pr_lat,
        q_acc < pr_acc.min(dense_acc),
    );
}
