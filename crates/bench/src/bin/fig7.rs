//! Fig. 7 — ASR model-zoo Pareto front (PCC vs inference time, marker =
//! VRAM). Expected shape: quality saturates at "small"; "large" is slower
//! for no meaningful PCC gain, so the selection rule picks small.

use asr::zoo::{measure_spec, pareto_front, select_model, whisper_family};
use bench::{header, row, Scale};

fn main() {
    let scale = Scale::from_env();
    let (noise, n_test) = match scale {
        Scale::Quick => (0.5, 24),
        Scale::Default => (0.5, 60),
        Scale::Full => (0.5, 150),
    };
    println!("# Fig. 7 — ASR family trade-off (noise {noise}, {n_test} test utterances)\n");

    let mut points = Vec::new();
    for spec in whisper_family() {
        let m = measure_spec(&spec, noise, n_test, 77).expect("zoo member trains");
        println!(
            "measured {:<7} pcc {:.3}  latency {:8.2} ms  vram {:5} MiB  params {}",
            m.name, m.pcc, m.latency_ms, m.vram_mib, m.params
        );
        points.push(m);
    }

    println!("\n## Pareto front (PCC ↑ vs latency ↓)\n");
    header(&["model", "pcc", "latency (ms)", "vram (MiB)"]);
    let front = pareto_front(&points);
    for p in &front {
        row(&[
            p.name.to_owned(),
            format!("{:.3}", p.pcc),
            format!("{:.2}", p.latency_ms),
            p.vram_mib.to_string(),
        ]);
    }
    let pick = select_model(&front, 0.05).expect("front non-empty");
    println!(
        "\nselected model (within 0.05 PCC of best, fastest): {} — the paper picks whisper-small by the same rule",
        pick.name
    );
}
