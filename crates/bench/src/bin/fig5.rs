//! Fig. 5 — raw vs filtered EEG for a single channel.
//!
//! Prints the time series (decimated) and band-power summary showing the
//! Butterworth band-pass + 50 Hz notch removing drift and line noise while
//! preserving in-band rhythms; plus the causal-vs-zero-phase ablation from
//! DESIGN.md §4.

use cognitive_arm::preprocess::{FilterSpec, OfflineChain};
use dsp::butterworth::Butterworth;
use dsp::notch::notch_filter;
use dsp::welch::welch_psd;
use eeg::signal::{SignalGenerator, SubjectParams};
use eeg::types::Action;
use eeg::SAMPLE_RATE;

fn band_report(label: &str, sig: &[f32]) {
    let psd = welch_psd(sig, SAMPLE_RATE, 512).expect("signal long enough");
    println!(
        "{label:<22} drift(<0.5Hz) {:8.3}  alpha(8-13) {:7.3}  line(49-51) {:7.3}  hf(55-62) {:7.3}",
        psd.band_power(0.0, 0.5),
        psd.band_power(8.0, 13.0),
        psd.band_power(49.0, 51.0),
        psd.band_power(55.0, 62.0),
    );
}

fn main() {
    println!("# Fig. 5 — original vs filtered EEG (channel FP1, 8 s)\n");
    let mut params = SubjectParams::sampled(5);
    params.line_amp = 6.0;
    params.drift_step = 0.08;
    let mut generator = SignalGenerator::new(params, 9);
    let chunk = generator.generate_action(Action::Idle, (8.0 * SAMPLE_RATE) as usize);
    let raw = chunk.channel(0).to_vec();

    let mut filtered_chunk = chunk.clone();
    OfflineChain::new(&FilterSpec::default())
        .expect("default spec designs")
        .apply(&mut filtered_chunk)
        .expect("recording long enough");
    let filtered = filtered_chunk.channel(0);

    println!("## Band powers (µV²)\n");
    band_report("raw", &raw);
    band_report("filtered (zero-phase)", filtered);

    // Causal ablation: the real-time loop cannot use filtfilt.
    let bp = Butterworth::bandpass(9, 0.5, 45.0, SAMPLE_RATE).expect("paper band-pass designs");
    let nt = notch_filter(50.0, 30.0, SAMPLE_RATE).expect("paper notch designs");
    let causal = nt.filter(&bp.filter(&raw));
    band_report("filtered (causal)", &causal[(SAMPLE_RATE as usize)..]);

    println!("\n## Time series (first 2 s, every 5th sample, µV)\n");
    println!("{:>6} {:>10} {:>10}", "t(s)", "raw", "filtered");
    for i in (0..(2.0 * SAMPLE_RATE) as usize).step_by(5) {
        println!(
            "{:6.3} {:10.3} {:10.3}",
            i as f64 / SAMPLE_RATE,
            raw[i],
            filtered[i]
        );
    }
    println!("\npaper shape check: line noise and drift suppressed, alpha preserved.");
}
