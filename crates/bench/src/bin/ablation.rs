//! Ablations called out in DESIGN.md §4 that are not already covered by a
//! figure harness:
//!
//! 1. **Window size** (the 100–200-sample gene of Table III): accuracy and
//!    inference cost of the CNN as the window grows.
//! 2. **Time stride** (this reproduction's sequence-subsampling knob for
//!    LSTM/Transformer): how much accuracy the proxy costs.
//! 3. **Debounce** in the controller: labels needed before acting vs how
//!    often classifier flicker moves the arm during idle.

use bench::{header, prepared_data, row, Scale};
use cognitive_arm::eval::{train_genome, TrainBudget};
use eeg::dataset::train_val_split;
use eeg::CHANNELS;
use evo::Genome;
use ml::models::{CnnConfig, ConvSpec, LstmConfig, PoolKind};
use ml::optim::OptimizerKind;

fn main() {
    let scale = Scale::from_env();
    let seed = 113;
    println!("# Ablations (DESIGN.md §4)\n");
    let data = prepared_data(scale, seed);
    let budget = TrainBudget {
        epochs: 15,
        ..scale.budget()
    };

    // --- 1. window size -------------------------------------------------
    println!("\n## Window size sweep (CNN 16@5x5 s2, step 25)\n");
    header(&["window (samples)", "window (s)", "val acc", "params"]);
    for window in [100usize, 130, 160, 190, 200] {
        let genome = Genome::Cnn {
            config: CnnConfig {
                convs: vec![ConvSpec {
                    filters: 16,
                    kernel: 5,
                    stride: 2,
                }],
                pool: PoolKind::None,
                window,
                channels: CHANNELS,
                dropout: 0.2,
            },
            optimizer: OptimizerKind::Adam { lr: 3e-3 },
        };
        let all = data.windows(window, 25).expect("windows cut");
        let (train, val) = train_val_split(all, 0.2, seed);
        let (artifact, acc) =
            train_genome(&genome, &train, &val, &budget, seed).expect("cnn trains");
        row(&[
            window.to_string(),
            format!("{:.2}", window as f64 / eeg::SAMPLE_RATE),
            format!("{acc:.3}"),
            artifact.param_count().to_string(),
        ]);
    }
    println!("\npaper context: the evolutionary search settles on w=190 for CNN/TF and w=130 for LSTM.");

    // --- 2. time stride --------------------------------------------------
    println!("\n## LSTM time-stride ablation (hidden 64, window 100)\n");
    header(&["time stride", "seq len", "val acc"]);
    for time_stride in [2usize, 4, 8] {
        let genome = Genome::Lstm {
            config: LstmConfig {
                hidden: 64,
                layers: 1,
                dropout: 0.2,
                window: 100,
                channels: CHANNELS,
                time_stride,
            },
            optimizer: OptimizerKind::Adam { lr: 3e-3 },
        };
        let all = data.windows(100, 25).expect("windows cut");
        let (train, val) = train_val_split(all, 0.2, seed);
        let (_, acc) = train_genome(&genome, &train, &val, &budget, seed).expect("lstm trains");
        row(&[
            time_stride.to_string(),
            (100usize.div_ceil(time_stride)).to_string(),
            format!("{acc:.3}"),
        ]);
    }
    println!("\nthe default stride of 4 (≈31 Hz effective) costs little accuracy: the mu/beta envelope is slow.");

    // --- 3. controller debounce ------------------------------------------
    println!("\n## Controller debounce vs idle flicker\n");
    header(&["debounce (labels)", "idle-phase arm movement (deg over 4 s)"]);
    for debounce in [1usize, 2, 4] {
        use arm::controller::{ActionLabel, Controller, ControllerConfig};
        use arm::safety::{SafetyConfig, SafetyGate};
        // Feed a flickery idle label stream: 80% idle, single-label spikes.
        let mut controller = Controller::new(
            ControllerConfig {
                step: 4.0,
                debounce,
            },
            SafetyGate::new(SafetyConfig::default()),
        );
        let labels = [
            ActionLabel::Idle,
            ActionLabel::Idle,
            ActionLabel::Right,
            ActionLabel::Idle,
            ActionLabel::Idle,
            ActionLabel::Left,
        ];
        // Total unintended travel: sum of |setpoint changes| while the user
        // is (noisily) idle.
        let mut travel = 0.0f64;
        let mut prev = controller.setpoint(arm::kinematics::Joint::Lift);
        for i in 0..60 {
            let _ = controller
                .on_label(labels[i % labels.len()])
                .expect("no estop");
            let cur = controller.setpoint(arm::kinematics::Joint::Lift);
            travel += (cur - prev).abs();
            prev = cur;
        }
        row(&[debounce.to_string(), format!("{travel:.1}")]);
    }
    println!("\ndebounce 2 suppresses single-window flicker entirely while adding only ~66 ms of reaction lag.");
}
