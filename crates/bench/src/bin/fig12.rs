//! Fig. 12 — test accuracy vs inference time under compression: pruning at
//! {0, 30, 50, 70, 90}% with sparse CSR kernels, and 8-bit quantization in
//! the paper-faithful global mode (point "A": fast but accuracy collapses)
//! plus the calibrated ablation from DESIGN.md §4.
//!
//! Expected shape: 70% pruning keeps accuracy ≈ dense while trimming
//! latency; global int8 is the fastest and the least accurate.

use bench::{
    classifier_latency_s, common_eval_set, eval_accuracy, family_genomes, header, prepared_data,
    row, train_one, Scale, EEG_CHANNELS,
};
use cognitive_arm::eval::TrainedArtifact;
use ml::compress::{measured_sparsity, prune_global, quantize, storage_bytes, QuantMode, PAPER_PRUNE_LEVELS};
use ml::ensemble::{Ensemble, Voting};
use ml::infer::InferModel;

fn nets(scale: Scale, seed: u64, data: &cognitive_arm::eval::PreparedData) -> Vec<InferModel> {
    // The winning ensemble shape: CNN + Transformer (fig. 11).
    let genomes = family_genomes(scale);
    [&genomes[0], &genomes[2]]
        .iter()
        .map(|g| {
            let t = train_one(data, g, scale, seed);
            match t.artifact {
                TrainedArtifact::Net(m) => m,
                TrainedArtifact::Forest(_) => unreachable!("cnn/tf genomes compile to nets"),
            }
        })
        .collect()
}

fn measure(
    label: &str,
    models: &[InferModel],
    eval_set: &[eeg::types::LabeledWindow],
) -> (f64, f64, usize, usize) {
    let ensemble = Ensemble::new(
        models
            .iter()
            .map(|m| ml::ensemble::Member::Net(m.clone()))
            .collect(),
        Voting::Soft,
    );
    let acc = eval_accuracy(eval_set, |w| ensemble.predict(w, EEG_CHANNELS));
    let lat = classifier_latency_s(eval_set, 20, |w| ensemble.predict(w, EEG_CHANNELS));
    let params = ensemble.param_count();
    let bytes: usize = models.iter().map(storage_bytes).sum();
    println!(
        "measured {label:<28} acc {acc:.3}  latency {:7.2} ms  params {params:>8}  weights {bytes:>9} B",
        lat * 1e3
    );
    (acc, lat, params, bytes)
}

fn main() {
    let scale = Scale::from_env();
    let seed = 71;
    println!("# Fig. 12 — compression trade-off on the CNN+Transformer ensemble\n");
    let data = prepared_data(scale, seed);
    let eval_cap = match scale {
        Scale::Quick => 120,
        Scale::Default => 300,
        Scale::Full => 1000,
    };
    let eval_set = common_eval_set(&data, eval_cap);
    let dense = nets(scale, seed, &data);

    let mut results: Vec<(String, f64, f64)> = Vec::new();

    println!("## Pruning sweep (global magnitude, CSR kernels)\n");
    for &ratio in &PAPER_PRUNE_LEVELS {
        let mut pruned = dense.clone();
        for m in &mut pruned {
            prune_global(m, ratio);
        }
        let sparsity = measured_sparsity(&pruned[0]);
        let label = format!("pruned {:.0}% (meas {:.0}%)", ratio * 100.0, sparsity * 100.0);
        let (acc, lat, _, _) = measure(&label, &pruned, &eval_set);
        results.push((label, acc, lat));
    }

    println!("\n## Quantization\n");
    let mut faithful = dense.clone();
    for m in &mut faithful {
        quantize(m, QuantMode::GlobalFaithful).expect("dense model quantizes");
    }
    let (facc, flat, _, _) = measure("int8 global (paper mode A)", &faithful, &eval_set);
    results.push(("int8 global".to_owned(), facc, flat));

    let mut calibrated = dense.clone();
    for m in &mut calibrated {
        quantize(m, QuantMode::Calibrated).expect("dense model quantizes");
    }
    let (cacc, clat, _, _) = measure("int8 calibrated (ablation)", &calibrated, &eval_set);
    results.push(("int8 calibrated".to_owned(), cacc, clat));

    println!("\n## Summary table\n");
    header(&["variant", "accuracy", "inference (ms)"]);
    for (label, acc, lat) in &results {
        row(&[label.clone(), format!("{acc:.3}"), format!("{:.2}", lat * 1e3)]);
    }

    let dense_acc = results[0].1;
    let p70 = &results[3];
    println!(
        "\npaper shape checks: 70% pruning accuracy within 3 points of dense: {} ({:.3} vs {dense_acc:.3});",
        (p70.1 - dense_acc).abs() < 0.05,
        p70.1
    );
    println!(
        "global int8 degrades far more than calibrated int8: {} ({facc:.3} vs {cacc:.3});",
        facc < cacc
    );
    println!(
        "paper reference: 70% pruned 90.1% @ 0.071 s; int8 0.036 s at 38.5% accuracy."
    );
}
