//! Fig. 8 — evolutionary-search results per family (CNN, LSTM,
//! Transformer): every candidate's (accuracy, params) across generations,
//! with the family's Pareto-optimal points marked.

use bench::{header, prepared_data, row, Scale};
use cognitive_arm::eval::EegEvaluator;
use evo::{Family, EvolutionarySearch, SearchSpace};

fn main() {
    let scale = Scale::from_env();
    let seed = 31;
    println!("# Fig. 8 — per-family evolutionary search\n");
    let data = prepared_data(scale, seed);

    for family in [Family::Cnn, Family::Lstm, Family::Transformer] {
        println!("\n## {family}\n");
        let evaluator = EegEvaluator::new(data.clone(), scale.budget(), None)
            .with_flop_budget(scale.flop_budget());
        let search = EvolutionarySearch::new(
            SearchSpace::new(family),
            scale.evo_config(seed + family as u64),
        );
        let t0 = std::time::Instant::now();
        let outcome = search.run(&evaluator);
        println!(
            "search finished in {:.1}s ({} candidates)\n",
            t0.elapsed().as_secs_f64(),
            outcome.history.len()
        );

        header(&["gen", "candidate", "val acc", "params", "pareto"]);
        for (gen, cand) in &outcome.history {
            let on_front = outcome.front.contains(cand);
            row(&[
                gen.to_string(),
                cand.genome.describe(),
                format!("{:.3}", cand.accuracy),
                cand.params.to_string(),
                if on_front { "*".into() } else { String::new() },
            ]);
        }
        println!(
            "\nbest ({family}): {} — acc {:.3}, params {}",
            outcome.best.genome.describe(),
            outcome.best.accuracy,
            outcome.best.params
        );
    }
    println!("\npaper reference points: CNN 1x[32,5x5,s2] w190; LSTM 1x512 w130; TF 2L/2H/d128/ff512 w190.");
}
