//! Table II — comparison of brain-controlled prosthetic arms.
//!
//! The literature rows are cited values reprinted verbatim; the
//! CognitiveArm row's accuracy class is *regenerated* from our LOSO
//! measurement so the table stays honest about what we reproduce.

use bench::{common_eval_set, eval_accuracy, family_genomes, header, prepared_data, row, train_one, Scale, EEG_CHANNELS};
use ml::ensemble::{Ensemble, Voting};

fn main() {
    let scale = Scale::from_env();
    let seed = 83;
    println!("# Table II — brain-controlled prosthetic arm comparison\n");

    // Measure our row.
    let data = prepared_data(scale, seed);
    let eval_set = common_eval_set(&data, 300);
    let genomes = family_genomes(scale);
    let cnn = train_one(&data, &genomes[0], scale, seed);
    let tf = train_one(&data, &genomes[2], scale, seed);
    let ensemble = Ensemble::new(
        vec![
            cnn.artifact.into_member(),
            tf.artifact.into_member(),
        ],
        Voting::Soft,
    );
    let acc = eval_accuracy(&eval_set, |w| ensemble.predict(w, EEG_CHANNELS));
    let acc_class = if acc >= 0.9 {
        "High"
    } else if acc >= 0.75 {
        "Mod."
    } else {
        "Low"
    };

    header(&["solution", "method", "acc.", "cost", "scope"]);
    let cited = [
        ("[22]", "EEG-based", "Mod.", "Low", "Limited real-time use"),
        ("[23]", "EEG-based", "Mod.", "High", "Limited real-time use"),
        ("[24]", "EEG-based", "Mod.", "High", "Power-intensive, limited use"),
        ("[25]", "EEG + sEMG", "High", "Mod.", "High resource demand"),
        ("[26]", "EEG + EoG", "80%", "Mod.", "Simple movements, user-dependent"),
        ("[27]", "EEG-based", "High", "High", "Invasive solution"),
        ("[28] MindArm", "EEG-based", "87.5%", "Low", "Affordable, modular"),
        ("[29] LIBRA NeuroLimb", "EEG + sEMG", "High", "Low", "Designed for developing regions"),
        ("BeBionic", "sEMG-based", "High", "£30k", "More grips, fine motor control"),
        ("LUKE Arm", "sEMG-based", "High", "$50k+", "Powered joints, fine motor control"),
        ("i-Limb", "sEMG-based", "High", "$40-50k", "Multi-articulating, customizable"),
        ("Michelangelo", "sEMG-based", "High", "$50k+", "Advanced control, multiple grips"),
        ("Shadow Hand", "sEMG-based", "High", "$65k+", "High dexterity, advanced robotics"),
    ];
    for (solution, method, a, cost, scope) in cited {
        row(&[
            solution.to_owned(),
            method.to_owned(),
            a.to_owned(),
            cost.to_owned(),
            scope.to_owned(),
        ]);
    }
    row(&[
        "CognitiveArm (this repro)".to_owned(),
        "EEG-based".to_owned(),
        format!("{acc_class} ({:.0}% measured)", acc * 100.0),
        "$500 (BoM, paper)".to_owned(),
        "3 DoF, efficient implementation".to_owned(),
    ]);
    println!("\nnote: literature rows are cited values from the paper; only the CognitiveArm accuracy is measured here.");
}
