//! Fig. 11 — ensemble comparison: every two-model combination of the four
//! family representatives, scored by accuracy and single-window inference
//! time. Expected shape: CNN + Transformer gives the best trade-off.
//! Includes the soft-vs-hard voting ablation from DESIGN.md §4.

use bench::{
    classifier_latency_s, common_eval_set, eval_accuracy, family_genomes, header, prepared_data,
    row, train_one, Scale, EEG_CHANNELS,
};
use ml::ensemble::{Ensemble, Voting};

fn main() {
    let scale = Scale::from_env();
    let seed = 61;
    println!("# Fig. 11 — ensemble accuracy vs inference time\n");
    let data = prepared_data(scale, seed);
    let eval_cap = match scale {
        Scale::Quick => 150,
        Scale::Default => 400,
        Scale::Full => 1500,
    };
    let eval_set = common_eval_set(&data, eval_cap);

    // Train the four family representatives once.
    let mut members = Vec::new();
    for genome in family_genomes(scale) {
        let t = train_one(&data, &genome, scale, seed);
        println!("trained {:<28} val acc {:.3}", t.name, t.val_acc);
        members.push(t);
    }

    println!("\n## Single models\n");
    header(&["model", "accuracy", "inference (ms)", "params"]);
    for t in &members {
        let acc = eval_accuracy(&eval_set, |w| t.artifact.predict(w, EEG_CHANNELS));
        let lat = classifier_latency_s(&eval_set, 20, |w| t.artifact.predict(w, EEG_CHANNELS));
        row(&[
            t.name.clone(),
            format!("{acc:.3}"),
            format!("{:.2}", lat * 1e3),
            t.artifact.param_count().to_string(),
        ]);
    }

    println!("\n## Two-model ensembles (soft voting)\n");
    header(&["ensemble", "accuracy", "inference (ms)", "params"]);
    let names: Vec<String> = members.iter().map(|t| t.name.clone()).collect();
    let mut best: Option<(f64, f64, String)> = None;
    let n = members.len();
    for i in 0..n {
        for j in (i + 1)..n {
            let ensemble = Ensemble::new(
                vec![
                    members[i].artifact.clone().into_member(),
                    members[j].artifact.clone().into_member(),
                ],
                Voting::Soft,
            );
            let acc = eval_accuracy(&eval_set, |w| ensemble.predict(w, EEG_CHANNELS));
            let lat =
                classifier_latency_s(&eval_set, 20, |w| ensemble.predict(w, EEG_CHANNELS));
            let label = format!("{} + {}", names[i], names[j]);
            row(&[
                label.clone(),
                format!("{acc:.3}"),
                format!("{:.2}", lat * 1e3),
                ensemble.param_count().to_string(),
            ]);
            let score = acc - lat * 2.0; // accuracy minus a latency penalty
            if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                best = Some((score, acc, label));
            }
        }
    }
    let (_, acc, label) = best.expect("pairs exist");
    println!("\nbest trade-off: {label} at accuracy {acc:.3}");
    println!("paper reference: CNN + Transformer ensemble, 91% accuracy at 0.075 s on Jetson Orin Nano.");

    // Voting ablation on the winning pair shape (CNN + Transformer).
    let soft = Ensemble::new(
        vec![
            members[0].artifact.clone().into_member(),
            members[2].artifact.clone().into_member(),
        ],
        Voting::Soft,
    );
    let hard = Ensemble::new(
        vec![
            members[0].artifact.clone().into_member(),
            members[2].artifact.clone().into_member(),
        ],
        Voting::Hard,
    );
    println!("\n## Voting ablation (CNN + Transformer)\n");
    header(&["voting", "accuracy"]);
    for (name, e) in [("soft", &soft), ("hard", &hard)] {
        let acc = eval_accuracy(&eval_set, |w| e.predict(w, EEG_CHANNELS));
        row(&[name.to_owned(), format!("{acc:.3}")]);
    }
}
