//! Fig. 4 — LSL vs UDP protocol comparison.
//!
//! Regenerates the radar-plot scores: latency, synchronization, sample
//! rate, reliability, bandwidth efficiency. Expected shape: LSL wins every
//! axis except bandwidth efficiency.

use bench::{header, row};
use stream::compare::compare_protocols;

fn main() {
    let seed = 42;
    let seconds = 30.0;
    println!("# Fig. 4 — LSL vs UDP on identical 16ch/125Hz traffic ({seconds} s, seed {seed})\n");
    let c = compare_protocols(seconds, seed);

    header(&[
        "protocol",
        "mean latency (ms)",
        "jitter (ms)",
        "sync RMS error (ms)",
        "effective rate (%)",
        "reliability (%)",
        "bandwidth efficiency (%)",
    ]);
    for (name, m) in [("LSL", c.lsl), ("UDP", c.udp)] {
        row(&[
            name.to_owned(),
            format!("{:.2}", m.mean_latency_ms),
            format!("{:.2}", m.jitter_ms),
            if m.sync_error_ms.is_finite() {
                format!("{:.2}", m.sync_error_ms)
            } else {
                "n/a (no timestamps)".to_owned()
            },
            format!("{:.2}", m.effective_rate_pct),
            format!("{:.2}", m.reliability_pct),
            format!("{:.2}", m.bandwidth_efficiency_pct),
        ]);
    }

    println!("\n## Radar scores (0-10, higher better; axes as in the paper's figure)\n");
    header(&["protocol", "latency", "sync", "rate", "reliability", "bandwidth"]);
    for (name, m) in [("LSL", c.lsl), ("UDP", c.udp)] {
        let s = m.radar_scores();
        row(&[
            name.to_owned(),
            format!("{:.1}", s[0]),
            format!("{:.1}", s[1]),
            format!("{:.1}", s[2]),
            format!("{:.1}", s[3]),
            format!("{:.1}", s[4]),
        ]);
    }
    let lsl = c.lsl.radar_scores();
    let udp = c.udp.radar_scores();
    let lsl_wins = lsl.iter().zip(&udp).take(4).all(|(a, b)| a >= b);
    let udp_wins_bw = udp[4] > lsl[4];
    println!(
        "\npaper shape check: LSL leads on first four axes: {lsl_wins}; UDP leads bandwidth only: {udp_wins_bw}"
    );
}
