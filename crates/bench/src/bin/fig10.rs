//! Fig. 10 — Random-Forest hyperparameter selection: the n_estimators ×
//! max_depth grid the evolutionary search explores, with validation
//! accuracy and total node counts (the paper annotates the selected model
//! "max_depth: 20, n_est: 100-200, ~72000 total nodes").

use bench::{header, prepared_data, row, Scale};
use cognitive_arm::eval::{train_genome, TrainBudget};
use eeg::dataset::train_val_split;
use evo::Genome;
use ml::forest::ForestConfig;

fn main() {
    let scale = Scale::from_env();
    let seed = 53;
    println!("# Fig. 10 — Random Forest hyperparameter grid (window 90)\n");
    let data = prepared_data(scale, seed);
    let all = data.windows(90, 25).expect("windowing succeeds");
    let (train, val) = train_val_split(all, 0.2, seed);
    let budget = TrainBudget {
        train_cap: match scale {
            Scale::Quick => 400,
            Scale::Default => 1500,
            Scale::Full => usize::MAX,
        },
        ..scale.budget()
    };

    header(&["n_estimators", "max_depth", "val acc", "total nodes"]);
    let mut best: Option<(f64, usize, String)> = None;
    for n_estimators in [100usize, 200, 300, 400, 500] {
        for max_depth in [Some(10), Some(20), Some(30), None] {
            let genome = Genome::Forest {
                config: ForestConfig {
                    n_estimators,
                    max_depth,
                    min_samples_split: 4,
                    classes: 3,
                    seed,
                },
                window: 90,
            };
            let (artifact, acc) =
                train_genome(&genome, &train, &val, &budget, seed).expect("forest fits");
            let nodes = artifact.param_count();
            let depth_str = max_depth.map_or("None".to_owned(), |d| d.to_string());
            row(&[
                n_estimators.to_string(),
                depth_str.clone(),
                format!("{acc:.3}"),
                nodes.to_string(),
            ]);
            let key = format!("{n_estimators} est, depth {depth_str}, {nodes} nodes");
            // Prefer accuracy, break ties on fewer nodes.
            if best
                .as_ref()
                .is_none_or(|(ba, bn, _)| acc > *ba || (acc == *ba && nodes < *bn))
            {
                best = Some((acc, nodes, key));
            }
        }
    }
    let (acc, _, desc) = best.expect("grid non-empty");
    println!("\nselected: {desc} at acc {acc:.3}");
    println!("paper reference: max_depth 20, n_est 100-200, ~72000 total nodes.");
}
