//! Fig. 9 — the combined Pareto front over all four families (accuracy vs
//! parameter count), including the Random Forest point "D" whose size is
//! measured in total tree nodes.

use bench::{header, prepared_data, row, Scale};
use cognitive_arm::eval::EegEvaluator;
use evo::{pareto_front, Candidate, Family, EvolutionarySearch, SearchSpace};

fn main() {
    let scale = Scale::from_env();
    let seed = 47;
    println!("# Fig. 9 — combined accuracy-vs-parameters Pareto front\n");
    let data = prepared_data(scale, seed);
    let evaluator = EegEvaluator::new(data, scale.budget(), None)
        .with_flop_budget(scale.flop_budget());

    let mut all: Vec<Candidate> = Vec::new();
    for family in [
        Family::Cnn,
        Family::Lstm,
        Family::Transformer,
        Family::Forest,
    ] {
        let mut cfg = scale.evo_config(seed + family as u64 * 13);
        // Forests are cheap; same budget finishes instantly.
        if family == Family::Forest {
            cfg.generations = cfg.generations.min(2);
        }
        let search = EvolutionarySearch::new(SearchSpace::new(family), cfg);
        let outcome = search.run(&evaluator);
        println!(
            "{family}: {} candidates, family-best acc {:.3}",
            outcome.history.len(),
            outcome.best.accuracy
        );
        all.extend(outcome.history.into_iter().map(|(_, c)| c));
    }

    let front = pareto_front(&all);
    println!("\n## Pareto front (sorted by parameter count)\n");
    header(&["family", "configuration", "val acc", "params"]);
    for c in &front {
        row(&[
            c.genome.family().to_string(),
            c.genome.describe(),
            format!("{:.3}", c.accuracy),
            c.params.to_string(),
        ]);
    }
    let families: std::collections::HashSet<String> =
        front.iter().map(|c| c.genome.family().to_string()).collect();
    println!(
        "\nfront spans families: {:?} (paper's front shows CNN models achieving high accuracy at low parameter counts)",
        families
    );
}
