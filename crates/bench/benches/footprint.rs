//! Fleet-scale memory scorecard: bytes-per-session and cold-start time
//! when many sessions share one mmap-backed [`WeightImage`].
//!
//! The tentpole claim this bench enforces: per-session memory is
//! **scratch only**. Weights live once in the shared image; admitting a
//! session clones an arena-backed ensemble (refcount bumps), so the
//! **weight** bytes allocated by 128 admissions must stay under **2× the
//! weight bytes one eager session allocates** for its private copy.
//! Session scratch (board ring buffer, filters, inference scratch) is
//! identical in both worlds and reported separately — it is per-session
//! memory by design, and the point is that it no longer scales with
//! model size.
//!
//! This is a standalone `harness = false` bench with its own **counting
//! global allocator** (total bytes requested — the honest "what did
//! admission allocate" number; freed scratch still had to be allocated).
//! Results are hand-written to `BENCH_footprint.json` (the criterion
//! shim's JSON is timing-shaped; these are byte counts), honoring
//! `COGARM_BENCH_JSON_DIR` like the shim does.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cognitive_arm::pipeline::PipelineConfig;
use ml::ensemble::{Ensemble, Member, Voting};
use ml::infer::{compile_cnn, compile_lstm, compile_transformer};
use ml::models::{CnnConfig, LstmConfig, TransformerConfig};
use model_io::{tags, LazyContainer, SavedModel, WeightImage};
use serve::{SessionManager, SessionSpec};

/// Counts every byte the process requests from the allocator.
struct CountingAllocator;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

fn bump(bytes: usize) {
    ALLOCATED.fetch_add(bytes as u64, Ordering::Relaxed);
}

fn allocated() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

// SAFETY: delegates to `System`; the counter is a lock-free atomic and
// never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump(new_size.saturating_sub(layout.size()));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// One reported metric: a byte count or a nanosecond timing.
struct Metric {
    name: String,
    value: f64,
    unit: &'static str,
}

fn record(metrics: &mut Vec<Metric>, name: impl Into<String>, value: f64, unit: &'static str) {
    let name = name.into();
    println!("footprint/{name:<28} {value:>14.0} {unit}");
    metrics.push(Metric { name, value, unit });
}

/// Where `BENCH_footprint.json` lands: `COGARM_BENCH_JSON_DIR`, else the
/// repository root (two levels above this crate's manifest).
fn json_path() -> Option<std::path::PathBuf> {
    if let Some(dir) = std::env::var_os("COGARM_BENCH_JSON_DIR") {
        let dir = std::path::PathBuf::from(dir);
        let _ = std::fs::create_dir_all(&dir);
        return Some(dir.join("BENCH_footprint.json"));
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.join("Cargo.toml")
        .exists()
        .then(|| root.join("BENCH_footprint.json"))
}

fn write_json(metrics: &[Metric]) {
    let Some(path) = json_path() else { return };
    let mut out = String::from("{\n  \"group\": \"footprint\",\n  \"results\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.1}, \"unit\": \"{}\"}}{}\n",
            m.name,
            m.value,
            m.unit,
            if i + 1 == metrics.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    let _ = std::fs::write(&path, out);
    println!("wrote {}", path.display());
}

fn main() {
    let mut metrics = Vec::new();

    // One paper-scale artifact, saved in both formats. The weights are
    // randomly initialized (`paper_best` configs, no training) — a memory
    // bench cares about realistic weight *sizes*, and training a
    // paper-scale ensemble here would dominate the runtime without
    // changing a single byte count.
    let ensemble = Ensemble::new(
        vec![
            Member::Net(compile_cnn(
                &CnnConfig::paper_best().build(21).expect("cnn builds"),
            )),
            Member::Net(compile_lstm(
                &LstmConfig::paper_best().build(22).expect("lstm builds"),
            )),
            Member::Net(compile_transformer(
                &TransformerConfig::paper_best().build(23).expect("transformer builds"),
            )),
        ],
        Voting::Soft,
    );
    let saved = SavedModel {
        pipeline: PipelineConfig::default(),
        ensemble,
        normalization: None,
    };
    let dir = std::env::temp_dir().join(format!("bench-footprint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let v2_path = dir.join("model.cogm");
    let v1_path = dir.join("model-v1.cogm");
    saved.save(&v2_path).expect("v2 artifact saves");
    saved
        .to_container()
        .expect("container builds")
        .save_v1(&v1_path)
        .expect("v1 artifact saves");

    // The denominator of every ratio below: the weight payload (the ENSM
    // section) of the artifact on disk.
    let weight_bytes = LazyContainer::open(&v2_path)
        .expect("artifact opens")
        .section_len(tags::ENSEMBLE)
        .expect("ensemble section present") as f64;
    record(&mut metrics, "weight_image_bytes", weight_bytes, "bytes");

    // Cold start: mmap + validate + decode, vs the eager zero-copy read.
    // (The inference bench's `cold_load_zero_copy` is the historical
    // reference; the acceptance bar is mmap ≤ zero-copy.)
    let time_ns = |f: &mut dyn FnMut()| {
        let reps = 20u32;
        f(); // warm the page cache / branch predictors once
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_nanos() as f64 / f64::from(reps)
    };
    let mmap_ns = time_ns(&mut || {
        let image = WeightImage::open(&v2_path).expect("image opens");
        std::hint::black_box(image.decode().expect("image decodes"));
    });
    record(&mut metrics, "cold_start_mmap_ns", mmap_ns, "ns");
    let zero_copy_ns = time_ns(&mut || {
        std::hint::black_box(SavedModel::load_zero_copy(&v2_path).expect("loads"));
    });
    record(&mut metrics, "cold_start_zero_copy_ns", zero_copy_ns, "ns");
    let upgrade_ns = time_ns(&mut || {
        let image = WeightImage::open(&v1_path).expect("v1 image opens");
        std::hint::black_box(image.decode().expect("v1 image decodes"));
    });
    record(&mut metrics, "cold_start_v1_upgrade_ns", upgrade_ns, "ns");

    // Bytes per session, split into the two things admission allocates:
    //
    //   * the **weight handoff** — acquiring a model for the session
    //     (shared path: clone the interned arena-backed model, a refcount
    //     bump; eager path: `load_zero_copy` a private copy per session);
    //   * **session scratch** — the per-subject board ring buffer, filter
    //     state, sliding window and inference scratch, which is the same
    //     in both worlds and deliberately NOT weights.
    //
    // The tentpole contract is about the first number: the weight bytes
    // allocated by 128 shared-image sessions must stay under 2× what ONE
    // eager session allocates for its weights. Scratch is reported
    // separately (and honestly — it dominates per-session memory, as
    // "per-session memory is scratch-only" demands).
    let mut eager_weights_1 = 0.0f64;
    for n in [1usize, 16, 128] {
        // Shared path: one interned image; the handoff is
        // `artifact_model(id).clone()` per session — exactly what
        // `add_session_from_artifact` does internally, split out here so
        // the allocator delta isolates the weight side.
        let mut mgr = SessionManager::with_shared_pool();
        let artifact = mgr.open_artifact(&v2_path).expect("artifact interns");
        let t0 = Instant::now();
        let before = allocated();
        let specs: Vec<SessionSpec> = {
            let model = mgr.artifact_model(artifact).expect("interned model");
            (0..n as u64)
                .map(|seed| SessionSpec::from_saved(model.clone(), seed))
                .collect()
        };
        let shared_weights = (allocated() - before) as f64;
        let before = allocated();
        for spec in specs {
            mgr.add_session(spec).expect("session admits");
        }
        let shared_scratch = (allocated() - before) as f64;
        let admit_ns = t0.elapsed().as_nanos() as f64;
        record(
            &mut metrics,
            format!("shared_weight_bytes_{n}"),
            shared_weights,
            "bytes",
        );
        record(
            &mut metrics,
            format!("shared_scratch_bytes_{n}"),
            shared_scratch,
            "bytes",
        );
        record(&mut metrics, format!("admit_{n}_ns"), admit_ns, "ns");
        drop(mgr);

        // Eager path (the old world): every session decodes its own model.
        let mut mgr = SessionManager::with_shared_pool();
        let before = allocated();
        let models: Vec<SavedModel> = (0..n)
            .map(|_| SavedModel::load_zero_copy(&v2_path).expect("loads"))
            .collect();
        let eager_weights = (allocated() - before) as f64;
        let before = allocated();
        for (seed, model) in models.into_iter().enumerate() {
            mgr.add_session(SessionSpec::from_saved(model, seed as u64))
                .expect("session admits");
        }
        let eager_scratch = (allocated() - before) as f64;
        record(
            &mut metrics,
            format!("eager_weight_bytes_{n}"),
            eager_weights,
            "bytes",
        );
        record(
            &mut metrics,
            format!("eager_scratch_bytes_{n}"),
            eager_scratch,
            "bytes",
        );

        if n == 1 {
            eager_weights_1 = eager_weights;
        }
        if n == 128 {
            let ratio = shared_weights / eager_weights_1;
            record(&mut metrics, "shared_128_vs_eager_1_weights", ratio, "x");
            // The tentpole acceptance bar: 128 sessions of one artifact
            // allocate < 2× the weight bytes of 1 (eager) session — i.e.
            // weights are demonstrably shared, not copied per session.
            assert!(
                ratio < 2.0,
                "128 shared-image sessions allocated {shared_weights} weight bytes \
                 ({ratio:.2}x one eager session's {eager_weights_1}); \
                 the shared-weight contract is broken"
            );
        }
    }

    write_json(&metrics);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "footprint acceptance: 128 shared sessions allocated fewer weight bytes \
         than 2x one eager session"
    );
}
