//! The inference engine's scorecard: single-window latency (legacy
//! allocating path vs compiled plan), batched throughput at batch
//! 1/4/16/64, the batched-vs-sequential comparison the serving
//! micro-batcher banks on, and cold-load time (lazy streaming loader vs
//! zero-copy image decode).
//!
//! `batch_16` vs `sequential_16` is the acceptance comparison.
//! `sequential_16` pins the **frozen plan-v1 engine** — 16 solo
//! per-window calls, exactly what 16 non-batched sessions paid per tick
//! when this benchmark was introduced (PR 5 measured ~1.49 ms; v1 never
//! changes, so the baseline stays comparable across history).
//! `batch_16` is one batched tick on the runtime-default engine (plan
//! v2's stacked multi-window GEMMs), so the ratio is the real delivered
//! win of batching a serving tick. `sequential_16_v2` reports the
//! within-version residual — same v2 kernels, 16 dispatches — separating
//! kernel gains from batching gains in the JSON.

use criterion::{criterion_group, criterion_main, Criterion};

use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, TrainBudget};
use eeg::dataset::Protocol;
use eeg::CHANNELS;
use ml::ensemble::EnsembleScratch;
use ml::models::CLASSES;
use model_io::SavedModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_inference(c: &mut Criterion) {
    let data = DatasetBuilder::new(Protocol::quick(), 1, 21)
        .build()
        .expect("quick dataset builds");
    let ensemble = train_default_ensemble(&data, &TrainBudget::quick(), 21)
        .expect("quick ensemble trains");
    let pool = exec::shared();
    let per_window = CHANNELS * ensemble.window();
    let mut rng = StdRng::seed_from_u64(99);
    let windows: Vec<f32> = (0..64 * per_window)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    println!(
        "ensemble: {} ({} params), window {} samples, pool {} threads",
        ensemble.name(),
        ensemble.param_count(),
        ensemble.window(),
        pool.threads()
    );

    let mut group = c.benchmark_group("inference");
    // The pre-PR5 shape: every member allocates every activation, and a
    // fresh scratch (plan compile included) per call.
    group.bench_function("single_window_legacy_alloc", |b| {
        b.iter(|| ensemble.predict_proba_with(&windows[..per_window], CHANNELS, &pool));
    });

    let mut scratch = EnsembleScratch::new(&ensemble);
    let mut out = vec![0.0f32; 64 * CLASSES];
    group.bench_function("single_window_plan", |b| {
        b.iter(|| {
            ensemble.predict_batch_into(
                &windows[..per_window],
                1,
                CHANNELS,
                &pool,
                &mut scratch,
                &mut out[..CLASSES],
            );
            out[0]
        });
    });
    // 16 windows, 16 solo dispatches through the frozen v1 per-window
    // engine — what 16 sessions paid per tick before this batch path
    // existed (see module docs: the pinned-version baseline keeps
    // `batch_16 / sequential_16` meaningful across engine generations).
    let mut v1_scratch = EnsembleScratch::with_version(&ensemble, ml::plan::PlanVersion::V1);
    group.bench_function("sequential_16", |b| {
        b.iter(|| {
            for w in 0..16 {
                ensemble.predict_batch_into(
                    &windows[w * per_window..(w + 1) * per_window],
                    1,
                    CHANNELS,
                    &pool,
                    &mut v1_scratch,
                    &mut out[..CLASSES],
                );
            }
            out[0]
        });
    });
    // The same 16 solo dispatches on the current engine: isolates what
    // batching itself buys over per-window v2 calls.
    group.bench_function("sequential_16_v2", |b| {
        b.iter(|| {
            for w in 0..16 {
                ensemble.predict_batch_into(
                    &windows[w * per_window..(w + 1) * per_window],
                    1,
                    CHANNELS,
                    &pool,
                    &mut scratch,
                    &mut out[..CLASSES],
                );
            }
            out[0]
        });
    });
    for batch in [1usize, 4, 16, 64] {
        group.bench_function(&format!("batch_{batch}"), |b| {
            b.iter(|| {
                ensemble.predict_batch_into(
                    &windows[..batch * per_window],
                    batch,
                    CHANNELS,
                    &pool,
                    &mut scratch,
                    &mut out[..batch * CLASSES],
                );
                out[0]
            });
        });
    }

    // Cold start: the lazy streaming loader vs the zero-copy image decode.
    let saved = SavedModel {
        pipeline: cognitive_arm::pipeline::PipelineConfig::default(),
        ensemble: ensemble.clone(),
        normalization: Some(data.zscores[0].clone()),
    };
    let path = std::env::temp_dir().join("bench-inference-model.cogm");
    saved.save(&path).expect("artifact saves");
    group.bench_function("cold_load_lazy", |b| {
        b.iter(|| SavedModel::load(&path).expect("loads"));
    });
    group.bench_function("cold_load_zero_copy", |b| {
        b.iter(|| SavedModel::load_zero_copy(&path).expect("loads"));
    });
    // The fleet-scale path: mmap + validate + arena-view decode (no eager
    // weight copies). Acceptance: at or under `cold_load_zero_copy`.
    group.bench_function("cold_load_mmap", |b| {
        b.iter(|| {
            model_io::WeightImage::open(&path)
                .expect("image opens")
                .decode()
                .expect("image decodes")
        });
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
