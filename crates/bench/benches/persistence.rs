//! Cold-load vs retrain: the serving-economics case for model persistence.
//!
//! A process that must *retrain* the quick CNN + Transformer ensemble pays
//! seconds of CPU before its first label; a process that *loads* a `.cogm`
//! artifact pays milliseconds of deserialization. This bench puts numbers
//! on that gap, plus the raw serialize/deserialize costs.

use criterion::{criterion_group, criterion_main, Criterion};

use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, PreparedData, TrainBudget};
use eeg::dataset::Protocol;
use ml::ensemble::Ensemble;
use model_io::{from_bytes, to_bytes, SavedModel};

fn quick_data(seed: u64) -> PreparedData {
    DatasetBuilder::new(Protocol::quick(), 1, seed)
        .build()
        .expect("quick dataset builds")
}

fn bench_persistence(c: &mut Criterion) {
    let data = quick_data(21);
    let ensemble = train_default_ensemble(&data, &TrainBudget::quick(), 21)
        .expect("quick ensemble trains");
    let saved = SavedModel {
        pipeline: cognitive_arm::pipeline::PipelineConfig::default(),
        ensemble: ensemble.clone(),
        normalization: Some(data.zscores[0].clone()),
    };
    let path = std::env::temp_dir().join("bench-model.cogm");
    saved.save(&path).expect("artifact saves");
    let bytes = to_bytes(&ensemble).expect("ensemble serializes");
    println!(
        "artifact: {} params, {} bytes on disk",
        ensemble.param_count(),
        std::fs::metadata(&path).expect("artifact exists").len()
    );

    let mut group = c.benchmark_group("persistence");
    group.bench_function("cold_load (.cogm from disk)", |b| {
        b.iter(|| SavedModel::load(&path).expect("loads"));
    });
    group.bench_function("serialize ensemble (memory)", |b| {
        b.iter(|| to_bytes(&ensemble).expect("serializes"));
    });
    group.bench_function("deserialize ensemble (memory)", |b| {
        b.iter(|| from_bytes::<Ensemble>(&bytes).expect("deserializes"));
    });
    // The alternative a persisted artifact replaces: full retraining.
    // Orders of magnitude slower than cold_load — that ratio is the point.
    group.bench_function("retrain (quick ensemble)", |b| {
        b.iter(|| {
            let data = quick_data(21);
            train_default_ensemble(&data, &TrainBudget::quick(), 21).expect("trains")
        });
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
