//! Session-churn load generator: a ≥64-session fleet under continuous
//! connect/disconnect churn and an adversarial wire, scored on the two
//! numbers a serving deployment is provisioned by — **sessions/sec**
//! (how many real-time sessions the engine sustains) and **p99 tick
//! latency** (the scheduling quantum's tail, which bounds worst-case
//! actuation lag).
//!
//! The fleet is the deployment shape: one shared trained artifact,
//! `COGARM_LOAD_SESSIONS` (default 64) micro-batched sessions plus a
//! squad of streaming sessions whose wire is adversarial (burst jitter
//! above the sample cadence, 5% loss with retransmission). Every
//! measured tick advances the whole fleet one label period; every cycle
//! also disconnects the oldest session and admits a fresh subject in its
//! place, so `COGARM_LOAD_CYCLES` (default 2000) cycles exercise
//! thousands of connect/disconnect transitions through the tombstoned
//! slot table and group recomposition. Determinism is not measured here
//! — `tests/tests/serving.rs` proves churn and the adversarial wire are
//! bit-invisible; this bench prices them.
//!
//! Standalone `harness = false` bench; results are hand-written to
//! `BENCH_serving-load.json` (sessions/sec and percentile tails are not
//! criterion-shaped), honoring `COGARM_BENCH_JSON_DIR` like the shim.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, PreparedData, TrainBudget};
use cognitive_arm::pipeline::PipelineConfig;
use eeg::dataset::Protocol;
use eeg::types::Action;
use exec::ExecPool;
use ml::ensemble::Ensemble;
use serve::{SessionManager, SessionSpec};
use stream::transport::TransportParams;

/// One scheduling quantum: 8 samples at 125 Hz — exactly one label period,
/// the smallest segment the engine serves.
const TICK_S: f64 = 0.064;
/// Streaming sessions riding the adversarial wire alongside the batch fleet.
const STREAMING: usize = 8;

/// Burst jitter far above the 8 ms sample cadence plus 5% loss with
/// retransmission: heavy reordering every tick (the same wire
/// `tests/tests/serving.rs` proves label-invisible).
fn adversarial_wire() -> TransportParams {
    TransportParams {
        base_latency: 0.004,
        jitter: 0.050,
        loss_prob: 0.05,
        retransmit: true,
        timestamps: true,
        overhead_bytes: 66,
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Metric {
    name: String,
    value: f64,
    unit: &'static str,
}

fn record(metrics: &mut Vec<Metric>, name: impl Into<String>, value: f64, unit: &'static str) {
    let name = name.into();
    println!("serving-load/{name:<24} {value:>16.1} {unit}");
    metrics.push(Metric { name, value, unit });
}

/// Where `BENCH_serving-load.json` lands: `COGARM_BENCH_JSON_DIR`, else
/// the repository root (two levels above this crate's manifest).
fn json_path() -> Option<std::path::PathBuf> {
    if let Some(dir) = std::env::var_os("COGARM_BENCH_JSON_DIR") {
        let dir = std::path::PathBuf::from(dir);
        let _ = std::fs::create_dir_all(&dir);
        return Some(dir.join("BENCH_serving-load.json"));
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.join("Cargo.toml")
        .exists()
        .then(|| root.join("BENCH_serving-load.json"))
}

fn write_json(metrics: &[Metric]) {
    let Some(path) = json_path() else { return };
    let mut out = String::from("{\n  \"group\": \"serving-load\",\n  \"results\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.1}, \"unit\": \"{}\"}}{}\n",
            m.name,
            m.value,
            m.unit,
            if i + 1 == metrics.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    let _ = std::fs::write(&path, out);
    println!("wrote {}", path.display());
}

fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 * p).ceil() as usize).max(1) - 1;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn spec(data: &PreparedData, ensemble: &Ensemble, subject: u64) -> SessionSpec {
    SessionSpec::new(PipelineConfig::default(), ensemble.clone(), subject)
        .with_normalization(data.zscores[0].clone())
        .with_action(Action::Right)
}

fn main() {
    let fleet = env_usize("COGARM_LOAD_SESSIONS", 64).max(1);
    let cycles = env_usize("COGARM_LOAD_CYCLES", 2000).max(1);
    let threads = exec::shared().threads();

    // One shared trained artifact for the whole fleet.
    let data = DatasetBuilder::new(Protocol::quick(), 1, 21)
        .build()
        .expect("quick dataset builds");
    let ensemble =
        train_default_ensemble(&data, &TrainBudget::quick(), 21).expect("quick ensemble trains");

    let mut manager = SessionManager::new(Arc::new(ExecPool::new(threads)));
    let mut roster: VecDeque<serve::SessionId> = VecDeque::new();
    let mut next_subject = 100u64;
    for _ in 0..fleet {
        roster.push_back(
            manager
                .add_session(spec(&data, &ensemble, next_subject))
                .expect("batch session admits"),
        );
        next_subject += 1;
    }
    for _ in 0..STREAMING {
        roster.push_back(
            manager
                .add_streaming_session(
                    spec(&data, &ensemble, next_subject).with_wire(adversarial_wire()),
                )
                .expect("streaming session admits"),
        );
        next_subject += 1;
    }
    let live = fleet + STREAMING;
    println!(
        "serving-load: {live} sessions ({fleet} batched + {STREAMING} adversarial-wire \
         streaming), {cycles} churn cycles, {threads} pool threads, {TICK_S} s ticks"
    );

    // Warm-up: fill every window, grow packet pools and dejitter rings,
    // spawn the pool's workers.
    manager.run_for(1.0).expect("warm-up runs");

    // The measured loop. Each cycle: one fleet tick (timed), then one
    // connect/disconnect transition (timed separately — admission cost is
    // real but must not pollute the tick tail).
    let mut tick_ns: Vec<f64> = Vec::with_capacity(cycles);
    let mut churn_ns: Vec<f64> = Vec::with_capacity(cycles);
    let mut streaming_turn = false;
    let bench_t0 = Instant::now();
    for _ in 0..cycles {
        let t0 = Instant::now();
        manager.run_for(TICK_S).expect("fleet tick runs");
        tick_ns.push(t0.elapsed().as_nanos() as f64);

        let t0 = Instant::now();
        let gone = roster.pop_front().expect("roster never empties");
        manager.remove_session(gone).expect("disconnect succeeds");
        let fresh = spec(&data, &ensemble, next_subject);
        next_subject += 1;
        let id = if streaming_turn {
            manager
                .add_streaming_session(fresh.with_wire(adversarial_wire()))
                .expect("reconnect (streaming) admits")
        } else {
            manager.add_session(fresh).expect("reconnect admits")
        };
        streaming_turn = !streaming_turn;
        roster.push_back(id);
        churn_ns.push(t0.elapsed().as_nanos() as f64);
    }
    let bench_wall = bench_t0.elapsed().as_secs_f64();
    assert_eq!(manager.len(), live, "churn leaked or lost sessions");

    // Scorecard. sessions/sec divides the session-seconds the engine
    // simulated by the wall clock of the tick loop alone: how many
    // real-time sessions this host sustains at this thread count.
    let tick_wall_s: f64 = tick_ns.iter().sum::<f64>() / 1e9;
    let sessions_per_sec = (live as f64 * TICK_S * cycles as f64) / tick_wall_s;
    tick_ns.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite ns"));
    churn_ns.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite ns"));

    let mut metrics = Vec::new();
    record(&mut metrics, "sessions", live as f64, "count");
    record(&mut metrics, "churn_cycles", cycles as f64, "count");
    record(&mut metrics, "pool_threads", threads as f64, "count");
    record(&mut metrics, "sessions_per_sec", sessions_per_sec, "1/s");
    record(&mut metrics, "tick_p50_ns", percentile(&tick_ns, 0.50), "ns");
    record(&mut metrics, "tick_p99_ns", percentile(&tick_ns, 0.99), "ns");
    record(
        &mut metrics,
        "tick_max_ns",
        tick_ns.last().copied().unwrap_or(0.0),
        "ns",
    );
    record(&mut metrics, "churn_p50_ns", percentile(&churn_ns, 0.50), "ns");
    record(&mut metrics, "churn_p99_ns", percentile(&churn_ns, 0.99), "ns");
    record(&mut metrics, "bench_wall_s", bench_wall, "s");
    write_json(&metrics);

    // Acceptance floor: the engine must at least keep the fleet real-time
    // (each session needs one simulated second per wall second), and the
    // tick tail must stay under the label period — a p99 above it means
    // actuation deadlines were missed.
    assert!(
        sessions_per_sec >= live as f64,
        "engine fell behind real time: {sessions_per_sec:.1} sessions/sec < {live} live sessions"
    );
    println!(
        "serving-load acceptance: {live} churning sessions sustained at \
         {sessions_per_sec:.0} sessions/sec"
    );
}
