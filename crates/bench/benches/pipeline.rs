//! Criterion benchmarks for the end-to-end pipeline stages: streaming
//! preprocessing, windowed ensemble classification, and the closed-loop
//! label period — the numbers behind the paper's real-time claim.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, TrainBudget};
use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig};
use cognitive_arm::preprocess::{FilterSpec, StreamingChain};
use eeg::dataset::Protocol;
use eeg::CHANNELS;

fn pipeline_stages(c: &mut Criterion) {
    let data = DatasetBuilder::new(Protocol::quick(), 1, 5)
        .build()
        .expect("dataset builds");
    let ensemble =
        train_default_ensemble(&data, &TrainBudget::quick(), 1).expect("ensemble trains");
    let window: Vec<f32> = data
        .windows(ensemble.window(), 50)
        .expect("windows cut")
        .remove(0)
        .data;

    c.bench_function("streaming_filter_one_sample_16ch", |b| {
        let mut chain = StreamingChain::new(&FilterSpec::default()).expect("designs");
        let mut s = [0.5f32; CHANNELS];
        b.iter(|| {
            chain.step(&mut s);
            black_box(s[0])
        })
    });

    c.bench_function("ensemble_classify_window", |b| {
        b.iter(|| black_box(ensemble.predict(&window, CHANNELS)))
    });

    c.bench_function("closed_loop_one_second", |b| {
        let ensemble =
            train_default_ensemble(&data, &TrainBudget::quick(), 1).expect("ensemble trains");
        let mut system = CognitiveArm::new(PipelineConfig::default(), ensemble, 5);
        system.set_normalization(data.zscores[0].clone());
        b.iter(|| black_box(system.run_for(1.0).expect("runs")))
    });
}

criterion_group!(benches, pipeline_stages);
criterion_main!(benches);
