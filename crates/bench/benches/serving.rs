//! Serving-engine throughput: a fleet of concurrent sessions multiplexed
//! over one persistent-worker pool, timed at 1/2/4/8 worker threads.
//!
//! Two shapes are measured — the batch loop (`SessionManager::add_session`)
//! and the two-stage streaming pipeline (`add_streaming_session`) — plus an
//! explicit **sessions/sec** figure per thread count: how many simulated
//! session-seconds the engine advances per wall-clock second, divided by
//! the segment length. Outputs are bit-identical at every thread count
//! (enforced by `tests/tests/serving.rs`); only the wall-clock should move.
//! (A 1-core container shows flat numbers; scaling materializes on
//! multi-core serving hosts.)

use std::sync::Arc;
use std::time::Instant;

use cognitive_arm::eval::{train_default_ensemble, DatasetBuilder, PreparedData, TrainBudget};
use cognitive_arm::pipeline::PipelineConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use eeg::dataset::Protocol;
use eeg::types::Action;
use exec::ExecPool;
use ml::ensemble::Ensemble;
use serve::{SessionManager, SessionSpec};

const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Fleet size: the acceptance bar is ≥ 8 concurrent sessions.
const SESSIONS: u64 = 8;
/// Simulated seconds advanced per measured segment.
const SEGMENT_S: f64 = 0.5;

/// One shared trained artifact for the whole fleet (the deployment shape).
fn artifacts() -> (PreparedData, Ensemble) {
    let data = DatasetBuilder::new(Protocol::quick(), 1, 21)
        .build()
        .expect("quick dataset builds");
    let ensemble =
        train_default_ensemble(&data, &TrainBudget::quick(), 21).expect("quick ensemble trains");
    (data, ensemble)
}

fn fleet(
    threads: usize,
    streaming: bool,
    data: &PreparedData,
    ensemble: &Ensemble,
) -> SessionManager {
    let mut manager = SessionManager::new(Arc::new(ExecPool::new(threads)));
    for subject in 0..SESSIONS {
        let spec = SessionSpec::new(PipelineConfig::default(), ensemble.clone(), 21 + subject)
            .with_normalization(data.zscores[0].clone())
            .with_action(Action::Right);
        if streaming {
            manager
                .add_streaming_session(spec)
                .expect("admit streaming session");
        } else {
            manager.add_session(spec).expect("admit session");
        }
    }
    manager
}

fn batch_serving(c: &mut Criterion) {
    let (data, ensemble) = artifacts();
    let mut group = c.benchmark_group(&format!("serving_batch_{SESSIONS}_sessions"));
    for threads in THREADS {
        let mut manager = fleet(threads, false, &data, &ensemble);
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| manager.run_for(SEGMENT_S).expect("segment runs"))
        });
    }
    group.finish();
}

fn streaming_serving(c: &mut Criterion) {
    let (data, ensemble) = artifacts();
    let mut group = c.benchmark_group(&format!("serving_streaming_{SESSIONS}_sessions"));
    for threads in THREADS {
        let mut manager = fleet(threads, true, &data, &ensemble);
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| manager.run_for(SEGMENT_S).expect("segment runs"))
        });
    }
    group.finish();
}

/// The headline figure: sessions/sec per thread count — how many sessions
/// the engine sustains in real time (each session needs 1 simulated second
/// per wall second to keep up with its headset).
fn sessions_per_sec(_c: &mut Criterion) {
    let (data, ensemble) = artifacts();
    println!("sessions/sec ({SESSIONS} streaming sessions, 1.0 s segments):");
    for threads in THREADS {
        let mut manager = fleet(threads, true, &data, &ensemble);
        // Warm-up: fill windows and spawn pool workers.
        manager.run_for(1.0).expect("warm-up runs");
        let t0 = Instant::now();
        manager.run_for(1.0).expect("measured segment runs");
        let wall = t0.elapsed().as_secs_f64();
        let rate = SESSIONS as f64 / wall;
        println!("  threads_{threads}: {rate:.1} sessions/sec ({wall:.3} s wall for {SESSIONS} session-seconds)");
    }
}

criterion_group!(serving, batch_serving, streaming_serving, sessions_per_sec);
criterion_main!(serving);
