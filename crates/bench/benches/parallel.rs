//! Scaling benchmarks for the deterministic execution substrate: each of
//! the three parallel hot paths — per-channel zero-phase filtering,
//! per-tree forest training (plus batched inference), and per-genome
//! evolutionary evaluation — timed at 1/2/4/8 worker threads, so the
//! speedup is measured rather than asserted. Outputs are bit-identical at
//! every thread count (enforced by `tests/tests/determinism.rs`); only the
//! wall-clock should move.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use cognitive_arm::preprocess::{FilterSpec, OfflineChain};
use eeg::signal::{SignalGenerator, SubjectParams};
use eeg::types::Action;
use evo::{
    EvalResult, Evaluator, EvolutionConfig, EvolutionarySearch, Family, Genome, SearchSpace,
};
use exec::{split_seed, ExecPool};
use ml::forest::{ForestConfig, RandomForest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn offline_filtering(c: &mut Criterion) {
    // 16 channels × 4000 samples (32 s of EEG), the dataset-prep shape.
    let mut g = SignalGenerator::new(SubjectParams::sampled(1), 3);
    let chunk = g.generate_action(Action::Idle, 4000);
    let mut group = c.benchmark_group("offline_filtfilt_16ch_4000");
    for threads in THREADS {
        let chain = OfflineChain::with_pool(&FilterSpec::default(), Arc::new(ExecPool::new(threads)))
            .expect("designs");
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter_batched(
                || chunk.clone(),
                |mut ch| {
                    chain.apply(&mut ch).expect("filters");
                    ch.data[0]
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Separable toy rows shared by the forest benches.
fn toy(n: usize, features: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let label = match (row[0] > 0.0, row[1] > 0.0) {
            (true, true) => 0,
            (false, true) => 1,
            _ => 2,
        };
        xs.push(row);
        ys.push(label);
    }
    (xs, ys)
}

fn forest_training(c: &mut Criterion) {
    let (xs, ys) = toy(400, 20, 11);
    let config = ForestConfig {
        n_estimators: 64,
        max_depth: Some(10),
        min_samples_split: 4,
        classes: 3,
        seed: 0,
    };
    let mut group = c.benchmark_group("forest_fit_64trees_400rows");
    for threads in THREADS {
        let pool = ExecPool::new(threads);
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| black_box(RandomForest::fit_with(config, &xs, &ys, &pool).expect("fits")))
        });
    }
    group.finish();

    let forest = RandomForest::fit_with(config, &xs, &ys, &ExecPool::sequential()).expect("fits");
    let mut group = c.benchmark_group("forest_predict_batch_400rows");
    for threads in THREADS {
        let pool = ExecPool::new(threads);
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| black_box(forest.predict_batch(&xs, &pool)))
        });
    }
    group.finish();
}

/// A deterministic fitness proxy with a tunable compute cost, standing in
/// for candidate training (the real [`cognitive_arm::eval::EegEvaluator`]
/// takes minutes per generation — far past a bench budget).
struct SpinEvaluator {
    spins: u64,
}

impl Evaluator for SpinEvaluator {
    fn evaluate(&self, genome: &Genome, seed: u64) -> EvalResult {
        let h = match genome {
            Genome::Lstm { config, .. } => config.hidden as u64,
            _ => 1,
        };
        let mut state = split_seed(seed, h);
        for _ in 0..self.spins {
            state = split_seed(state, 1);
        }
        EvalResult {
            accuracy: (state % 1000) as f64 / 1000.0,
            params: (state % 100_000) as usize + 1,
        }
    }
}

fn evo_search(c: &mut Criterion) {
    let config = EvolutionConfig {
        population: 16,
        generations: 3,
        seed: 7,
        ..EvolutionConfig::default()
    };
    let mut group = c.benchmark_group("evo_search_pop16_gen3");
    for threads in THREADS {
        let search = EvolutionarySearch::new(SearchSpace::new(Family::Lstm), config)
            .with_pool(Arc::new(ExecPool::new(threads)));
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| black_box(search.run(&SpinEvaluator { spins: 200_000 })))
        });
    }
    group.finish();
}

criterion_group!(benches, offline_filtering, forest_training, evo_search);
criterion_main!(benches);
