//! The streaming filter engine under serving-shaped load.
//!
//! PR 10's claim is that compiling per-channel causal chains into the
//! channel-interleaved [`FilterBank`] buys real per-tick time, not just a
//! prettier inner loop. This bench prices one scheduling quantum (8
//! samples — one label period at 125 Hz) three ways:
//!
//! * `filters_streaming` — a single session's tick at 8 and 64 channels:
//!   the scalar per-channel `StreamingFilter` pair the bank replaced,
//!   the bank's scalar body, and the bank's compiled (SIMD) body.
//! * `filters_fleet` — the deployment shape: 64 sessions × 16 channels,
//!   every session advanced one tick, scalar chains vs compiled banks.
//!
//! On AVX2 hosts the compiled bank must be **measurably** faster — the
//! group asserts `bank ≤ 0.6 × scalar` at 8+ channels, so a regression
//! that erases the win fails the bench run instead of merely recording
//! it. Scalar-only hosts (or `COGARM_NO_SIMD=1`) still run everything
//! and skip the ratio assertion: there is no vector body to defend.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dsp::biquad::StreamingFilter;
use dsp::butterworth::Butterworth;
use dsp::filterbank::FilterBank;
use dsp::notch::notch_filter;

/// One label period at 125 Hz: 8 samples per scheduling tick.
const TICK_FRAMES: usize = 8;
/// The deployment fleet shape (matches `serving_load`'s default).
const FLEET_SESSIONS: usize = 64;
/// EEG montage width per session.
const FLEET_CHANNELS: usize = 16;

/// The paper's causal cascade: 9th-order band-pass + 50 Hz notch.
fn stages() -> (dsp::biquad::SosFilter, dsp::biquad::SosFilter) {
    let bp = Butterworth::bandpass(9, 0.5, 45.0, 125.0).expect("bandpass designs");
    let nt = notch_filter(50.0, 30.0, 125.0).expect("notch designs");
    (bp, nt)
}

/// A deterministic interleaved signal block: `frames` frames of
/// `channels` samples, amplitude-varied so no lane settles to zero.
fn signal(frames: usize, channels: usize) -> Vec<f32> {
    (0..frames * channels)
        .map(|i| ((i as f32) * 0.173).sin() * 30.0 + ((i as f32) * 0.0411).cos() * 5.0)
        .collect()
}

/// Advances `channels` scalar chain pairs through one tick of `input`.
fn scalar_tick(
    bp: &mut [StreamingFilter],
    nt: &mut [StreamingFilter],
    input: &[f32],
    out: &mut [f32],
) {
    let channels = bp.len();
    for (i, (&x, y)) in input.iter().zip(out.iter_mut()).enumerate() {
        let ch = i % channels;
        *y = nt[ch].step(bp[ch].step(x));
    }
}

fn streaming_tick(c: &mut Criterion) {
    let (bp, nt) = stages();
    let mut g = c.benchmark_group("filters_streaming");
    for channels in [8usize, 64] {
        let input = signal(TICK_FRAMES, channels);

        let mut scalar_bp: Vec<StreamingFilter> = (0..channels)
            .map(|_| StreamingFilter::new(bp.clone()))
            .collect();
        let mut scalar_nt: Vec<StreamingFilter> = (0..channels)
            .map(|_| StreamingFilter::new(nt.clone()))
            .collect();
        let mut out = vec![0.0f32; input.len()];
        g.bench_function(&format!("scalar_chains_{channels}ch"), |b| {
            b.iter(|| {
                scalar_tick(&mut scalar_bp, &mut scalar_nt, &input, &mut out);
                black_box(out[0])
            })
        });

        let mut bank_scalar = FilterBank::with_simd(channels, &[&bp, &nt], false);
        let mut buf = input.clone();
        g.bench_function(&format!("bank_scalar_{channels}ch"), |b| {
            b.iter(|| {
                buf.copy_from_slice(&input);
                bank_scalar.process_frames(&mut buf);
                black_box(buf[0])
            })
        });

        let mut bank = FilterBank::new(channels, &[&bp, &nt]);
        g.bench_function(&format!("bank_{channels}ch"), |b| {
            b.iter(|| {
                buf.copy_from_slice(&input);
                bank.process_frames(&mut buf);
                black_box(buf[0])
            })
        });
    }

    // The perf bar, asserted in-bench on hosts where the vector body is
    // live: the compiled bank must come in at ≤ 0.6× the scalar chains
    // it replaced, already at 8 channels (2 AVX2 lane blocks).
    if dsp::simd::enabled() {
        for channels in [8usize, 64] {
            let scalar = g
                .mean_ns(&format!("scalar_chains_{channels}ch"))
                .expect("scalar measured");
            let bank = g
                .mean_ns(&format!("bank_{channels}ch"))
                .expect("bank measured");
            assert!(
                bank <= 0.6 * scalar,
                "{channels}ch: compiled bank {bank:.0} ns/tick not ≤ 0.6× scalar \
                 chains {scalar:.0} ns/tick — the vectorized engine lost its win"
            );
            println!(
                "filters_streaming/{channels}ch: bank {:.2}x scalar ({bank:.0} vs {scalar:.0} ns/tick)",
                bank / scalar
            );
        }
    } else {
        println!("filters_streaming: SIMD off (host or COGARM_NO_SIMD); ratio bar skipped");
    }
    g.finish();
}

fn fleet_tick(c: &mut Criterion) {
    let (bp, nt) = stages();
    let input = signal(TICK_FRAMES, FLEET_CHANNELS);
    let mut g = c.benchmark_group("filters_fleet");

    let mut scalar_bp: Vec<Vec<StreamingFilter>> = (0..FLEET_SESSIONS)
        .map(|_| {
            (0..FLEET_CHANNELS)
                .map(|_| StreamingFilter::new(bp.clone()))
                .collect()
        })
        .collect();
    let mut scalar_nt: Vec<Vec<StreamingFilter>> = (0..FLEET_SESSIONS)
        .map(|_| {
            (0..FLEET_CHANNELS)
                .map(|_| StreamingFilter::new(nt.clone()))
                .collect()
        })
        .collect();
    let mut out = vec![0.0f32; input.len()];
    g.bench_function("scalar_chains_64x16ch", |b| {
        b.iter(|| {
            for s in 0..FLEET_SESSIONS {
                scalar_tick(&mut scalar_bp[s], &mut scalar_nt[s], &input, &mut out);
            }
            black_box(out[0])
        })
    });

    let mut banks: Vec<FilterBank> = (0..FLEET_SESSIONS)
        .map(|_| FilterBank::new(FLEET_CHANNELS, &[&bp, &nt]))
        .collect();
    let mut buf = input.clone();
    g.bench_function("bank_64x16ch", |b| {
        b.iter(|| {
            for bank in &mut banks {
                buf.copy_from_slice(&input);
                bank.process_frames(&mut buf);
            }
            black_box(buf[0])
        })
    });

    if dsp::simd::enabled() {
        let scalar = g.mean_ns("scalar_chains_64x16ch").expect("scalar measured");
        let bank = g.mean_ns("bank_64x16ch").expect("bank measured");
        assert!(
            bank <= 0.6 * scalar,
            "fleet: compiled banks {bank:.0} ns/tick not ≤ 0.6× scalar chains \
             {scalar:.0} ns/tick — the vectorized engine lost its win at fleet scale"
        );
        println!(
            "filters_fleet: bank {:.2}x scalar ({bank:.0} vs {scalar:.0} ns/tick)",
            bank / scalar
        );
    }
    g.finish();
}

criterion_group!(benches, streaming_tick, fleet_tick);
criterion_main!(benches);
