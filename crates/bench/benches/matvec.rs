//! Criterion micro-benchmarks for the three weight-matrix representations
//! at the paper's 512×512 layer shape: dense f32 vs CSR at 70% sparsity vs
//! int8 (the mechanism behind Fig. 12's latency story). Split into its own
//! bench target so CI can run and archive `BENCH_matvec-512.json` without
//! paying for the filter/FFT/forward-pass groups.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ml::infer::{ExecScratch, MatRep, QuantMatrix};
use ml::sparse::CsrMatrix;
use ml::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::uniform(shape, 1.0, &mut rng)
}

/// Sweeps sparse-vs-dense execution across density at the 512×512 layer
/// shape, through the `MatRep` dispatch serving actually runs (compiled
/// execution formats, not the storage kernels). `BENCH_matvec-density.json`
/// is the empirical source for `ml::compress::CSR_MAX_DENSITY` — the
/// density up to which the sparse representation beats dense execution.
fn density_crossover(c: &mut Criterion) {
    let w = random_tensor(vec![512, 512], 10);
    let x = random_tensor(vec![16, 512], 11);
    let mut qs = ExecScratch::default();
    let mut out = vec![0.0f32; 16 * 512];

    let mut g = c.benchmark_group("matvec_density");
    let dense = MatRep::Dense(w.clone());
    for m in [1usize, 16] {
        g.bench_function(&format!("dense_m{m:02}"), |b| {
            b.iter(|| {
                dense.left_matmul_into(&x.data()[..m * 512], m, &mut out, &mut qs);
                black_box(out[0])
            })
        });
    }
    for pct in [10u32, 20, 30, 50, 70, 90] {
        let mut pruned = w.clone();
        let mut rng = StdRng::seed_from_u64(u64::from(pct));
        for v in pruned.data_mut() {
            if !rng.gen_bool(f64::from(pct) / 100.0) {
                *v = 0.0;
            }
        }
        let rep = MatRep::Sparse(CsrMatrix::from_dense(&pruned));
        rep.precompile();
        for m in [1usize, 16] {
            g.bench_function(&format!("sparse_d{pct:02}_m{m:02}"), |b| {
                b.iter(|| {
                    rep.left_matmul_into(&x.data()[..m * 512], m, &mut out, &mut qs);
                    black_box(out[0])
                })
            });
        }
    }
    g.finish();
}

fn prune_kernels(c: &mut Criterion) {
    // A 512x512 layer at 70% sparsity: the crossover the paper exploits.
    let w = random_tensor(vec![512, 512], 1);
    let x = random_tensor(vec![1, 512], 2);
    let mut sparse_w = w.clone();
    let mut rng = StdRng::seed_from_u64(3);
    for v in sparse_w.data_mut() {
        if rng.gen_bool(0.7) {
            *v = 0.0;
        }
    }
    let csr = CsrMatrix::from_dense(&sparse_w);
    let quant = QuantMatrix::quantize(&w, 0.01, None);

    let mut g = c.benchmark_group("matvec_512");
    g.bench_function("dense_f32", |b| b.iter(|| black_box(x.matmul(&w))));
    g.bench_function("csr_70pct", |b| b.iter(|| black_box(csr.left_matmul(&x))));
    g.bench_function("int8", |b| b.iter(|| black_box(quant.left_matmul(&x))));
    g.finish();
}

criterion_group!(benches, prune_kernels, density_crossover);
criterion_main!(benches);
