//! Criterion micro-benchmarks for the numeric kernels: the paper's
//! filters, the FFT, and the compiled per-architecture forward passes
//! (the dense/CSR/int8 matvec group lives in `benches/matvec.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dsp::butterworth::Butterworth;
use dsp::fft::rfft;
use dsp::notch::notch_filter;
use ml::compress::{prune_global, quantize, QuantMode};
use ml::infer::{compile_cnn, compile_lstm, compile_transformer, MatRep};
use ml::models::{CnnConfig, LstmConfig, TransformerConfig};
use ml::plan::InferPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn filter_kernels(c: &mut Criterion) {
    let bp = Butterworth::bandpass(9, 0.5, 45.0, 125.0).expect("designs");
    let nt = notch_filter(50.0, 30.0, 125.0).expect("designs");
    let signal: Vec<f32> = (0..1250).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut g = c.benchmark_group("filters_10s_signal");
    g.bench_function("butterworth9_bandpass", |b| {
        b.iter(|| black_box(bp.filter(&signal)))
    });
    g.bench_function("notch50_q30", |b| b.iter(|| black_box(nt.filter(&signal))));
    g.finish();
}

fn fft_kernels(c: &mut Criterion) {
    let signal: Vec<f32> = (0..1024).map(|i| (i as f32 * 0.11).sin()).collect();
    c.bench_function("rfft_1024", |b| {
        b.iter(|| black_box(rfft(&signal).expect("power of two")))
    });
}

fn forward_passes(c: &mut Criterion) {
    let window: Vec<f32> = {
        let mut rng = StdRng::seed_from_u64(7);
        (0..16 * 190).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    };
    let w130: Vec<f32> = window[..16 * 130].to_vec();

    let cnn = compile_cnn(&CnnConfig::paper_best().build(1).expect("builds"));
    let lstm = compile_lstm(
        &LstmConfig {
            hidden: 128,
            ..LstmConfig::paper_best()
        }
        .build(2)
        .expect("builds"),
    );
    let tf = compile_transformer(&TransformerConfig::paper_best().build(3).expect("builds"));

    let mut g = c.benchmark_group("inference_single_window");
    g.bench_function("cnn_paper_best", |b| {
        b.iter(|| black_box(cnn.predict_logits(&window)))
    });
    g.bench_function("lstm_128", |b| {
        // LSTM window is 130 samples.
        b.iter(|| black_box(lstm.predict_logits(&w130)))
    });
    g.bench_function("tf_paper_best", |b| {
        b.iter(|| black_box(tf.predict_logits(&window)))
    });
    g.finish();

    // Compression variants of the CNN (Fig. 12 mechanism), measured the
    // way serving runs them: compress once, compile the plan once, then
    // steady-state label ticks through the preallocated plan. This is the
    // configuration the paper's deployment claim stands on, so the bench
    // *asserts* that compression pays instead of merely recording it.
    let mut pruned = cnn.clone();
    prune_global(&mut pruned, 0.7);
    pruned.visit_weights(|w| {
        if let MatRep::Sparse(s) = w {
            assert!(s.sparsity() > 0.0);
        }
    });
    let mut quantized = cnn.clone();
    quantize(&mut quantized, QuantMode::GlobalFaithful).unwrap();

    let mut g = c.benchmark_group("cnn_compressed");
    for (name, model) in [
        ("dense", &cnn),
        ("pruned_70", &pruned),
        ("int8_global", &quantized),
    ] {
        let mut plan = InferPlan::compile(model);
        let mut logits = vec![0.0f32; plan.classes()];
        // Warm once so scratch growth happens outside the timed region.
        plan.predict_logits_into(model, &window, 1, &mut logits);
        g.bench_function(name, |b| {
            b.iter(|| {
                plan.predict_logits_into(model, &window, 1, &mut logits);
                black_box(logits[0])
            })
        });
    }

    // Acceptance (ISSUE 9): with real execution kernels, compression must
    // pay — int8 clearly faster than dense, pruning at worst neutral.
    let dense_ns = g.mean_ns("dense").expect("dense measured");
    let pruned_ns = g.mean_ns("pruned_70").expect("pruned measured");
    let int8_ns = g.mean_ns("int8_global").expect("int8 measured");
    assert!(
        int8_ns <= 0.9 * dense_ns,
        "int8_global must run at ≤0.9× dense: {int8_ns:.0} ns vs dense {dense_ns:.0} ns \
         ({:.2}×)",
        int8_ns / dense_ns
    );
    assert!(
        pruned_ns <= 1.1 * dense_ns,
        "pruned_70 must run at ≤1.1× dense: {pruned_ns:.0} ns vs dense {dense_ns:.0} ns \
         ({:.2}×)",
        pruned_ns / dense_ns
    );
    println!(
        "cnn_compressed acceptance: int8 {:.2}× dense, pruned {:.2}× dense",
        int8_ns / dense_ns,
        pruned_ns / dense_ns
    );
    g.finish();
}

criterion_group!(benches, filter_kernels, fft_kernels, forward_passes);
criterion_main!(benches);
