//! Criterion micro-benchmarks for the numeric kernels: the paper's
//! filters, the FFT, and the compiled per-architecture forward passes
//! (the dense/CSR/int8 matvec group lives in `benches/matvec.rs`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dsp::butterworth::Butterworth;
use dsp::fft::rfft;
use dsp::notch::notch_filter;
use ml::compress::{prune_global, quantize, QuantMode};
use ml::infer::{compile_cnn, compile_lstm, compile_transformer, MatRep};
use ml::models::{CnnConfig, LstmConfig, TransformerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn filter_kernels(c: &mut Criterion) {
    let bp = Butterworth::bandpass(9, 0.5, 45.0, 125.0).expect("designs");
    let nt = notch_filter(50.0, 30.0, 125.0).expect("designs");
    let signal: Vec<f32> = (0..1250).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut g = c.benchmark_group("filters_10s_signal");
    g.bench_function("butterworth9_bandpass", |b| {
        b.iter(|| black_box(bp.filter(&signal)))
    });
    g.bench_function("notch50_q30", |b| b.iter(|| black_box(nt.filter(&signal))));
    g.finish();
}

fn fft_kernels(c: &mut Criterion) {
    let signal: Vec<f32> = (0..1024).map(|i| (i as f32 * 0.11).sin()).collect();
    c.bench_function("rfft_1024", |b| {
        b.iter(|| black_box(rfft(&signal).expect("power of two")))
    });
}

fn forward_passes(c: &mut Criterion) {
    let window: Vec<f32> = {
        let mut rng = StdRng::seed_from_u64(7);
        (0..16 * 190).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    };
    let w130: Vec<f32> = window[..16 * 130].to_vec();

    let cnn = compile_cnn(&CnnConfig::paper_best().build(1).expect("builds"));
    let lstm = compile_lstm(
        &LstmConfig {
            hidden: 128,
            ..LstmConfig::paper_best()
        }
        .build(2)
        .expect("builds"),
    );
    let tf = compile_transformer(&TransformerConfig::paper_best().build(3).expect("builds"));

    let mut g = c.benchmark_group("inference_single_window");
    g.bench_function("cnn_paper_best", |b| {
        b.iter(|| black_box(cnn.predict_logits(&window)))
    });
    g.bench_function("lstm_128", |b| {
        // LSTM window is 130 samples.
        b.iter(|| black_box(lstm.predict_logits(&w130)))
    });
    g.bench_function("tf_paper_best", |b| {
        b.iter(|| black_box(tf.predict_logits(&window)))
    });
    g.finish();

    // Compression variants of the CNN (Fig. 12 mechanism).
    let mut g = c.benchmark_group("cnn_compressed");
    g.bench_function("dense", |b| b.iter(|| black_box(cnn.predict_logits(&window))));
    g.bench_function("pruned_70", |b| {
        b.iter_batched(
            || {
                let mut m = cnn.clone();
                prune_global(&mut m, 0.7);
                m
            },
            |m| black_box(m.predict_logits(&window)),
            BatchSize::LargeInput,
        )
    });
    let mut quantized = cnn.clone();
    quantize(&mut quantized, QuantMode::GlobalFaithful).unwrap();
    g.bench_function("int8_global", |b| {
        b.iter(|| black_box(quantized.predict_logits(&window)))
    });
    g.finish();

    // Representation sanity: sparse dims preserved.
    let mut pruned = cnn.clone();
    prune_global(&mut pruned, 0.7);
    pruned.visit_weights(|w| {
        if let MatRep::Sparse(s) = w {
            assert!(s.sparsity() > 0.0);
        }
    });
}

criterion_group!(benches, filter_kernels, fft_kernels, forward_passes);
criterion_main!(benches);
