//! Streaming substrate: the Lab Streaming Layer's role, plus a UDP foil.
//!
//! The paper streams EEG with LSL "chosen for its low latency and high
//! sample rate … ensuring precise synchronization and time-stamping"
//! (Sec. III-A2) and compares it against raw UDP in Fig. 4. Real LSL speaks
//! TCP across machines; here both protocols are modelled as event-queue
//! transports with configurable latency, jitter and loss, which is exactly
//! the level at which Fig. 4's comparison lives:
//!
//! * [`transport::LslTransport`] — reliable and ordered (lost packets are
//!   retransmitted at a latency cost), every sample carries a source
//!   timestamp, and the inlet runs LSL-style clock-offset correction.
//! * [`transport::UdpTransport`] — fire-and-forget: lower per-packet
//!   overhead and base latency, but losses are silent, ordering is not
//!   guaranteed and there are no timestamps to synchronize with.
//! * [`compare`] — measures the five axes of Fig. 4 (latency, sync quality,
//!   effective sample rate, reliability, bandwidth efficiency) on identical
//!   traffic.
//!
//! Time is simulated (see [`clock::SimClock`]): deterministic, seedable and
//! independent of the host scheduler.

pub mod clock;
pub mod compare;
pub mod dejitter;
pub mod inlet;
pub mod outlet;
pub mod pool;
pub mod transport;

mod error;

pub use error::StreamError;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, StreamError>;
