//! Simulated clocks and LSL-style clock-offset estimation.
//!
//! LSL's headline feature for EEG work is synchronized time-stamping: each
//! host has its own clock, and inlets estimate the sender→receiver clock
//! offset with round-trip pings (the same math as NTP). We model two hosts
//! whose clocks differ by a fixed offset plus slow drift, and reproduce the
//! estimator so Fig. 4's "synchronization" axis is measured, not assumed.

use serde::{Deserialize, Serialize};

use crate::{Result, StreamError};

/// A simulated host clock: monotone simulated seconds with an offset and a
/// constant drift rate relative to the global simulation timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    /// Offset from global simulation time, in seconds.
    pub offset: f64,
    /// Drift in seconds per second (e.g. `2e-5` = 20 ppm).
    pub drift: f64,
}

impl SimClock {
    /// A clock perfectly aligned with the simulation timeline.
    #[must_use]
    pub fn aligned() -> Self {
        Self {
            offset: 0.0,
            drift: 0.0,
        }
    }

    /// Creates a clock with the given offset and drift.
    #[must_use]
    pub fn new(offset: f64, drift: f64) -> Self {
        Self { offset, drift }
    }

    /// This host's local reading at global simulation time `t`.
    #[must_use]
    pub fn local_time(&self, t: f64) -> f64 {
        t + self.offset + self.drift * t
    }
}

/// One completed round-trip ping measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PingSample {
    /// Requester's local send time (t0).
    pub t0: f64,
    /// Responder's local receive time (t1).
    pub t1: f64,
    /// Responder's local reply time (t2).
    pub t2: f64,
    /// Requester's local receive time (t3).
    pub t3: f64,
}

impl PingSample {
    /// NTP-style offset estimate of responder clock minus requester clock.
    #[must_use]
    pub fn offset(&self) -> f64 {
        ((self.t1 - self.t0) + (self.t2 - self.t3)) / 2.0
    }

    /// Round-trip time excluding responder processing.
    #[must_use]
    pub fn rtt(&self) -> f64 {
        (self.t3 - self.t0) - (self.t2 - self.t1)
    }
}

/// LSL-style clock synchronizer: keeps a window of pings and reports the
/// offset from the ping with the smallest RTT (minimum-filter, the same
/// heuristic liblsl uses to reject queueing delay).
#[derive(Debug, Clone, Default)]
pub struct ClockSync {
    pings: Vec<PingSample>,
    capacity: usize,
}

impl ClockSync {
    /// Creates a synchronizer keeping up to `capacity` recent pings.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            pings: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Records a completed ping.
    pub fn push(&mut self, ping: PingSample) {
        if self.pings.len() == self.capacity {
            self.pings.remove(0);
        }
        self.pings.push(ping);
    }

    /// Number of pings currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pings.len()
    }

    /// Whether no pings have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pings.is_empty()
    }

    /// Best current offset estimate (responder minus requester).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::NoSyncData`] before the first ping completes.
    pub fn offset(&self) -> Result<f64> {
        self.pings
            .iter()
            .min_by(|a, b| a.rtt().partial_cmp(&b.rtt()).expect("finite rtt"))
            .map(PingSample::offset)
            .ok_or(StreamError::NoSyncData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_applies_offset_and_drift() {
        let c = SimClock::new(1.5, 1e-3);
        assert!((c.local_time(0.0) - 1.5).abs() < 1e-12);
        assert!((c.local_time(100.0) - 101.6).abs() < 1e-9);
    }

    #[test]
    fn symmetric_ping_recovers_exact_offset() {
        // Responder clock is +0.25 s; both legs take 4 ms.
        let requester = SimClock::aligned();
        let responder = SimClock::new(0.25, 0.0);
        let ping = PingSample {
            t0: requester.local_time(1.000),
            t1: responder.local_time(1.004),
            t2: responder.local_time(1.005),
            t3: requester.local_time(1.009),
        };
        assert!((ping.offset() - 0.25).abs() < 1e-12);
        assert!((ping.rtt() - 0.008).abs() < 1e-12);
    }

    #[test]
    fn min_rtt_filter_rejects_queueing_spike() {
        let mut sync = ClockSync::new(8);
        // Clean ping: true offset 0.1.
        sync.push(PingSample {
            t0: 0.0,
            t1: 0.102,
            t2: 0.103,
            t3: 0.005,
        });
        // Asymmetric congested ping: biased offset.
        sync.push(PingSample {
            t0: 1.0,
            t1: 1.202,
            t2: 1.203,
            t3: 1.010,
        });
        let est = sync.offset().unwrap();
        assert!((est - 0.1).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn capacity_is_bounded() {
        let mut sync = ClockSync::new(2);
        for i in 0..5 {
            sync.push(PingSample {
                t0: f64::from(i),
                t1: f64::from(i) + 0.1,
                t2: f64::from(i) + 0.11,
                t3: f64::from(i) + 0.01,
            });
        }
        assert_eq!(sync.len(), 2);
    }

    #[test]
    fn empty_sync_errors() {
        let sync = ClockSync::new(4);
        assert!(sync.is_empty());
        assert_eq!(sync.offset().unwrap_err(), StreamError::NoSyncData);
    }
}
