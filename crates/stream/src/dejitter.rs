//! Sequence-order restoration: the receiver-side dejitter ring.
//!
//! A reliable-but-jittery wire can deliver packets out of sequence order;
//! the consumer (a causal filter chain) needs them back **in** order. The
//! previous implementation parked early packets in a `BTreeMap<u64, Vec>`,
//! which allocates a tree node per out-of-order packet — on the hottest
//! per-sample path. [`ReorderRing`] replaces it with a ring of payload
//! slots indexed by `seq - next_seq`: inserts and pops are O(1) amortized,
//! and once the ring has grown to the wire's worst observed reorder
//! distance it never allocates again.

use std::collections::VecDeque;

/// A ring of pending payloads, indexed by distance from the next expected
/// sequence number.
#[derive(Debug, Default)]
pub struct ReorderRing {
    /// Slot `i` holds the payload for sequence number `next_seq + i`.
    slots: VecDeque<Option<Vec<f32>>>,
    next_seq: u64,
    /// Packets that had to wait in the ring (arrived ahead of a gap).
    held: u64,
}

impl ReorderRing {
    /// An empty ring expecting sequence number 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The next sequence number the consumer will receive.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Packets that arrived ahead of a sequence gap and waited in the ring.
    #[must_use]
    pub fn held(&self) -> u64 {
        self.held
    }

    /// Files one received payload under its sequence number. Returns a
    /// payload to recycle when this insert displaced one: a stale or
    /// duplicate `seq` hands `payload` straight back, and a re-delivery of
    /// a waiting slot hands back the older copy.
    pub fn insert(&mut self, seq: u64, payload: Vec<f32>) -> Option<Vec<f32>> {
        if seq < self.next_seq {
            return Some(payload); // stale duplicate: already consumed
        }
        let idx = usize::try_from(seq - self.next_seq).expect("reorder distance fits usize");
        while self.slots.len() <= idx {
            self.slots.push_back(None);
        }
        if idx > 0 || self.slots[0].is_some() {
            self.held += 1;
        }
        self.slots[idx].replace(payload)
    }

    /// Removes and returns the next in-sequence payload, if it has arrived.
    /// Drain with `while let Some(p) = ring.pop_ready()`.
    pub fn pop_ready(&mut self) -> Option<Vec<f32>> {
        match self.slots.front_mut() {
            Some(slot @ Some(_)) => {
                let payload = slot.take();
                self.slots.pop_front();
                self.next_seq += 1;
                payload
            }
            _ => None,
        }
    }

    /// Payloads currently parked in the ring (waiting on a gap).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f32) -> Vec<f32> {
        vec![v]
    }

    #[test]
    fn in_order_passes_straight_through() {
        let mut ring = ReorderRing::new();
        for seq in 0..5u64 {
            assert!(ring.insert(seq, p(seq as f32)).is_none());
            assert_eq!(ring.pop_ready().unwrap(), p(seq as f32));
        }
        assert_eq!(ring.next_seq(), 5);
        assert_eq!(ring.held(), 0);
    }

    #[test]
    fn out_of_order_is_restored() {
        let mut ring = ReorderRing::new();
        ring.insert(2, p(2.0));
        ring.insert(0, p(0.0));
        ring.insert(1, p(1.0));
        let mut got = Vec::new();
        while let Some(payload) = ring.pop_ready() {
            got.push(payload[0]);
        }
        assert_eq!(got, vec![0.0, 1.0, 2.0]);
        assert!(ring.held() >= 1);
    }

    #[test]
    fn gap_blocks_until_filled() {
        let mut ring = ReorderRing::new();
        ring.insert(1, p(1.0));
        assert!(ring.pop_ready().is_none());
        assert_eq!(ring.pending(), 1);
        ring.insert(0, p(0.0));
        assert_eq!(ring.pop_ready().unwrap(), p(0.0));
        assert_eq!(ring.pop_ready().unwrap(), p(1.0));
        assert!(ring.pop_ready().is_none());
    }

    #[test]
    fn stale_and_duplicate_payloads_are_returned_for_recycling() {
        let mut ring = ReorderRing::new();
        ring.insert(0, p(0.0));
        assert_eq!(ring.pop_ready().unwrap(), p(0.0));
        // Stale: seq 0 already consumed.
        assert_eq!(ring.insert(0, p(9.0)).unwrap(), p(9.0));
        // Duplicate of a waiting slot: the displaced copy comes back.
        ring.insert(2, p(2.0));
        assert_eq!(ring.insert(2, p(2.5)).unwrap(), p(2.0));
        ring.insert(1, p(1.0));
        assert_eq!(ring.pop_ready().unwrap(), p(1.0));
        assert_eq!(ring.pop_ready().unwrap(), p(2.5));
    }
}
