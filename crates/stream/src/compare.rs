//! The LSL-vs-UDP protocol comparison behind Fig. 4.
//!
//! Identical 16-channel 125 Hz traffic is driven through both transports;
//! we measure the five axes the figure plots. The paper's conclusion — LSL
//! ahead on everything except bandwidth efficiency — falls out of the
//! protocol semantics and is asserted by this module's tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clock::{PingSample, SimClock};
use crate::inlet::Inlet;
use crate::outlet::{Outlet, StreamInfo};
use crate::transport::{Transport, TransportParams};

/// Measured properties of one protocol under the benchmark workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolMetrics {
    /// Mean one-way delivery latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Latency jitter (standard deviation) in milliseconds.
    pub jitter_ms: f64,
    /// RMS error of corrected timestamps vs. true emission times, in
    /// milliseconds; `f64::INFINITY` when the protocol cannot synchronize.
    pub sync_error_ms: f64,
    /// Delivered sample rate as a fraction of the nominal rate, in percent.
    pub effective_rate_pct: f64,
    /// Fraction of sent samples delivered, in percent.
    pub reliability_pct: f64,
    /// Useful payload bytes as a fraction of bytes on the wire, in percent.
    pub bandwidth_efficiency_pct: f64,
}

impl ProtocolMetrics {
    /// Scores for the radar plot of Fig. 4, each mapped to `[0, 10]` where
    /// higher is better: latency, synchronization, sample rate, reliability,
    /// bandwidth efficiency.
    #[must_use]
    pub fn radar_scores(&self) -> [f64; 5] {
        let latency = (10.0 - self.mean_latency_ms).clamp(0.0, 10.0);
        let sync = if self.sync_error_ms.is_finite() {
            (10.0 - self.sync_error_ms * 2.0).clamp(0.0, 10.0)
        } else {
            0.0
        };
        let rate = self.effective_rate_pct / 10.0;
        let reliability = self.reliability_pct / 10.0;
        let bandwidth = self.bandwidth_efficiency_pct / 10.0;
        [latency, sync, rate, reliability, bandwidth]
    }
}

/// Result of [`compare_protocols`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Metrics for the LSL-role transport.
    pub lsl: ProtocolMetrics,
    /// Metrics for the UDP-role transport.
    pub udp: ProtocolMetrics,
}

/// Drives `seconds` of 16-channel 125 Hz EEG traffic through both protocols
/// and measures Fig. 4's axes. Deterministic in `seed`.
#[must_use]
pub fn compare_protocols(seconds: f64, seed: u64) -> Comparison {
    Comparison {
        lsl: run_protocol(TransportParams::lsl(), seconds, seed),
        udp: run_protocol(TransportParams::udp(), seconds, seed ^ 0xDEAD_BEEF),
    }
}

fn run_protocol(params: TransportParams, seconds: f64, seed: u64) -> ProtocolMetrics {
    let info = StreamInfo::eeg_default();
    let fs = info.nominal_rate;
    let dt = 1.0 / fs;
    let n = (seconds * fs) as usize;

    // Sender clock offset +1.7 s with 20 ppm drift: realistic two-host setup.
    let sender_clock = SimClock::new(1.7, 2e-5);
    let receiver_clock = SimClock::aligned();

    let mut transport = Transport::new(params, seed);
    let mut outlet = Outlet::new(info, sender_clock);
    let mut inlet = Inlet::new(receiver_clock);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51);

    // Periodic clock-sync pings for timestamped protocols (every 0.5 s).
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(n);
    let mut sync_errs_ms: Vec<f64> = Vec::new();
    let mut emission: Vec<f64> = Vec::with_capacity(n);

    let mut now = 0.0;
    for i in 0..n {
        now = i as f64 * dt;
        if params.timestamps && i % 62 == 0 {
            // Simulate a symmetric ping with small random leg latency.
            let leg = 0.002 + rng.gen_range(0.0..0.002);
            inlet.record_ping(PingSample {
                t0: receiver_clock.local_time(now),
                t1: sender_clock.local_time(now + leg),
                t2: sender_clock.local_time(now + leg + 0.0005),
                t3: receiver_clock.local_time(now + 2.0 * leg + 0.0005),
            });
        }
        emission.push(now);
        outlet
            .push(&mut transport, vec![0.0; 16], now)
            .expect("outlet open and width correct");

        // Poll at the sample cadence, like the real-time loop does.
        for s in inlet.pull(&mut transport, now) {
            let emitted = emission[s.seq as usize];
            latencies_ms.push((now - emitted) * 1e3);
            if let Some(ts) = s.corrected_timestamp {
                // Corrected timestamp is in receiver local time == global.
                sync_errs_ms.push((ts - emitted) * 1e3);
            }
        }
    }
    // Final drain shortly after the stream ends; the true arrival time is
    // each packet's own latency, so poll densely to avoid quantization
    // inflating the tail measurements.
    let mut t = now;
    while t < now + 0.2 {
        t += dt;
        for s in inlet.pull(&mut transport, t) {
            let emitted = emission[s.seq as usize];
            latencies_ms.push((t - emitted) * 1e3);
            if let Some(ts) = s.corrected_timestamp {
                sync_errs_ms.push((ts - emitted) * 1e3);
            }
        }
    }

    let delivered = inlet.received();
    let mean = mean(&latencies_ms);
    let jitter = std_dev(&latencies_ms, mean);
    let sync_error_ms = if sync_errs_ms.is_empty() {
        f64::INFINITY
    } else {
        (sync_errs_ms.iter().map(|e| e * e).sum::<f64>() / sync_errs_ms.len() as f64).sqrt()
    };

    ProtocolMetrics {
        mean_latency_ms: mean,
        jitter_ms: jitter,
        sync_error_ms,
        effective_rate_pct: 100.0 * delivered as f64 / n as f64,
        reliability_pct: 100.0 * delivered as f64 / transport.sent() as f64,
        bandwidth_efficiency_pct: 100.0 * transport.payload_bytes() as f64
            / transport.bytes_on_wire() as f64,
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

fn std_dev(v: &[f64], mean: f64) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comparison() -> Comparison {
        compare_protocols(20.0, 42)
    }

    #[test]
    fn lsl_synchronizes_udp_cannot() {
        let c = comparison();
        assert!(c.lsl.sync_error_ms.is_finite());
        assert!(c.lsl.sync_error_ms < 5.0, "{}", c.lsl.sync_error_ms);
        assert!(c.udp.sync_error_ms.is_infinite());
    }

    #[test]
    fn lsl_is_fully_reliable_udp_is_not() {
        let c = comparison();
        assert!((c.lsl.reliability_pct - 100.0).abs() < 1e-9);
        assert!(c.udp.reliability_pct < 100.0);
        assert!(c.udp.reliability_pct > 95.0);
    }

    #[test]
    fn udp_wins_bandwidth_efficiency_only() {
        let c = comparison();
        assert!(c.udp.bandwidth_efficiency_pct > c.lsl.bandwidth_efficiency_pct);
        // ...and loses or ties everywhere else (paper Fig. 4 shape).
        assert!(c.lsl.reliability_pct >= c.udp.reliability_pct);
        assert!(c.lsl.effective_rate_pct >= c.udp.effective_rate_pct);
        assert!(c.lsl.sync_error_ms < c.udp.sync_error_ms);
    }

    #[test]
    fn radar_scores_are_bounded() {
        let c = comparison();
        for s in c.lsl.radar_scores().iter().chain(&c.udp.radar_scores()) {
            assert!((0.0..=10.0).contains(s), "score {s}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(compare_protocols(5.0, 9), compare_protocols(5.0, 9));
    }
}
