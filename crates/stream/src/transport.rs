//! Event-queue transport models for the LSL-vs-UDP comparison (Fig. 4).
//!
//! Both transports move timestamped packets from an outlet to an inlet
//! across simulated time. Their parameters encode the protocol differences
//! that matter for EEG streaming:
//!
//! | property            | LSL-role (TCP-like)             | UDP-role          |
//! |---------------------|---------------------------------|-------------------|
//! | loss                | retransmitted (latency penalty) | silent drop       |
//! | ordering            | guaranteed                      | best effort       |
//! | timestamps          | per-sample source timestamps    | none              |
//! | per-packet overhead | higher (framing + timestamps)   | minimal           |

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::pool::PacketPool;

/// A packet carrying one multichannel sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Monotone sequence number assigned by the outlet.
    pub seq: u64,
    /// Source timestamp in the *sender's* clock, if the protocol carries
    /// timestamps (LSL does, UDP payload here does not).
    pub source_timestamp: Option<f64>,
    /// Sample payload (one value per channel).
    pub payload: Vec<f32>,
    /// Global simulation time at which the packet becomes available at the
    /// receiver (set by the transport).
    pub arrival: f64,
    /// Size on the wire in bytes (payload + protocol overhead).
    pub wire_bytes: usize,
}

/// Behavioural parameters of a transport.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportParams {
    /// Base one-way latency in seconds.
    pub base_latency: f64,
    /// Uniform jitter added on top, in seconds (`0..jitter`).
    pub jitter: f64,
    /// Probability that a packet is lost on first transmission.
    pub loss_prob: f64,
    /// Whether lost packets are retransmitted (adds one RTT of latency) or
    /// silently dropped.
    pub retransmit: bool,
    /// Whether per-sample source timestamps are carried.
    pub timestamps: bool,
    /// Protocol overhead per packet in bytes (headers, framing, timestamp).
    pub overhead_bytes: usize,
}

impl TransportParams {
    /// LSL-role parameters: TCP framing + timestamping, reliable.
    #[must_use]
    pub fn lsl() -> Self {
        Self {
            base_latency: 0.004,
            jitter: 0.002,
            loss_prob: 0.01,
            retransmit: true,
            timestamps: true,
            overhead_bytes: 66, // TCP/IP headers + LSL framing + f64 timestamp
        }
    }

    /// UDP-role parameters: minimal overhead, silent loss. Base latency is
    /// slightly above the LSL role's: LSL coalesces samples into chunked
    /// writes on a hot connection, while each datagram pays full per-packet
    /// socket overhead (the paper's Fig. 4 likewise scores LSL ahead on
    /// latency).
    #[must_use]
    pub fn udp() -> Self {
        Self {
            base_latency: 0.005,
            jitter: 0.004,
            loss_prob: 0.01,
            retransmit: false,
            timestamps: false,
            overhead_bytes: 28, // UDP/IP headers only
        }
    }
}

/// A snapshot of a transport's wire accounting. Every transmission the
/// sender pays for is in exactly one of three states — delivered, lost, or
/// still in flight — so the counters **reconcile** by construction:
///
/// * `sent == delivered + lost + in_flight` (packets), and
/// * `bytes_on_wire == bytes_delivered + bytes_lost + bytes_in_flight`.
///
/// A lost-then-retransmitted packet contributes one lost transmission and
/// one delivered (or in-flight) transmission; a silently dropped packet
/// contributes one lost transmission and counts in `lost`.
/// [`WireStats::reconciles`] states the invariant;
/// `transport::tests::stats_reconcile_under_loss_and_retransmission`
/// enforces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Packets offered by the application.
    pub sent: u64,
    /// Packets handed to the receiver.
    pub delivered: u64,
    /// Packets permanently lost (silent drops; never with retransmission).
    pub lost: u64,
    /// Packets queued but not yet polled out.
    pub in_flight: u64,
    /// Extra transmissions paid to recover first-transmission losses.
    pub retransmissions: u64,
    /// Total bytes put on the wire, including lost transmissions,
    /// retransmissions and protocol headers.
    pub bytes_on_wire: u64,
    /// Wire bytes of transmissions that reached the receiver.
    pub bytes_delivered: u64,
    /// Wire bytes of transmissions the network dropped (the first
    /// transmission of every lost packet, retransmitted or not).
    pub bytes_lost: u64,
    /// Wire bytes of transmissions still queued for delivery.
    pub bytes_in_flight: u64,
    /// Useful payload bytes offered by the application.
    pub payload_bytes: u64,
}

impl WireStats {
    /// Whether every transmission and every byte is accounted for.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.sent == self.delivered + self.lost + self.in_flight
            && self.bytes_on_wire
                == self.bytes_delivered + self.bytes_lost + self.bytes_in_flight
    }
}

/// An in-flight packet queue with protocol semantics applied at send time.
#[derive(Debug)]
pub struct Transport {
    params: TransportParams,
    rng: StdRng,
    in_flight: Vec<Packet>,
    /// Persistent partition scratch for [`Transport::poll_into`]: packets
    /// not yet arrived move here, then the vectors swap — so a steady-state
    /// drain never allocates.
    keep: Vec<Packet>,
    /// Recycles payload buffers of silently dropped packets, closing the
    /// sender→wire→receiver buffer cycle under loss.
    pool: Option<Arc<PacketPool>>,
    next_seq: u64,
    stats: WireStats,
}

impl Transport {
    /// Creates a transport with the given behaviour, deterministically
    /// seeded.
    #[must_use]
    pub fn new(params: TransportParams, seed: u64) -> Self {
        Self {
            params,
            rng: StdRng::seed_from_u64(seed),
            in_flight: Vec::new(),
            keep: Vec::new(),
            pool: None,
            next_seq: 0,
            stats: WireStats::default(),
        }
    }

    /// The transport's behavioural parameters.
    #[must_use]
    pub fn params(&self) -> &TransportParams {
        &self.params
    }

    /// Attaches a packet-buffer pool. From here on, payloads of silently
    /// dropped packets go back to the pool at the drop site instead of
    /// being freed — without a pool, simulated loss leaks one buffer per
    /// dropped packet out of the recycle cycle.
    pub fn set_pool(&mut self, pool: Arc<PacketPool>) {
        self.pool = Some(pool);
    }

    /// Sends one sample at global time `now`, stamping it with the sender's
    /// local clock time `sender_ts` when the protocol carries timestamps.
    ///
    /// Accounting: every transmission (including the failed first try of a
    /// retransmitted packet) lands in exactly one of `bytes_delivered`,
    /// `bytes_lost`, or `bytes_in_flight` — see [`WireStats`].
    pub fn send(&mut self, payload: Vec<f32>, now: f64, sender_ts: f64) {
        let payload_bytes = payload.len() * std::mem::size_of::<f32>();
        let wire = (payload_bytes + self.params.overhead_bytes) as u64;
        let lost = self.rng.gen_bool(self.params.loss_prob);
        let latency = self.params.base_latency + self.rng.gen_range(0.0..=self.params.jitter);

        self.stats.sent += 1;
        self.stats.payload_bytes += payload_bytes as u64;

        let arrival = if lost {
            // The first transmission hit the wire and was dropped there.
            self.stats.bytes_on_wire += wire;
            self.stats.bytes_lost += wire;
            if self.params.retransmit {
                // One full extra round trip to detect + resend.
                let retry = self.params.base_latency * 2.0
                    + self.rng.gen_range(0.0..=self.params.jitter);
                self.stats.retransmissions += 1;
                Some(now + latency + retry)
            } else {
                self.stats.lost += 1;
                None
            }
        } else {
            Some(now + latency)
        };

        if let Some(arrival) = arrival {
            // The (re)transmission that will actually reach the receiver.
            self.stats.bytes_on_wire += wire;
            self.stats.bytes_in_flight += wire;
            self.stats.in_flight += 1;
            self.in_flight.push(Packet {
                seq: self.next_seq,
                source_timestamp: self.params.timestamps.then_some(sender_ts),
                payload,
                arrival,
                wire_bytes: payload_bytes + self.params.overhead_bytes,
            });
        } else if let Some(pool) = &self.pool {
            pool.put(payload);
        }
        self.next_seq += 1;
    }

    /// Delivers every packet that has arrived by global time `now`, in
    /// arrival order (which for the UDP role may differ from send order).
    pub fn poll(&mut self, now: f64) -> Vec<Packet> {
        let mut ready: Vec<Packet> = Vec::new();
        self.poll_into(now, &mut ready);
        ready
    }

    /// [`Transport::poll`] into a caller-owned buffer: arrived packets are
    /// **appended** to `out` in arrival order (payloads are moved, not
    /// cloned). With a reused `out` the steady-state drain performs zero
    /// heap allocations: the not-yet-arrived remainder partitions into a
    /// persistent scratch vector that swaps back into place, and the
    /// appended packets are ordered with an in-place unstable sort keyed
    /// on `(arrival, seq)` — O(n log n) worst case, so an adversarial
    /// jitter burst that lands hundreds of packets in one poll no longer
    /// degrades quadratically (the previous insertion sort did).
    ///
    /// Delivery order is bit-identical to the old stable sort by arrival:
    /// `in_flight` always holds packets in ascending `seq` (send appends in
    /// seq order and the drain/keep partition preserves relative order), so
    /// equal-arrival packets enter the sort already in seq order, and the
    /// `seq` tiebreak makes the unstable sort reproduce exactly the
    /// ordering a stable arrival-only sort would.
    ///
    /// # Panics
    ///
    /// Panics if an arrival time is NaN (never produced by `send`).
    pub fn poll_into(&mut self, now: f64, out: &mut Vec<Packet>) {
        let start = out.len();
        for p in self.in_flight.drain(..) {
            if p.arrival <= now {
                out.push(p);
            } else {
                self.keep.push(p);
            }
        }
        std::mem::swap(&mut self.in_flight, &mut self.keep);
        let ready = &mut out[start..];
        ready.sort_unstable_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .expect("finite arrival")
                .then_with(|| a.seq.cmp(&b.seq))
        });
        self.stats.delivered += ready.len() as u64;
        self.stats.in_flight -= ready.len() as u64;
        for p in ready {
            let wire = p.wire_bytes as u64;
            self.stats.bytes_delivered += wire;
            self.stats.bytes_in_flight -= wire;
        }
    }

    /// A snapshot of the reconciling wire counters.
    #[must_use]
    pub fn stats(&self) -> WireStats {
        self.stats
    }

    /// Packets sent so far (including ones that were dropped).
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.stats.sent
    }

    /// Packets delivered to the receiver so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.stats.delivered
    }

    /// Packets permanently lost (silent drops on a non-retransmitting
    /// wire).
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.stats.lost
    }

    /// Packets currently queued for delivery.
    #[must_use]
    pub fn in_flight_len(&self) -> u64 {
        self.stats.in_flight
    }

    /// Total bytes put on the wire, including retransmissions and headers.
    #[must_use]
    pub fn bytes_on_wire(&self) -> u64 {
        self.stats.bytes_on_wire
    }

    /// Total useful payload bytes offered by the application.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.stats.payload_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(t: &mut Transport) -> Vec<Packet> {
        t.poll(f64::INFINITY)
    }

    #[test]
    fn lsl_delivers_everything_eventually() {
        let mut t = Transport::new(TransportParams::lsl(), 7);
        for i in 0..1000 {
            t.send(vec![i as f32], f64::from(i) * 0.008, f64::from(i) * 0.008);
        }
        let got = drain_all(&mut t);
        assert_eq!(got.len(), 1000, "reliable transport must not lose data");
    }

    #[test]
    fn udp_drops_some_packets() {
        let mut t = Transport::new(TransportParams::udp(), 7);
        for i in 0..2000 {
            t.send(vec![i as f32], f64::from(i) * 0.008, f64::from(i) * 0.008);
        }
        let got = drain_all(&mut t);
        assert!(got.len() < 2000, "expected silent losses");
        assert!(got.len() > 1900, "loss rate should be ~1%");
    }

    #[test]
    fn packets_not_delivered_before_arrival_time() {
        let mut t = Transport::new(TransportParams::lsl(), 3);
        t.send(vec![1.0], 0.0, 0.0);
        assert!(t.poll(0.001).is_empty(), "base latency is 4 ms");
        assert_eq!(t.poll(1.0).len(), 1);
    }

    #[test]
    fn lsl_carries_timestamps_udp_does_not() {
        let mut lsl = Transport::new(TransportParams::lsl(), 1);
        lsl.send(vec![0.0], 0.0, 123.456);
        assert_eq!(drain_all(&mut lsl)[0].source_timestamp, Some(123.456));

        let mut udp = Transport::new(TransportParams::udp(), 1);
        udp.send(vec![0.0], 0.0, 123.456);
        let got = drain_all(&mut udp);
        if let Some(p) = got.first() {
            assert_eq!(p.source_timestamp, None);
        }
    }

    #[test]
    fn udp_wire_overhead_is_lower() {
        let mut lsl = Transport::new(TransportParams::lsl(), 1);
        let mut udp = Transport::new(TransportParams::udp(), 1);
        for i in 0..100 {
            lsl.send(vec![0.0; 16], f64::from(i), f64::from(i));
            udp.send(vec![0.0; 16], f64::from(i), f64::from(i));
        }
        assert!(udp.bytes_on_wire() < lsl.bytes_on_wire());
        assert_eq!(udp.payload_bytes(), lsl.payload_bytes());
    }

    #[test]
    fn poll_into_matches_poll_exactly() {
        // Two identically-seeded transports, one drained through each API:
        // the packet streams must be identical (same partition, same
        // stable ordering), including across partial drains.
        let mut a = Transport::new(TransportParams::udp(), 11);
        let mut b = Transport::new(TransportParams::udp(), 11);
        let mut via_into: Vec<Packet> = Vec::new();
        for i in 0..400 {
            let t = f64::from(i) * 0.008;
            a.send(vec![i as f32, -(i as f32)], t, t);
            b.send(vec![i as f32, -(i as f32)], t, t);
            if i % 50 == 49 {
                via_into.clear();
                b.poll_into(t, &mut via_into);
                assert_eq!(a.poll(t), via_into);
            }
        }
        via_into.clear();
        b.poll_into(f64::INFINITY, &mut via_into);
        assert_eq!(a.poll(f64::INFINITY), via_into);
        assert_eq!(a.delivered(), b.delivered());
    }

    #[test]
    fn poll_into_appends_after_existing_contents() {
        let mut t = Transport::new(TransportParams::lsl(), 3);
        t.send(vec![1.0], 0.0, 0.0);
        let mut out = Vec::new();
        t.poll_into(f64::INFINITY, &mut out);
        t.send(vec![2.0], 1.0, 1.0);
        t.poll_into(f64::INFINITY, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, vec![1.0]);
        assert_eq!(out[1].payload, vec![2.0]);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut t = Transport::new(TransportParams::udp(), seed);
            for i in 0..500 {
                t.send(vec![i as f32], f64::from(i) * 0.008, 0.0);
            }
            drain_all(&mut t).len()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn stats_reconcile_under_loss_and_retransmission() {
        for params in [TransportParams::lsl(), TransportParams::udp()] {
            let mut t = Transport::new(params, 42);
            let mut out = Vec::new();
            for i in 0..3000 {
                let now = f64::from(i) * 0.008;
                t.send(vec![i as f32; 8], now, now);
                if i % 7 == 6 {
                    // Mid-run: packets still in flight must be accounted.
                    t.poll_into(now, &mut out);
                    assert!(t.stats().reconciles(), "mid-run: {:?}", t.stats());
                }
            }
            t.poll_into(f64::INFINITY, &mut out);
            let s = t.stats();
            assert!(s.reconciles(), "after full drain: {s:?}");
            assert_eq!(s.in_flight, 0);
            assert_eq!(s.bytes_in_flight, 0);
            assert_eq!(s.delivered, out.len() as u64);
            if params.retransmit {
                assert_eq!(s.lost, 0, "reliable wire never loses packets");
                assert!(s.retransmissions > 0, "1% loss over 3000 sends");
                assert!(s.bytes_lost > 0, "failed first transmissions cost bytes");
            } else {
                assert!(s.lost > 0, "1% silent loss over 3000 sends");
                assert_eq!(s.retransmissions, 0);
                // A silently lost packet costs wire bytes but never arrives.
                assert_eq!(s.bytes_on_wire - s.bytes_delivered, s.bytes_lost);
            }
        }
    }

    #[test]
    fn unstable_sort_matches_stable_reference_under_adversarial_jitter() {
        // Worst case for the old insertion sort: huge jitter relative to
        // the polling cadence, so each poll sees a large reversed-ish
        // batch. The (arrival, seq) unstable sort must reproduce the
        // stable-by-arrival order exactly, including ties.
        let params = TransportParams {
            base_latency: 0.001,
            jitter: 0.5,
            loss_prob: 0.05,
            retransmit: false,
            timestamps: false,
            overhead_bytes: 28,
        };
        let mut t = Transport::new(params, 99);
        let mut got = Vec::new();
        for i in 0..2000 {
            let now = f64::from(i) * 0.008;
            t.send(vec![i as f32], now, now);
            if i % 400 == 399 {
                t.poll_into(now, &mut got);
            }
        }
        t.poll_into(f64::INFINITY, &mut got);

        // Stable reference: sort a copy by arrival only.
        let mut reference = got.clone();
        reference.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite"));
        assert_eq!(got, reference);
    }

    #[test]
    fn equal_arrival_ties_deliver_in_seq_order() {
        // jitter = 0 and a shared send time force exactly equal arrivals;
        // the stable reference keeps insertion (= seq) order, and the
        // tiebreak must match it.
        let params = TransportParams {
            base_latency: 0.004,
            jitter: 0.0,
            loss_prob: 0.0,
            retransmit: false,
            timestamps: false,
            overhead_bytes: 28,
        };
        let mut t = Transport::new(params, 5);
        for i in 0..64 {
            t.send(vec![i as f32], 0.0, 0.0);
        }
        let got = drain_all(&mut t);
        let seqs: Vec<u64> = got.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn lost_payloads_are_recycled_into_the_pool() {
        let pool = Arc::new(PacketPool::new());
        let mut t = Transport::new(TransportParams::udp(), 42);
        t.set_pool(Arc::clone(&pool));
        for i in 0..2000 {
            t.send(pool.take(4), f64::from(i) * 0.008, 0.0);
        }
        let s = t.stats();
        assert!(s.lost > 0, "1% loss over 2000 sends");
        assert_eq!(
            pool.recycled(),
            s.lost,
            "every silently dropped payload must return to the pool"
        );
        // Delivered payloads are the receiver's to recycle.
        let got = drain_all(&mut t);
        for p in got {
            pool.put(p.payload);
        }
        let s = t.stats();
        assert_eq!(pool.recycled(), s.lost + s.delivered);
    }
}
