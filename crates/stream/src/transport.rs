//! Event-queue transport models for the LSL-vs-UDP comparison (Fig. 4).
//!
//! Both transports move timestamped packets from an outlet to an inlet
//! across simulated time. Their parameters encode the protocol differences
//! that matter for EEG streaming:
//!
//! | property            | LSL-role (TCP-like)             | UDP-role          |
//! |---------------------|---------------------------------|-------------------|
//! | loss                | retransmitted (latency penalty) | silent drop       |
//! | ordering            | guaranteed                      | best effort       |
//! | timestamps          | per-sample source timestamps    | none              |
//! | per-packet overhead | higher (framing + timestamps)   | minimal           |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A packet carrying one multichannel sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Monotone sequence number assigned by the outlet.
    pub seq: u64,
    /// Source timestamp in the *sender's* clock, if the protocol carries
    /// timestamps (LSL does, UDP payload here does not).
    pub source_timestamp: Option<f64>,
    /// Sample payload (one value per channel).
    pub payload: Vec<f32>,
    /// Global simulation time at which the packet becomes available at the
    /// receiver (set by the transport).
    pub arrival: f64,
    /// Size on the wire in bytes (payload + protocol overhead).
    pub wire_bytes: usize,
}

/// Behavioural parameters of a transport.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportParams {
    /// Base one-way latency in seconds.
    pub base_latency: f64,
    /// Uniform jitter added on top, in seconds (`0..jitter`).
    pub jitter: f64,
    /// Probability that a packet is lost on first transmission.
    pub loss_prob: f64,
    /// Whether lost packets are retransmitted (adds one RTT of latency) or
    /// silently dropped.
    pub retransmit: bool,
    /// Whether per-sample source timestamps are carried.
    pub timestamps: bool,
    /// Protocol overhead per packet in bytes (headers, framing, timestamp).
    pub overhead_bytes: usize,
}

impl TransportParams {
    /// LSL-role parameters: TCP framing + timestamping, reliable.
    #[must_use]
    pub fn lsl() -> Self {
        Self {
            base_latency: 0.004,
            jitter: 0.002,
            loss_prob: 0.01,
            retransmit: true,
            timestamps: true,
            overhead_bytes: 66, // TCP/IP headers + LSL framing + f64 timestamp
        }
    }

    /// UDP-role parameters: minimal overhead, silent loss. Base latency is
    /// slightly above the LSL role's: LSL coalesces samples into chunked
    /// writes on a hot connection, while each datagram pays full per-packet
    /// socket overhead (the paper's Fig. 4 likewise scores LSL ahead on
    /// latency).
    #[must_use]
    pub fn udp() -> Self {
        Self {
            base_latency: 0.005,
            jitter: 0.004,
            loss_prob: 0.01,
            retransmit: false,
            timestamps: false,
            overhead_bytes: 28, // UDP/IP headers only
        }
    }
}

/// An in-flight packet queue with protocol semantics applied at send time.
#[derive(Debug)]
pub struct Transport {
    params: TransportParams,
    rng: StdRng,
    in_flight: Vec<Packet>,
    /// Persistent partition scratch for [`Transport::poll_into`]: packets
    /// not yet arrived move here, then the vectors swap — so a steady-state
    /// drain never allocates.
    keep: Vec<Packet>,
    next_seq: u64,
    /// Running statistics.
    sent: u64,
    delivered: u64,
    bytes_on_wire: u64,
    payload_bytes: u64,
}

impl Transport {
    /// Creates a transport with the given behaviour, deterministically
    /// seeded.
    #[must_use]
    pub fn new(params: TransportParams, seed: u64) -> Self {
        Self {
            params,
            rng: StdRng::seed_from_u64(seed),
            in_flight: Vec::new(),
            keep: Vec::new(),
            next_seq: 0,
            sent: 0,
            delivered: 0,
            bytes_on_wire: 0,
            payload_bytes: 0,
        }
    }

    /// The transport's behavioural parameters.
    #[must_use]
    pub fn params(&self) -> &TransportParams {
        &self.params
    }

    /// Sends one sample at global time `now`, stamping it with the sender's
    /// local clock time `sender_ts` when the protocol carries timestamps.
    pub fn send(&mut self, payload: Vec<f32>, now: f64, sender_ts: f64) {
        let payload_bytes = payload.len() * std::mem::size_of::<f32>();
        let lost = self.rng.gen_bool(self.params.loss_prob);
        let latency = self.params.base_latency + self.rng.gen_range(0.0..=self.params.jitter);

        let (arrival, transmissions) = if lost {
            if self.params.retransmit {
                // One full extra round trip to detect + resend.
                let retry = self.params.base_latency * 2.0
                    + self.rng.gen_range(0.0..=self.params.jitter);
                (Some(now + latency + retry), 2)
            } else {
                (None, 1)
            }
        } else {
            (Some(now + latency), 1)
        };

        self.sent += 1;
        self.bytes_on_wire +=
            (transmissions * (payload_bytes + self.params.overhead_bytes)) as u64;
        self.payload_bytes += payload_bytes as u64;

        if let Some(arrival) = arrival {
            self.in_flight.push(Packet {
                seq: self.next_seq,
                source_timestamp: self.params.timestamps.then_some(sender_ts),
                payload,
                arrival,
                wire_bytes: payload_bytes + self.params.overhead_bytes,
            });
        }
        self.next_seq += 1;
    }

    /// Delivers every packet that has arrived by global time `now`, in
    /// arrival order (which for the UDP role may differ from send order).
    pub fn poll(&mut self, now: f64) -> Vec<Packet> {
        let mut ready: Vec<Packet> = Vec::new();
        self.poll_into(now, &mut ready);
        ready
    }

    /// [`Transport::poll`] into a caller-owned buffer: arrived packets are
    /// **appended** to `out` in arrival order (payloads are moved, not
    /// cloned). With a reused `out` the steady-state drain performs zero
    /// heap allocations: the not-yet-arrived remainder partitions into a
    /// persistent scratch vector that swaps back into place, and the
    /// appended packets are ordered with an in-place insertion sort —
    /// stable, so delivery order is identical to [`Transport::poll`]'s
    /// stable library sort. Arrivals cluster near their send times, so the
    /// per-poll batch the quadratic sort sees stays small.
    ///
    /// # Panics
    ///
    /// Panics if an arrival time is NaN (never produced by `send`).
    pub fn poll_into(&mut self, now: f64, out: &mut Vec<Packet>) {
        let start = out.len();
        for p in self.in_flight.drain(..) {
            if p.arrival <= now {
                out.push(p);
            } else {
                self.keep.push(p);
            }
        }
        std::mem::swap(&mut self.in_flight, &mut self.keep);
        let ready = &mut out[start..];
        for i in 1..ready.len() {
            let mut j = i;
            while j > 0
                && ready[j]
                    .arrival
                    .partial_cmp(&ready[j - 1].arrival)
                    .expect("finite arrival")
                    == std::cmp::Ordering::Less
            {
                ready.swap(j, j - 1);
                j -= 1;
            }
        }
        self.delivered += ready.len() as u64;
    }

    /// Packets sent so far (including ones that were dropped).
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Packets delivered to the receiver so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total bytes put on the wire, including retransmissions and headers.
    #[must_use]
    pub fn bytes_on_wire(&self) -> u64 {
        self.bytes_on_wire
    }

    /// Total useful payload bytes offered by the application.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(t: &mut Transport) -> Vec<Packet> {
        t.poll(f64::INFINITY)
    }

    #[test]
    fn lsl_delivers_everything_eventually() {
        let mut t = Transport::new(TransportParams::lsl(), 7);
        for i in 0..1000 {
            t.send(vec![i as f32], f64::from(i) * 0.008, f64::from(i) * 0.008);
        }
        let got = drain_all(&mut t);
        assert_eq!(got.len(), 1000, "reliable transport must not lose data");
    }

    #[test]
    fn udp_drops_some_packets() {
        let mut t = Transport::new(TransportParams::udp(), 7);
        for i in 0..2000 {
            t.send(vec![i as f32], f64::from(i) * 0.008, f64::from(i) * 0.008);
        }
        let got = drain_all(&mut t);
        assert!(got.len() < 2000, "expected silent losses");
        assert!(got.len() > 1900, "loss rate should be ~1%");
    }

    #[test]
    fn packets_not_delivered_before_arrival_time() {
        let mut t = Transport::new(TransportParams::lsl(), 3);
        t.send(vec![1.0], 0.0, 0.0);
        assert!(t.poll(0.001).is_empty(), "base latency is 4 ms");
        assert_eq!(t.poll(1.0).len(), 1);
    }

    #[test]
    fn lsl_carries_timestamps_udp_does_not() {
        let mut lsl = Transport::new(TransportParams::lsl(), 1);
        lsl.send(vec![0.0], 0.0, 123.456);
        assert_eq!(drain_all(&mut lsl)[0].source_timestamp, Some(123.456));

        let mut udp = Transport::new(TransportParams::udp(), 1);
        udp.send(vec![0.0], 0.0, 123.456);
        let got = drain_all(&mut udp);
        if let Some(p) = got.first() {
            assert_eq!(p.source_timestamp, None);
        }
    }

    #[test]
    fn udp_wire_overhead_is_lower() {
        let mut lsl = Transport::new(TransportParams::lsl(), 1);
        let mut udp = Transport::new(TransportParams::udp(), 1);
        for i in 0..100 {
            lsl.send(vec![0.0; 16], f64::from(i), f64::from(i));
            udp.send(vec![0.0; 16], f64::from(i), f64::from(i));
        }
        assert!(udp.bytes_on_wire() < lsl.bytes_on_wire());
        assert_eq!(udp.payload_bytes(), lsl.payload_bytes());
    }

    #[test]
    fn poll_into_matches_poll_exactly() {
        // Two identically-seeded transports, one drained through each API:
        // the packet streams must be identical (same partition, same
        // stable ordering), including across partial drains.
        let mut a = Transport::new(TransportParams::udp(), 11);
        let mut b = Transport::new(TransportParams::udp(), 11);
        let mut via_into: Vec<Packet> = Vec::new();
        for i in 0..400 {
            let t = f64::from(i) * 0.008;
            a.send(vec![i as f32, -(i as f32)], t, t);
            b.send(vec![i as f32, -(i as f32)], t, t);
            if i % 50 == 49 {
                via_into.clear();
                b.poll_into(t, &mut via_into);
                assert_eq!(a.poll(t), via_into);
            }
        }
        via_into.clear();
        b.poll_into(f64::INFINITY, &mut via_into);
        assert_eq!(a.poll(f64::INFINITY), via_into);
        assert_eq!(a.delivered(), b.delivered());
    }

    #[test]
    fn poll_into_appends_after_existing_contents() {
        let mut t = Transport::new(TransportParams::lsl(), 3);
        t.send(vec![1.0], 0.0, 0.0);
        let mut out = Vec::new();
        t.poll_into(f64::INFINITY, &mut out);
        t.send(vec![2.0], 1.0, 1.0);
        t.poll_into(f64::INFINITY, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, vec![1.0]);
        assert_eq!(out[1].payload, vec![2.0]);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut t = Transport::new(TransportParams::udp(), seed);
            for i in 0..500 {
                t.send(vec![i as f32], f64::from(i) * 0.008, 0.0);
            }
            drain_all(&mut t).len()
        };
        assert_eq!(run(9), run(9));
    }
}
