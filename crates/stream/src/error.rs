use std::fmt;

/// Errors produced by the streaming substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StreamError {
    /// The outlet was closed before this operation.
    OutletClosed,
    /// A stream was declared with zero channels.
    ZeroChannels,
    /// A sample's channel count does not match the stream declaration.
    ChannelMismatch {
        /// Declared channel count.
        expected: usize,
        /// Provided channel count.
        actual: usize,
    },
    /// Clock synchronization needs at least one completed ping.
    NoSyncData,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::OutletClosed => write!(f, "outlet is closed"),
            StreamError::ZeroChannels => write!(f, "stream must have at least one channel"),
            StreamError::ChannelMismatch { expected, actual } => {
                write!(f, "sample has {actual} channels, stream declares {expected}")
            }
            StreamError::NoSyncData => write!(f, "no clock synchronization pings completed"),
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::StreamError>();
    }
}
