//! Stream outlets: the sender half of an LSL-style stream.

use serde::{Deserialize, Serialize};

use crate::clock::SimClock;
use crate::transport::Transport;
use crate::{Result, StreamError};

/// Static description of a stream, mirroring LSL's `StreamInfo`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamInfo {
    /// Stream name, e.g. `"CognitiveArm-EEG"`.
    pub name: String,
    /// Content type, e.g. `"EEG"`.
    pub content_type: String,
    /// Channel count per sample.
    pub channels: usize,
    /// Nominal sampling rate in Hz.
    pub nominal_rate: f64,
}

impl StreamInfo {
    /// Creates a stream description.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::ZeroChannels`] when `channels == 0`.
    pub fn new(
        name: impl Into<String>,
        content_type: impl Into<String>,
        channels: usize,
        nominal_rate: f64,
    ) -> Result<Self> {
        if channels == 0 {
            return Err(StreamError::ZeroChannels);
        }
        Ok(Self {
            name: name.into(),
            content_type: content_type.into(),
            channels,
            nominal_rate,
        })
    }

    /// The paper's EEG stream: 16 channels at 125 Hz.
    #[must_use]
    pub fn eeg_default() -> Self {
        Self {
            name: "CognitiveArm-EEG".to_owned(),
            content_type: "EEG".to_owned(),
            channels: 16,
            nominal_rate: 125.0,
        }
    }
}

/// The sender half of a stream: stamps samples with the sender's local
/// clock and pushes them into a transport.
#[derive(Debug)]
pub struct Outlet {
    info: StreamInfo,
    clock: SimClock,
    open: bool,
    pushed: u64,
}

impl Outlet {
    /// Creates an outlet for `info` on a host with the given clock.
    #[must_use]
    pub fn new(info: StreamInfo, clock: SimClock) -> Self {
        Self {
            info,
            clock,
            open: true,
            pushed: 0,
        }
    }

    /// Stream metadata.
    #[must_use]
    pub fn info(&self) -> &StreamInfo {
        &self.info
    }

    /// The sender's clock.
    #[must_use]
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Number of samples pushed so far.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Pushes one sample at global simulation time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::OutletClosed`] after [`Outlet::close`], and
    /// [`StreamError::ChannelMismatch`] when the sample width differs from
    /// the stream declaration.
    pub fn push(&mut self, transport: &mut Transport, sample: Vec<f32>, now: f64) -> Result<()> {
        if !self.open {
            return Err(StreamError::OutletClosed);
        }
        if sample.len() != self.info.channels {
            return Err(StreamError::ChannelMismatch {
                expected: self.info.channels,
                actual: sample.len(),
            });
        }
        let sender_ts = self.clock.local_time(now);
        transport.send(sample, now, sender_ts);
        self.pushed += 1;
        Ok(())
    }

    /// Closes the outlet; further pushes fail.
    pub fn close(&mut self) {
        self.open = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportParams;

    #[test]
    fn push_stamps_with_sender_clock() {
        let mut transport = Transport::new(TransportParams::lsl(), 1);
        let clock = SimClock::new(5.0, 0.0);
        let mut outlet = Outlet::new(StreamInfo::eeg_default(), clock);
        outlet.push(&mut transport, vec![0.0; 16], 1.0).unwrap();
        let got = transport.poll(f64::INFINITY);
        assert_eq!(got[0].source_timestamp, Some(6.0));
    }

    #[test]
    fn channel_mismatch_rejected() {
        let mut transport = Transport::new(TransportParams::lsl(), 1);
        let mut outlet = Outlet::new(StreamInfo::eeg_default(), SimClock::aligned());
        let err = outlet.push(&mut transport, vec![0.0; 4], 0.0).unwrap_err();
        assert_eq!(
            err,
            StreamError::ChannelMismatch {
                expected: 16,
                actual: 4
            }
        );
    }

    #[test]
    fn closed_outlet_rejects_pushes() {
        let mut transport = Transport::new(TransportParams::lsl(), 1);
        let mut outlet = Outlet::new(StreamInfo::eeg_default(), SimClock::aligned());
        outlet.close();
        assert_eq!(
            outlet.push(&mut transport, vec![0.0; 16], 0.0),
            Err(StreamError::OutletClosed)
        );
    }

    #[test]
    fn zero_channels_rejected_at_declaration() {
        assert_eq!(
            StreamInfo::new("x", "EEG", 0, 125.0).unwrap_err(),
            StreamError::ZeroChannels
        );
    }
}
