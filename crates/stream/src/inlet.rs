//! Stream inlets: the receiver half, with clock correction and dejitter.

use crate::clock::{ClockSync, SimClock};
use crate::transport::{Packet, Transport};
use crate::Result;

/// A sample as seen by the receiving application.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedSample {
    /// Sequence number assigned at the source.
    pub seq: u64,
    /// Channel values.
    pub payload: Vec<f32>,
    /// Source timestamp mapped into the *receiver's* clock, when the
    /// protocol carries timestamps and synchronization has converged.
    pub corrected_timestamp: Option<f64>,
    /// Receiver local time at which the sample was handed to the app.
    pub receive_time: f64,
}

/// The receiver half of a stream.
///
/// For timestamped protocols the inlet maintains an LSL-style [`ClockSync`]
/// and maps source timestamps into receiver time, which is what allows EEG
/// samples to be aligned with cue events on the recording host (Sec. III-B2).
#[derive(Debug)]
pub struct Inlet {
    clock: SimClock,
    sync: ClockSync,
    received: u64,
    last_seq: Option<u64>,
    out_of_order: u64,
    /// Persistent packet buffer for [`Inlet::pull_into`]: the transport
    /// drains into it, the samples move out of it — no per-pull allocation
    /// once warm.
    pkt_scratch: Vec<Packet>,
}

impl Inlet {
    /// Creates an inlet on a host with the given clock.
    #[must_use]
    pub fn new(clock: SimClock) -> Self {
        Self {
            clock,
            sync: ClockSync::new(16),
            received: 0,
            last_seq: None,
            out_of_order: 0,
            pkt_scratch: Vec::new(),
        }
    }

    /// The receiver's clock.
    #[must_use]
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Feeds a completed clock-sync ping (driven by the simulation loop).
    pub fn record_ping(&mut self, ping: crate::clock::PingSample) {
        self.sync.push(ping);
    }

    /// Current sender→receiver clock-offset estimate.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StreamError::NoSyncData`] before any ping completes.
    pub fn clock_offset(&self) -> Result<f64> {
        self.sync.offset()
    }

    /// Pulls every sample available at global time `now`.
    pub fn pull(&mut self, transport: &mut Transport, now: f64) -> Vec<ReceivedSample> {
        let mut out = Vec::new();
        self.pull_into(transport, now, &mut out);
        out
    }

    /// [`Inlet::pull`] into a caller-owned buffer: available samples are
    /// **appended** to `out` in arrival order, payloads moved straight
    /// from the wire packets. With a reused `out` the steady-state drain —
    /// transport poll included — performs zero heap allocations.
    pub fn pull_into(
        &mut self,
        transport: &mut Transport,
        now: f64,
        out: &mut Vec<ReceivedSample>,
    ) {
        let receive_time = self.clock.local_time(now);
        let offset = self.sync.offset().ok();
        self.pkt_scratch.clear();
        transport.poll_into(now, &mut self.pkt_scratch);
        for Packet {
            seq,
            source_timestamp,
            payload,
            ..
        } in self.pkt_scratch.drain(..)
        {
            if let Some(last) = self.last_seq {
                if seq <= last {
                    self.out_of_order += 1;
                }
            }
            self.last_seq = Some(self.last_seq.map_or(seq, |l| l.max(seq)));
            self.received += 1;
            let corrected_timestamp = match (source_timestamp, offset) {
                // Sender local ts minus (sender - receiver) offset = receiver time.
                (Some(ts), Some(off)) => Some(ts - off),
                _ => None,
            };
            out.push(ReceivedSample {
                seq,
                payload,
                corrected_timestamp,
                receive_time,
            });
        }
    }

    /// Samples received so far.
    #[must_use]
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Count of samples that arrived out of order.
    #[must_use]
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::PingSample;
    use crate::outlet::{Outlet, StreamInfo};
    use crate::transport::TransportParams;

    #[test]
    fn corrected_timestamps_land_in_receiver_time() {
        // Sender clock +2 s, receiver aligned; perfect symmetric ping.
        let sender = SimClock::new(2.0, 0.0);
        let receiver = SimClock::aligned();
        let mut transport = Transport::new(TransportParams::lsl(), 5);
        let mut outlet = Outlet::new(StreamInfo::eeg_default(), sender);
        let mut inlet = Inlet::new(receiver);

        inlet.record_ping(PingSample {
            t0: receiver.local_time(0.0),
            t1: sender.local_time(0.004),
            t2: sender.local_time(0.005),
            t3: receiver.local_time(0.009),
        });

        outlet.push(&mut transport, vec![0.0; 16], 1.0).unwrap();
        let got = inlet.pull(&mut transport, 2.0);
        assert_eq!(got.len(), 1);
        // Sample was emitted at global t=1.0; corrected timestamp should be
        // ~1.0 in receiver time.
        let ts = got[0].corrected_timestamp.unwrap();
        assert!((ts - 1.0).abs() < 1e-9, "corrected ts {ts}");
    }

    #[test]
    fn without_sync_no_corrected_timestamp() {
        let mut transport = Transport::new(TransportParams::lsl(), 5);
        let mut outlet = Outlet::new(StreamInfo::eeg_default(), SimClock::aligned());
        let mut inlet = Inlet::new(SimClock::aligned());
        outlet.push(&mut transport, vec![0.0; 16], 0.0).unwrap();
        let got = inlet.pull(&mut transport, 1.0);
        assert_eq!(got[0].corrected_timestamp, None);
    }

    #[test]
    fn pull_into_matches_pull_exactly() {
        let run = |into: bool| {
            let mut transport = Transport::new(TransportParams::udp(), 13);
            let mut outlet = Outlet::new(StreamInfo::eeg_default(), SimClock::aligned());
            let mut inlet = Inlet::new(SimClock::aligned());
            let mut got: Vec<ReceivedSample> = Vec::new();
            for i in 0..300 {
                let t = f64::from(i) * 0.008;
                outlet.push(&mut transport, vec![i as f32; 16], t).unwrap();
                if i % 40 == 39 {
                    if into {
                        inlet.pull_into(&mut transport, t, &mut got);
                    } else {
                        got.extend(inlet.pull(&mut transport, t));
                    }
                }
            }
            // Large but finite: `local_time(∞)` would be NaN, which is
            // never equal to itself.
            if into {
                inlet.pull_into(&mut transport, 1e9, &mut got);
            } else {
                got.extend(inlet.pull(&mut transport, 1e9));
            }
            (got, inlet.received(), inlet.out_of_order())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn counts_received_samples() {
        let mut transport = Transport::new(TransportParams::lsl(), 5);
        let mut outlet = Outlet::new(StreamInfo::eeg_default(), SimClock::aligned());
        let mut inlet = Inlet::new(SimClock::aligned());
        for i in 0..10 {
            outlet
                .push(&mut transport, vec![0.0; 16], f64::from(i) * 0.008)
                .unwrap();
        }
        let got = inlet.pull(&mut transport, 10.0);
        assert_eq!(got.len() as u64, inlet.received());
    }
}
