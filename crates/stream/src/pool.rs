//! The packet-buffer pool: payload `Vec<f32>`s recycled through the wire.
//!
//! The streaming loop used to allocate one fresh payload vector per sample
//! pushed into an [`crate::outlet::Outlet`] and drop it after the dejitter
//! pass consumed it — at 125 Hz per session that is the last steady-state
//! allocation between acquisition and classification. A [`PacketPool`]
//! closes the cycle: the sender **takes** a cleared buffer, the payload
//! moves through [`crate::transport::Transport`] and
//! [`crate::inlet::Inlet`] by ownership (never copied), and the consumer
//! **puts** it back once the sample has been filtered. Packets a lossy
//! transport drops on the floor are recycled at the drop site (see
//! [`crate::transport::Transport::set_pool`]), so the cycle loses no
//! buffers to simulated packet loss either.
//!
//! Once the pool has grown to the wire's peak in-flight depth, a steady
//! streaming tick performs **zero** payload allocations
//! (`tests/tests/allocation.rs` locks this with a counting allocator).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A free-list of payload buffers shared by the sender and receiver halves
/// of a wire. Cheap to share via `Arc`; the lock is uncontended in the
/// per-session streaming shape (both halves run on one thread).
#[derive(Debug, Default)]
pub struct PacketPool {
    free: Mutex<Vec<Vec<f32>>>,
    /// Buffers handed out that the free list could not serve (each is one
    /// true heap allocation).
    allocated: AtomicU64,
    /// Buffers handed out from the free list (zero-allocation takes).
    reused: AtomicU64,
    /// Buffers returned to the free list.
    recycled: AtomicU64,
}

impl PacketPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out an empty buffer with room for at least `capacity` values:
    /// a recycled one when the free list has any (growing it if a smaller
    /// buffer comes back first), a fresh allocation otherwise.
    #[must_use]
    pub fn take(&self, capacity: usize) -> Vec<f32> {
        let recycled = self.free.lock().expect("pool lock").pop();
        match recycled {
            Some(mut buf) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                if buf.capacity() < capacity {
                    buf.reserve(capacity - buf.len());
                }
                buf
            }
            None => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Returns a consumed payload to the free list (cleared, capacity
    /// kept).
    pub fn put(&self, mut buf: Vec<f32>) {
        buf.clear();
        self.recycled.fetch_add(1, Ordering::Relaxed);
        self.free.lock().expect("pool lock").push(buf);
    }

    /// Buffers currently on the free list.
    #[must_use]
    pub fn free_len(&self) -> usize {
        self.free.lock().expect("pool lock").len()
    }

    /// Takes served by a fresh heap allocation (pool misses).
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Takes served from the free list (pool hits).
    #[must_use]
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Buffers returned via [`PacketPool::put`].
    #[must_use]
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_prefers_recycled_buffers() {
        let pool = PacketPool::new();
        let a = pool.take(16);
        assert_eq!(pool.allocated(), 1);
        pool.put(a);
        let b = pool.take(16);
        assert_eq!(pool.allocated(), 1, "second take must reuse");
        assert_eq!(pool.reused(), 1);
        assert!(b.is_empty() && b.capacity() >= 16);
    }

    #[test]
    fn put_clears_contents_but_keeps_capacity() {
        let pool = PacketPool::new();
        let mut buf = pool.take(4);
        buf.extend_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        pool.put(buf);
        let again = pool.take(4);
        assert!(again.is_empty());
        assert!(again.capacity() >= 4);
    }

    #[test]
    fn undersized_recycled_buffer_is_grown() {
        let pool = PacketPool::new();
        pool.put(Vec::with_capacity(2));
        let buf = pool.take(64);
        assert!(buf.capacity() >= 64);
    }

    #[test]
    fn stats_track_the_cycle() {
        let pool = PacketPool::new();
        let bufs: Vec<_> = (0..3).map(|_| pool.take(8)).collect();
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.allocated(), 3);
        assert_eq!(pool.recycled(), 3);
        assert_eq!(pool.free_len(), 3);
        let _ = pool.take(8);
        assert_eq!(pool.reused(), 1);
        assert_eq!(pool.free_len(), 2);
    }
}
