//! Synthetic EEG acquisition substrate for the CognitiveArm reproduction.
//!
//! The paper acquires 16-channel EEG at 125 Hz from an OpenBCI UltraCortex
//! Mark IV (Cyton + Daisy) headset through BrainFlow (Sec. III-A). We do not
//! have that hardware, so this crate provides the closest synthetic
//! equivalent that exercises the same downstream code paths:
//!
//! * [`montage`] — the 10-20 electrode layout of Fig. 3, with scalp
//!   coordinates used to couple sources to channels.
//! * [`signal`] — a physiologically-motivated generative model of
//!   motor-imagery EEG: 1/f background, per-subject alpha (mu) rhythm with
//!   event-related desynchronization (ERD) contralateral to the imagined
//!   hand, eye-blink and EMG artifacts, 50 Hz line noise and slow drift.
//! * [`board`] — a board-agnostic acquisition API playing BrainFlow's role:
//!   a ring-buffered streaming board you start, poll and stop.
//! * [`dataset`] — the experimental protocol of Sec. III-B: cue-based
//!   recording blocks, annotation with transition periods, sliding-window
//!   segmentation, class balancing and leave-one-subject-out splits.
//!
//! # Examples
//!
//! Generate one subject's labelled dataset exactly like the paper's
//! collection protocol:
//!
//! ```
//! use eeg::dataset::{Protocol, SubjectRecording};
//! use eeg::signal::SubjectParams;
//!
//! # fn main() -> Result<(), eeg::EegError> {
//! let protocol = Protocol::paper_default();
//! let subject = SubjectParams::sampled(42);
//! let recording = SubjectRecording::generate(&protocol, &subject, 7)?;
//! let windows = recording.windowed(190, 25)?;
//! assert!(windows.len() > 100);
//! # Ok(())
//! # }
//! ```

pub mod board;
pub mod dataset;
pub mod montage;
pub mod signal;
pub mod types;

mod error;

pub use error::EegError;
pub use types::{Action, CHANNELS, SAMPLE_RATE};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, EegError>;
