use std::fmt;

/// Errors produced by the EEG substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EegError {
    /// The board must be streaming for this operation.
    NotStreaming,
    /// The board is already streaming.
    AlreadyStreaming,
    /// A protocol was configured with no task blocks.
    EmptyProtocol,
    /// Window parameters yield no windows for the recording length.
    BadWindowing {
        /// Window size in samples.
        size: usize,
        /// Step in samples.
        step: usize,
    },
    /// An underlying DSP operation failed.
    Dsp(dsp::DspError),
    /// Requested subject index does not exist in the study.
    UnknownSubject(usize),
}

impl fmt::Display for EegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EegError::NotStreaming => write!(f, "board is not streaming"),
            EegError::AlreadyStreaming => write!(f, "board is already streaming"),
            EegError::EmptyProtocol => write!(f, "protocol contains no task blocks"),
            EegError::BadWindowing { size, step } => {
                write!(f, "window size {size} / step {step} produce no windows")
            }
            EegError::Dsp(e) => write!(f, "dsp error: {e}"),
            EegError::UnknownSubject(i) => write!(f, "subject index {i} is out of range"),
        }
    }
}

impl std::error::Error for EegError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EegError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dsp::DspError> for EegError {
    fn from(e: dsp::DspError) -> Self {
        EegError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsp_error_converts_and_chains() {
        let e: EegError = dsp::DspError::ZeroOrder.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("dsp"));
    }
}
