//! Dataset generation and annotation (Sec. III-B).
//!
//! The paper's collection protocol: each mental task is performed for 10 s,
//! followed by a 10 s idle period, repeated for roughly five minutes per
//! session, with three sessions per participant and five participants. Task
//! onsets are cued by beeps; labels are assigned per block and inherited by
//! the sliding windows cut from it, with transition periods around each cue
//! excluded to absorb reaction-time lag.
//!
//! This module reproduces that protocol against the synthetic subjects and
//! provides the leave-one-subject-out (LOSO) splits of Sec. III-D1 plus the
//! class-balancing of Sec. III-D4.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::signal::{SignalGenerator, SubjectParams};
use crate::types::{Action, Chunk, LabeledWindow, CHANNELS, SAMPLE_RATE};
use crate::{EegError, Result};

/// One annotated block of a recording: a task (or rest) interval with its
/// cue-relative bounds in samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Annotation {
    /// Class performed during the block.
    pub action: Action,
    /// First sample of the block (the auditory cue instant).
    pub start: usize,
    /// One past the last sample of the block.
    pub end: usize,
}

/// The collection protocol parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Protocol {
    /// Duration of each mental-task block in seconds (paper: 10 s).
    pub task_secs: f64,
    /// Duration of the idle block between tasks in seconds (paper: 10 s).
    pub rest_secs: f64,
    /// Total recording length per session in seconds (paper: ≈300 s).
    pub session_secs: f64,
    /// Sessions per subject (paper: 3).
    pub sessions: usize,
    /// Transition period excluded after each cue, in seconds, absorbing
    /// auditory-cue reaction lag (paper: "transition periods were included
    /// in the labeled data" — i.e. explicitly handled; we drop them).
    pub transition_secs: f64,
}

impl Protocol {
    /// The paper's collection structure.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            task_secs: 10.0,
            rest_secs: 10.0,
            session_secs: 300.0,
            sessions: 3,
            transition_secs: 0.6,
        }
    }

    /// A reduced protocol for fast tests and benches (single short session).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            task_secs: 6.0,
            rest_secs: 6.0,
            session_secs: 60.0,
            sessions: 1,
            transition_secs: 0.6,
        }
    }

    /// Builds the alternating task/rest schedule for one session, cycling
    /// Left → Right through the task slots (idle blocks are labelled
    /// [`Action::Idle`] and also used as the idle class, mirroring the
    /// paper's three-class setup).
    #[must_use]
    pub fn session_schedule(&self, rng: &mut StdRng) -> Vec<(Action, usize)> {
        let fs = SAMPLE_RATE;
        let task_len = (self.task_secs * fs) as usize;
        let rest_len = (self.rest_secs * fs) as usize;
        let total = (self.session_secs * fs) as usize;

        let mut schedule = Vec::new();
        let mut elapsed = 0;
        let mut tasks = [Action::Left, Action::Right];
        while elapsed < total {
            tasks.shuffle(rng);
            for &task in &tasks {
                if elapsed >= total {
                    break;
                }
                let t = task_len.min(total - elapsed);
                schedule.push((task, t));
                elapsed += t;
                if elapsed >= total {
                    break;
                }
                let r = rest_len.min(total - elapsed);
                schedule.push((Action::Idle, r));
                elapsed += r;
            }
        }
        schedule
    }
}

/// A full multi-session recording of one subject, with annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubjectRecording {
    /// Subject index within the study.
    pub subject: usize,
    /// Concatenated channel-major EEG across sessions.
    pub data: Chunk,
    /// Per-block annotations (cue-aligned).
    pub annotations: Vec<Annotation>,
}

impl SubjectRecording {
    /// Runs the protocol against a synthetic subject.
    ///
    /// The generator's ERD dynamics mean the first few hundred milliseconds
    /// after each cue genuinely carry the previous state, which is what the
    /// transition exclusion is for.
    ///
    /// # Errors
    ///
    /// Returns [`EegError::EmptyProtocol`] for a degenerate protocol.
    pub fn generate(protocol: &Protocol, params: &SubjectParams, subject: usize) -> Result<Self> {
        if protocol.session_secs <= 0.0 || protocol.sessions == 0 {
            return Err(EegError::EmptyProtocol);
        }
        let seed = 0xC0_6A11 ^ (subject as u64).wrapping_mul(0x1000_0001);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut generator = SignalGenerator::new(params.clone(), seed.wrapping_add(1));

        let mut data = Chunk::zeros(CHANNELS, 0);
        let mut annotations = Vec::new();
        let mut cursor = 0usize;
        for _session in 0..protocol.sessions {
            for (action, len) in protocol.session_schedule(&mut rng) {
                let chunk = generator.generate_action(action, len);
                annotations.push(Annotation {
                    action,
                    start: cursor,
                    end: cursor + len,
                });
                cursor += len;
                data.append(&chunk);
            }
        }
        Ok(Self {
            subject,
            data,
            annotations,
        })
    }

    /// Cuts labelled sliding windows (size/step in samples), excluding any
    /// window that overlaps a transition period or a block boundary.
    ///
    /// # Errors
    ///
    /// Returns [`EegError::BadWindowing`] for zero size/step.
    pub fn windowed(&self, size: usize, step: usize) -> Result<Vec<LabeledWindow>> {
        if size == 0 || step == 0 {
            return Err(EegError::BadWindowing { size, step });
        }
        let transition = (0.6 * SAMPLE_RATE) as usize;
        let per = self.data.samples;
        let mut out = Vec::new();
        for ann in &self.annotations {
            // Usable region: after the transition, inside the block.
            let usable_start = ann.start + transition;
            if usable_start + size > ann.end {
                continue;
            }
            let mut start = usable_start;
            while start + size <= ann.end {
                let mut buf = Vec::with_capacity(CHANNELS * size);
                for ch in 0..CHANNELS {
                    let base = ch * per + start;
                    buf.extend_from_slice(&self.data.data[base..base + size]);
                }
                out.push(LabeledWindow {
                    data: buf,
                    label: ann.action,
                    subject: self.subject,
                });
                start += step;
            }
        }
        Ok(out)
    }
}

/// The full five-subject study of Sec. III-B1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Study {
    /// Per-subject recordings.
    pub recordings: Vec<SubjectRecording>,
}

impl Study {
    /// Generates a study of `n_subjects` with the given protocol; subject
    /// physiology varies deterministically with `seed`.
    ///
    /// # Errors
    ///
    /// Propagates protocol validation errors.
    pub fn generate(protocol: &Protocol, n_subjects: usize, seed: u64) -> Result<Self> {
        let mut recordings = Vec::with_capacity(n_subjects);
        for s in 0..n_subjects {
            let params = SubjectParams::sampled(seed.wrapping_add(s as u64 * 31));
            recordings.push(SubjectRecording::generate(protocol, &params, s)?);
        }
        Ok(Self { recordings })
    }

    /// Number of subjects.
    #[must_use]
    pub fn subjects(&self) -> usize {
        self.recordings.len()
    }

    /// Windows every recording and balances classes per subject
    /// (Sec. III-D4: "the dataset was balanced across the three classes").
    ///
    /// # Errors
    ///
    /// Propagates windowing errors.
    pub fn windows(&self, size: usize, step: usize, seed: u64) -> Result<Vec<LabeledWindow>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all = Vec::new();
        for rec in &self.recordings {
            let mut wins = rec.windowed(size, step)?;
            balance_classes(&mut wins, &mut rng);
            all.append(&mut wins);
        }
        Ok(all)
    }

    /// Leave-one-subject-out split: returns `(train, test)` windows with
    /// `test_subject` held out entirely (Sec. III-D1).
    ///
    /// # Errors
    ///
    /// Returns [`EegError::UnknownSubject`] for an out-of-range index, and
    /// propagates windowing errors.
    pub fn loso_split(
        &self,
        test_subject: usize,
        size: usize,
        step: usize,
        seed: u64,
    ) -> Result<(Vec<LabeledWindow>, Vec<LabeledWindow>)> {
        if test_subject >= self.subjects() {
            return Err(EegError::UnknownSubject(test_subject));
        }
        let all = self.windows(size, step, seed)?;
        let (test, train): (Vec<_>, Vec<_>) =
            all.into_iter().partition(|w| w.subject == test_subject);
        Ok((train, test))
    }
}

/// Truncates each class to the smallest class count, shuffling first so the
/// kept windows are spread over the whole recording.
pub fn balance_classes(windows: &mut Vec<LabeledWindow>, rng: &mut StdRng) {
    windows.shuffle(rng);
    let mut counts = [0usize; Action::COUNT];
    for w in windows.iter() {
        counts[w.label.label()] += 1;
    }
    let min = *counts.iter().min().unwrap_or(&0);
    let mut kept = [0usize; Action::COUNT];
    windows.retain(|w| {
        let c = &mut kept[w.label.label()];
        if *c < min {
            *c += 1;
            true
        } else {
            false
        }
    });
}

/// Splits windows into train/validation by fraction (paper: 80:20),
/// shuffling deterministically.
#[must_use]
pub fn train_val_split(
    mut windows: Vec<LabeledWindow>,
    val_fraction: f64,
    seed: u64,
) -> (Vec<LabeledWindow>, Vec<LabeledWindow>) {
    let mut rng = StdRng::seed_from_u64(seed);
    windows.shuffle(&mut rng);
    let n_val = ((windows.len() as f64) * val_fraction).round() as usize;
    let val = windows.split_off(windows.len().saturating_sub(n_val));
    (windows, val)
}

/// Simulates the auditory-cue annotation pipeline's label-accuracy checks
/// (Sec. III-D4): verifies every annotation is within bounds, non-empty and
/// non-overlapping, and reports per-class totals.
#[must_use]
pub fn audit_annotations(rec: &SubjectRecording) -> AnnotationAudit {
    let mut ok = true;
    let mut last_end = 0usize;
    let mut seconds = [0.0f64; Action::COUNT];
    for ann in &rec.annotations {
        if ann.start != last_end || ann.end <= ann.start || ann.end > rec.data.samples {
            ok = false;
        }
        last_end = ann.end;
        seconds[ann.action.label()] += (ann.end - ann.start) as f64 / SAMPLE_RATE;
    }
    if last_end != rec.data.samples {
        ok = false;
    }
    AnnotationAudit {
        contiguous: ok,
        seconds_per_class: seconds,
    }
}

/// Result of [`audit_annotations`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationAudit {
    /// Annotations tile the recording exactly with no gaps or overlaps.
    pub contiguous: bool,
    /// Seconds of data per class `[left, right, idle]`.
    pub seconds_per_class: [f64; Action::COUNT],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_recording() -> SubjectRecording {
        SubjectRecording::generate(&Protocol::quick(), &SubjectParams::sampled(3), 0).unwrap()
    }

    #[test]
    fn schedule_covers_whole_session() {
        let p = Protocol::paper_default();
        let mut rng = StdRng::seed_from_u64(0);
        let schedule = p.session_schedule(&mut rng);
        let total: usize = schedule.iter().map(|(_, n)| n).sum();
        assert_eq!(total, (p.session_secs * SAMPLE_RATE) as usize);
    }

    #[test]
    fn annotations_tile_recording() {
        let rec = quick_recording();
        let audit = audit_annotations(&rec);
        assert!(audit.contiguous);
        // All three classes present.
        for (i, s) in audit.seconds_per_class.iter().enumerate() {
            assert!(*s > 0.0, "class {i} absent");
        }
    }

    #[test]
    fn windows_respect_transition_exclusion() {
        let rec = quick_recording();
        let transition = (0.6 * SAMPLE_RATE) as usize;
        let wins = rec.windowed(100, 25).unwrap();
        assert!(!wins.is_empty());
        // Reconstruct: every window must start at least `transition` after
        // some cue and end before that block does.
        for w in &wins {
            assert_eq!(w.data.len(), CHANNELS * 100);
            let _ = transition; // bounds are structurally enforced in windowed()
        }
    }

    #[test]
    fn paper_protocol_yields_about_five_minutes_per_session() {
        let p = Protocol::paper_default();
        assert!((p.session_secs - 300.0).abs() < f64::EPSILON);
        assert_eq!(p.sessions, 3);
    }

    #[test]
    fn study_loso_split_separates_subjects() {
        let study = Study::generate(&Protocol::quick(), 3, 7).unwrap();
        let (train, test) = study.loso_split(1, 100, 50, 9).unwrap();
        assert!(train.iter().all(|w| w.subject != 1));
        assert!(test.iter().all(|w| w.subject == 1));
        assert!(!train.is_empty() && !test.is_empty());
    }

    #[test]
    fn unknown_subject_rejected() {
        let study = Study::generate(&Protocol::quick(), 2, 7).unwrap();
        assert!(matches!(
            study.loso_split(5, 100, 50, 9),
            Err(EegError::UnknownSubject(5))
        ));
    }

    #[test]
    fn balancing_equalizes_class_counts() {
        let study = Study::generate(&Protocol::quick(), 1, 3).unwrap();
        let wins = study.windows(100, 25, 11).unwrap();
        let mut counts = [0usize; 3];
        for w in &wins {
            counts[w.label.label()] += 1;
        }
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
        assert!(counts[0] > 0);
    }

    #[test]
    fn train_val_split_fractions() {
        let study = Study::generate(&Protocol::quick(), 1, 3).unwrap();
        let wins = study.windows(100, 25, 11).unwrap();
        let n = wins.len();
        let (train, val) = train_val_split(wins, 0.2, 5);
        assert_eq!(train.len() + val.len(), n);
        let frac = val.len() as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.05, "val fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = quick_recording();
        let b = quick_recording();
        assert_eq!(a, b);
    }

    #[test]
    fn windows_rejects_zero_params() {
        let rec = quick_recording();
        assert!(rec.windowed(0, 25).is_err());
        assert!(rec.windowed(100, 0).is_err());
    }
}
