//! Core types shared across the EEG substrate.

use serde::{Deserialize, Serialize};

/// Sampling rate of the Cyton + Daisy configuration, in Hz (Sec. III-A2).
pub const SAMPLE_RATE: f64 = 125.0;

/// Number of EEG channels on the Cyton + Daisy stack (Sec. III-A1).
pub const CHANNELS: usize = 16;

/// The three core mental-task classes (Sec. III-B1).
///
/// Class indices are stable and used as labels by every model:
/// `Left = 0`, `Right = 1`, `Idle = 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Action {
    /// Imagined movement of the left hand to the left.
    Left,
    /// Imagined movement of the right hand to the right.
    Right,
    /// Calm, unfocused state.
    Idle,
}

impl Action {
    /// All classes in label order.
    pub const ALL: [Action; 3] = [Action::Left, Action::Right, Action::Idle];

    /// Number of classes.
    pub const COUNT: usize = 3;

    /// Stable class index used as the training label.
    #[must_use]
    pub fn label(self) -> usize {
        match self {
            Action::Left => 0,
            Action::Right => 1,
            Action::Idle => 2,
        }
    }

    /// Inverse of [`Action::label`].
    #[must_use]
    pub fn from_label(label: usize) -> Option<Action> {
        match label {
            0 => Some(Action::Left),
            1 => Some(Action::Right),
            2 => Some(Action::Idle),
            _ => None,
        }
    }
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Action::Left => "left",
            Action::Right => "right",
            Action::Idle => "idle",
        };
        f.write_str(s)
    }
}

/// A multichannel chunk of EEG laid out channel-major:
/// `channels` rows of `samples` contiguous values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    /// Number of channels.
    pub channels: usize,
    /// Samples per channel.
    pub samples: usize,
    /// Channel-major data, `channels * samples` long.
    pub data: Vec<f32>,
}

impl Chunk {
    /// Creates an all-zero chunk.
    #[must_use]
    pub fn zeros(channels: usize, samples: usize) -> Self {
        Self {
            channels,
            samples,
            data: vec![0.0; channels * samples],
        }
    }

    /// Borrow of one channel's samples.
    ///
    /// # Panics
    ///
    /// Panics if `ch >= self.channels`.
    #[must_use]
    pub fn channel(&self, ch: usize) -> &[f32] {
        assert!(ch < self.channels, "channel {ch} out of range");
        &self.data[ch * self.samples..(ch + 1) * self.samples]
    }

    /// Mutable borrow of one channel's samples.
    ///
    /// # Panics
    ///
    /// Panics if `ch >= self.channels`.
    pub fn channel_mut(&mut self, ch: usize) -> &mut [f32] {
        assert!(ch < self.channels, "channel {ch} out of range");
        &mut self.data[ch * self.samples..(ch + 1) * self.samples]
    }

    /// Appends another chunk with the same channel count.
    ///
    /// # Panics
    ///
    /// Panics if channel counts differ.
    pub fn append(&mut self, other: &Chunk) {
        assert_eq!(self.channels, other.channels, "channel count mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        for ch in 0..self.channels {
            data.extend_from_slice(self.channel(ch));
            data.extend_from_slice(other.channel(ch));
        }
        self.samples += other.samples;
        self.data = data;
    }
}

/// One labelled training window: channel-major samples plus its class and
/// originating subject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledWindow {
    /// Channel-major window data (`CHANNELS * window_size`).
    pub data: Vec<f32>,
    /// Ground-truth class.
    pub label: Action,
    /// Index of the subject the window came from.
    pub subject: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for a in Action::ALL {
            assert_eq!(Action::from_label(a.label()), Some(a));
        }
        assert_eq!(Action::from_label(3), None);
    }

    #[test]
    fn chunk_channel_views() {
        let mut c = Chunk::zeros(2, 3);
        c.channel_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(c.channel(0), &[0.0, 0.0, 0.0]);
        assert_eq!(c.channel(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn chunk_append_preserves_channel_major_layout() {
        let mut a = Chunk {
            channels: 2,
            samples: 2,
            data: vec![1.0, 2.0, 10.0, 20.0],
        };
        let b = Chunk {
            channels: 2,
            samples: 1,
            data: vec![3.0, 30.0],
        };
        a.append(&b);
        assert_eq!(a.samples, 3);
        assert_eq!(a.channel(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.channel(1), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Action::Left.to_string(), "left");
        assert_eq!(Action::Idle.to_string(), "idle");
    }
}
