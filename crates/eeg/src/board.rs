//! Board-agnostic acquisition API (BrainFlow's role, Sec. III-A1).
//!
//! BrainFlow exposes boards behind a uniform prepare/start/poll/stop API
//! with an internal ring buffer. We reproduce that contract so the rest of
//! the pipeline is written exactly as it would be against real hardware; the
//! only difference is that our [`SimulatedBoard`] advances simulated time
//! explicitly (deterministically) instead of being driven by a radio.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::signal::{SignalGenerator, SubjectParams};
use crate::types::{Action, Chunk, CHANNELS, SAMPLE_RATE};
use crate::{EegError, Result};

/// Static description of a board, mirroring BrainFlow's board descriptors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardDescriptor {
    /// Human-readable board name.
    pub name: String,
    /// Number of EEG channels.
    pub eeg_channels: usize,
    /// Sampling rate in Hz.
    pub sample_rate: f64,
    /// Ring-buffer capacity in samples.
    pub buffer_size: usize,
}

impl BoardDescriptor {
    /// The Cyton + Daisy stack used by the paper.
    #[must_use]
    pub fn cyton_daisy() -> Self {
        Self {
            name: "OpenBCI Cyton+Daisy (simulated)".to_owned(),
            eeg_channels: CHANNELS,
            sample_rate: SAMPLE_RATE,
            buffer_size: 45_000, // 6 minutes at 125 Hz
        }
    }
}

/// The uniform acquisition interface the pipeline is written against.
///
/// Mirrors the subset of BrainFlow's `BoardShim` that CognitiveArm uses:
/// session preparation, stream control, and the two polling flavours
/// (drain everything vs. peek at the latest `n`).
pub trait Board {
    /// Board metadata.
    fn descriptor(&self) -> &BoardDescriptor;

    /// Starts the data stream.
    ///
    /// # Errors
    ///
    /// Returns [`EegError::AlreadyStreaming`] when called twice.
    fn start_stream(&mut self) -> Result<()>;

    /// Stops the data stream.
    ///
    /// # Errors
    ///
    /// Returns [`EegError::NotStreaming`] when the stream is not running.
    fn stop_stream(&mut self) -> Result<()>;

    /// Whether the stream is currently running.
    fn is_streaming(&self) -> bool;

    /// Removes and returns all buffered data (BrainFlow `get_board_data`).
    ///
    /// # Errors
    ///
    /// Returns [`EegError::NotStreaming`] when the stream is not running.
    fn drain(&mut self) -> Result<Chunk>;

    /// Returns the newest `n` samples without removing them
    /// (BrainFlow `get_current_board_data`).
    ///
    /// # Errors
    ///
    /// Returns [`EegError::NotStreaming`] when the stream is not running.
    fn peek_latest(&self, n: usize) -> Result<Chunk>;
}

/// Ring buffer of multichannel samples.
#[derive(Debug)]
struct RingBuffer {
    /// Sample-major storage: each entry is one 16-channel frame.
    frames: Vec<[f32; CHANNELS]>,
    capacity: usize,
    /// Index of the oldest frame.
    head: usize,
    len: usize,
}

impl RingBuffer {
    fn new(capacity: usize) -> Self {
        Self {
            frames: vec![[0.0; CHANNELS]; capacity],
            capacity,
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, frame: [f32; CHANNELS]) {
        let idx = (self.head + self.len) % self.capacity;
        self.frames[idx] = frame;
        if self.len < self.capacity {
            self.len += 1;
        } else {
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn to_chunk(&self, take_last: Option<usize>) -> Chunk {
        let n = take_last.map_or(self.len, |k| k.min(self.len));
        let skip = self.len - n;
        let mut chunk = Chunk::zeros(CHANNELS, n);
        for i in 0..n {
            let idx = (self.head + skip + i) % self.capacity;
            for ch in 0..CHANNELS {
                chunk.data[ch * n + i] = self.frames[idx][ch];
            }
        }
        chunk
    }

    fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

/// A simulated Cyton + Daisy board backed by the [`SignalGenerator`].
///
/// Time does not flow on its own: call [`SimulatedBoard::advance`] to
/// simulate the radio delivering `n` new samples (a real-time runner calls
/// this from its clock; tests call it directly).
#[derive(Debug)]
pub struct SimulatedBoard {
    descriptor: BoardDescriptor,
    generator: Mutex<SignalGenerator>,
    buffer: Mutex<RingBuffer>,
    streaming: bool,
    total_samples: u64,
}

impl SimulatedBoard {
    /// Creates a board simulating the given subject, with the stock
    /// Cyton+Daisy 6-minute ring (45 000 frames, ~2.9 MB).
    #[must_use]
    pub fn new(params: SubjectParams, seed: u64) -> Self {
        Self::with_buffer_capacity(params, seed, BoardDescriptor::cyton_daisy().buffer_size)
    }

    /// Creates a board whose ring holds `frames` samples. A pipeline that
    /// drains the board every period only ever needs a period's worth of
    /// frames buffered; serving fleets size the ring to the consumption
    /// window instead of the 6-minute hardware default, cutting per-session
    /// scratch from ~2.9 MB to a few KB. Data semantics are unchanged as
    /// long as the consumer drains before `frames` samples accumulate
    /// (beyond that the ring overwrites oldest, exactly like the hardware
    /// buffer would).
    #[must_use]
    pub fn with_buffer_capacity(params: SubjectParams, seed: u64, frames: usize) -> Self {
        let mut descriptor = BoardDescriptor::cyton_daisy();
        descriptor.buffer_size = frames.max(1);
        let buffer = RingBuffer::new(descriptor.buffer_size);
        Self {
            descriptor,
            generator: Mutex::new(SignalGenerator::new(params, seed)),
            buffer: Mutex::new(buffer),
            streaming: false,
            total_samples: 0,
        }
    }

    /// Changes the mental task the simulated subject performs.
    pub fn set_action(&self, action: Action) {
        self.generator.lock().set_action(action);
    }

    /// Simulates the arrival of `n` new samples from the headset.
    ///
    /// # Errors
    ///
    /// Returns [`EegError::NotStreaming`] when the stream is not running.
    pub fn advance(&mut self, n: usize) -> Result<()> {
        if !self.streaming {
            return Err(EegError::NotStreaming);
        }
        let mut generator = self.generator.lock();
        let mut buffer = self.buffer.lock();
        for _ in 0..n {
            buffer.push(generator.next_sample());
        }
        self.total_samples += n as u64;
        Ok(())
    }

    /// Total samples produced since construction.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Removes all buffered data, visiting each frame oldest-first — the
    /// allocation-free counterpart of [`Board::drain`] (no transposed
    /// [`Chunk`] is materialized; the values delivered are identical).
    ///
    /// # Errors
    ///
    /// Returns [`EegError::NotStreaming`] when the stream is not running.
    pub fn drain_frames(&mut self, mut sink: impl FnMut(&[f32; CHANNELS])) -> Result<()> {
        if !self.streaming {
            return Err(EegError::NotStreaming);
        }
        let mut buffer = self.buffer.lock();
        for i in 0..buffer.len {
            let idx = (buffer.head + i) % buffer.capacity;
            sink(&buffer.frames[idx]);
        }
        buffer.clear();
        Ok(())
    }
}

impl Board for SimulatedBoard {
    fn descriptor(&self) -> &BoardDescriptor {
        &self.descriptor
    }

    fn start_stream(&mut self) -> Result<()> {
        if self.streaming {
            return Err(EegError::AlreadyStreaming);
        }
        self.streaming = true;
        Ok(())
    }

    fn stop_stream(&mut self) -> Result<()> {
        if !self.streaming {
            return Err(EegError::NotStreaming);
        }
        self.streaming = false;
        Ok(())
    }

    fn is_streaming(&self) -> bool {
        self.streaming
    }

    fn drain(&mut self) -> Result<Chunk> {
        if !self.streaming {
            return Err(EegError::NotStreaming);
        }
        let mut buffer = self.buffer.lock();
        let chunk = buffer.to_chunk(None);
        buffer.clear();
        Ok(chunk)
    }

    fn peek_latest(&self, n: usize) -> Result<Chunk> {
        if !self.streaming {
            return Err(EegError::NotStreaming);
        }
        Ok(self.buffer.lock().to_chunk(Some(n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> SimulatedBoard {
        SimulatedBoard::new(SubjectParams::sampled(1), 42)
    }

    #[test]
    fn stream_lifecycle_is_enforced() {
        let mut b = board();
        assert!(!b.is_streaming());
        assert!(matches!(b.advance(10), Err(EegError::NotStreaming)));
        assert!(matches!(b.drain(), Err(EegError::NotStreaming)));
        b.start_stream().unwrap();
        assert!(matches!(b.start_stream(), Err(EegError::AlreadyStreaming)));
        b.stop_stream().unwrap();
        assert!(matches!(b.stop_stream(), Err(EegError::NotStreaming)));
    }

    #[test]
    fn drain_empties_the_buffer() {
        let mut b = board();
        b.start_stream().unwrap();
        b.advance(100).unwrap();
        let first = b.drain().unwrap();
        assert_eq!(first.samples, 100);
        let second = b.drain().unwrap();
        assert_eq!(second.samples, 0);
    }

    #[test]
    fn peek_keeps_data_and_returns_newest() {
        let mut b = board();
        b.start_stream().unwrap();
        b.advance(50).unwrap();
        let peek1 = b.peek_latest(20).unwrap();
        assert_eq!(peek1.samples, 20);
        // Peeking again returns the same data.
        let peek2 = b.peek_latest(20).unwrap();
        assert_eq!(peek1, peek2);
        // Draining still returns all 50.
        assert_eq!(b.drain().unwrap().samples, 50);
    }

    #[test]
    fn peek_more_than_available_clamps() {
        let mut b = board();
        b.start_stream().unwrap();
        b.advance(10).unwrap();
        assert_eq!(b.peek_latest(100).unwrap().samples, 10);
    }

    #[test]
    fn ring_buffer_overwrites_oldest() {
        let mut rb = RingBuffer::new(4);
        for i in 0..6 {
            let mut f = [0.0; CHANNELS];
            f[0] = i as f32;
            rb.push(f);
        }
        let c = rb.to_chunk(None);
        assert_eq!(c.samples, 4);
        // Oldest two were dropped.
        assert_eq!(c.channel(0), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn window_sized_ring_produces_identical_frames() {
        // As long as the consumer drains before the ring wraps, a small
        // ring delivers exactly the frames the 6-minute default would.
        let mut big = SimulatedBoard::new(SubjectParams::sampled(3), 7);
        let mut small = SimulatedBoard::with_buffer_capacity(SubjectParams::sampled(3), 7, 25);
        big.start_stream().unwrap();
        small.start_stream().unwrap();
        for _ in 0..40 {
            big.advance(25).unwrap();
            small.advance(25).unwrap();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            big.drain_frames(|f| a.extend_from_slice(f)).unwrap();
            small.drain_frames(|f| b.extend_from_slice(f)).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(small.descriptor().buffer_size, 25);
    }

    #[test]
    fn descriptor_matches_paper_hardware() {
        let b = board();
        assert_eq!(b.descriptor().eeg_channels, 16);
        assert!((b.descriptor().sample_rate - 125.0).abs() < f64::EPSILON);
    }
}
