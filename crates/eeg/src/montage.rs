//! The 16-electrode 10-20 montage of Fig. 3.
//!
//! Electrode coordinates are given in a simple 2-D head-top projection
//! (nasion at +y, inion at −y, left ear −x). They are used by the signal
//! model to compute how strongly each cortical source (motor ERD over C3/C4,
//! frontal blink dipole, temporal EMG) couples into each channel.

use serde::{Deserialize, Serialize};

/// One electrode of the UltraCortex Mark IV 16-channel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are standard 10-20 site names
pub enum Electrode {
    Fp1,
    Fp2,
    F7,
    F3,
    F4,
    F8,
    T7,
    C3,
    C4,
    T8,
    P7,
    P3,
    P4,
    P8,
    O1,
    O2,
}

impl Electrode {
    /// All 16 electrodes in board channel order (Cyton channels 1–8 then
    /// Daisy channels 9–16, front to back, left before right).
    pub const ALL: [Electrode; 16] = [
        Electrode::Fp1,
        Electrode::Fp2,
        Electrode::F7,
        Electrode::F3,
        Electrode::F4,
        Electrode::F8,
        Electrode::T7,
        Electrode::C3,
        Electrode::C4,
        Electrode::T8,
        Electrode::P7,
        Electrode::P3,
        Electrode::P4,
        Electrode::P8,
        Electrode::O1,
        Electrode::O2,
    ];

    /// Board channel index (0-based) of this electrode.
    #[must_use]
    pub fn channel(self) -> usize {
        Self::ALL
            .iter()
            .position(|&e| e == self)
            .expect("electrode is in ALL")
    }

    /// 2-D head-top position `(x, y)`; unit head radius, +y toward nasion,
    /// +x toward the right ear.
    #[must_use]
    pub fn position(self) -> (f64, f64) {
        match self {
            Electrode::Fp1 => (-0.31, 0.95),
            Electrode::Fp2 => (0.31, 0.95),
            Electrode::F7 => (-0.81, 0.59),
            Electrode::F3 => (-0.40, 0.52),
            Electrode::F4 => (0.40, 0.52),
            Electrode::F8 => (0.81, 0.59),
            Electrode::T7 => (-1.0, 0.0),
            Electrode::C3 => (-0.50, 0.0),
            Electrode::C4 => (0.50, 0.0),
            Electrode::T8 => (1.0, 0.0),
            Electrode::P7 => (-0.81, -0.59),
            Electrode::P3 => (-0.40, -0.52),
            Electrode::P4 => (0.40, -0.52),
            Electrode::P8 => (0.81, -0.59),
            Electrode::O1 => (-0.31, -0.95),
            Electrode::O2 => (0.31, -0.95),
        }
    }

    /// 10-20 site name, e.g. `"C3"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Electrode::Fp1 => "FP1",
            Electrode::Fp2 => "FP2",
            Electrode::F7 => "F7",
            Electrode::F3 => "F3",
            Electrode::F4 => "F4",
            Electrode::F8 => "F8",
            Electrode::T7 => "T7",
            Electrode::C3 => "C3",
            Electrode::C4 => "C4",
            Electrode::T8 => "T8",
            Electrode::P7 => "P7",
            Electrode::P3 => "P3",
            Electrode::P4 => "P4",
            Electrode::P8 => "P8",
            Electrode::O1 => "O1",
            Electrode::O2 => "O2",
        }
    }
}

impl std::fmt::Display for Electrode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Gaussian spatial coupling of a point source at `(sx, sy)` into every
/// channel; `spread` is the Gaussian σ in head-radius units.
#[must_use]
pub fn coupling_from(sx: f64, sy: f64, spread: f64) -> [f64; 16] {
    let mut out = [0.0; 16];
    for (i, e) in Electrode::ALL.iter().enumerate() {
        let (x, y) = e.position();
        let d2 = (x - sx).powi(2) + (y - sy).powi(2);
        out[i] = (-d2 / (2.0 * spread * spread)).exp();
    }
    out
}

/// Coupling of the left-hemisphere hand-area source (under C3).
#[must_use]
pub fn left_motor_coupling() -> [f64; 16] {
    let (x, y) = Electrode::C3.position();
    coupling_from(x, y, 0.45)
}

/// Coupling of the right-hemisphere hand-area source (under C4).
#[must_use]
pub fn right_motor_coupling() -> [f64; 16] {
    let (x, y) = Electrode::C4.position();
    coupling_from(x, y, 0.45)
}

/// Coupling of the ocular (blink) dipole just above the eyes.
#[must_use]
pub fn blink_coupling() -> [f64; 16] {
    coupling_from(0.0, 1.15, 0.5)
}

/// Coupling of temporal muscle (EMG) sources, symmetric over T7/T8.
#[must_use]
pub fn emg_coupling() -> [f64; 16] {
    let l = coupling_from(-1.05, 0.0, 0.4);
    let r = coupling_from(1.05, 0.0, 0.4);
    let mut out = [0.0; 16];
    for i in 0..16 {
        out[i] = l[i].max(r[i]);
    }
    out
}

/// Coupling of the occipital alpha generator (visual idle rhythm).
#[must_use]
pub fn occipital_coupling() -> [f64; 16] {
    coupling_from(0.0, -0.9, 0.6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_unique_electrodes() {
        let mut names: Vec<&str> = Electrode::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn channel_index_roundtrips() {
        for (i, e) in Electrode::ALL.iter().enumerate() {
            assert_eq!(e.channel(), i);
        }
    }

    #[test]
    fn montage_is_left_right_symmetric() {
        let pairs = [
            (Electrode::Fp1, Electrode::Fp2),
            (Electrode::C3, Electrode::C4),
            (Electrode::O1, Electrode::O2),
            (Electrode::T7, Electrode::T8),
        ];
        for (l, r) in pairs {
            let (lx, ly) = l.position();
            let (rx, ry) = r.position();
            assert!((lx + rx).abs() < 1e-9, "{l} vs {r}");
            assert!((ly - ry).abs() < 1e-9, "{l} vs {r}");
        }
    }

    #[test]
    fn motor_coupling_peaks_at_the_right_site() {
        let left = left_motor_coupling();
        let strongest = left
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(strongest, Electrode::C3.channel());

        let right = right_motor_coupling();
        let strongest = right
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(strongest, Electrode::C4.channel());
    }

    #[test]
    fn blink_hits_frontal_channels_hardest() {
        let b = blink_coupling();
        assert!(b[Electrode::Fp1.channel()] > b[Electrode::O1.channel()] * 5.0);
        assert!(b[Electrode::Fp2.channel()] > b[Electrode::P3.channel()] * 3.0);
    }

    #[test]
    fn couplings_are_normalized_to_at_most_one() {
        for c in [
            left_motor_coupling(),
            right_motor_coupling(),
            blink_coupling(),
            emg_coupling(),
            occipital_coupling(),
        ] {
            for v in c {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
