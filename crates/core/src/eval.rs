//! Dataset preparation, genome training and LOSO evaluation (Sec. III-D).
//!
//! The [`DatasetBuilder`] runs the paper's collection protocol on synthetic
//! subjects, zero-phase filters every recording and fits per-subject
//! normalization. [`train_genome`] turns any [`evo::Genome`] into a trained,
//! compiled classifier plus its validation accuracy — and [`EegEvaluator`]
//! exposes exactly that as the fitness oracle Algorithm 1 needs.
//!
//! Reproduction note on budgets: the authors train every candidate to
//! convergence on an RTX A6000. Our CPU must evaluate dozens of candidates
//! inside a bench run, so [`TrainBudget`] caps epochs/batches/windows. The
//! caps shrink absolute accuracies a little but preserve the orderings the
//! figures are about; `TrainBudget::full()` lifts them when you have the
//! patience.

use std::sync::Arc;

use dsp::normalize::Zscore;
use eeg::dataset::{train_val_split, Protocol, Study};
use eeg::types::LabeledWindow;
use eeg::CHANNELS;
use evo::{EvalResult, Evaluator, Genome};
use exec::ExecPool;
use ml::ensemble::{Classifier, Ensemble, ForestClassifier, Member, Voting};
use ml::forest::{window_stat_features, RandomForest};
use ml::infer::{compile_cnn, compile_lstm, compile_transformer, InferModel};
use ml::models::{CnnConfig, ConvSpec, PoolKind, TransformerConfig};
use ml::optim::OptimizerKind;
use ml::train::{train_built, TrainConfig};

use crate::preprocess::{FilterSpec, OfflineChain};
use crate::{CoreError, Result};

/// A filtered, normalized study ready for windowing.
#[derive(Debug, Clone)]
pub struct PreparedData {
    /// The filtered recordings.
    pub study: Study,
    /// Per-subject normalization statistics (fitted on the filtered data).
    pub zscores: Vec<Zscore>,
    seed: u64,
}

/// Builds [`PreparedData`] from the collection protocol.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    protocol: Protocol,
    n_subjects: usize,
    seed: u64,
    filter: FilterSpec,
    pool: Arc<ExecPool>,
}

impl DatasetBuilder {
    /// Creates a builder for `n_subjects` under `protocol`, filtering on
    /// the process-wide [`exec::shared`] pool.
    #[must_use]
    pub fn new(protocol: Protocol, n_subjects: usize, seed: u64) -> Self {
        Self {
            protocol,
            n_subjects,
            seed,
            filter: FilterSpec::default(),
            pool: exec::shared(),
        }
    }

    /// Overrides the filter design.
    #[must_use]
    pub fn with_filter(mut self, filter: FilterSpec) -> Self {
        self.filter = filter;
        self
    }

    /// Runs the offline filtering on an explicit pool.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<ExecPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Generates, filters and normalizes the study.
    ///
    /// # Errors
    ///
    /// Propagates generation and filtering failures.
    pub fn build(self) -> Result<PreparedData> {
        let mut study = Study::generate(&self.protocol, self.n_subjects, self.seed)?;
        let chain = OfflineChain::with_pool(&self.filter, self.pool)?;
        let mut zscores = Vec::with_capacity(study.recordings.len());
        for rec in &mut study.recordings {
            chain.apply(&mut rec.data)?;
            let z = Zscore::fit_transform(&mut rec.data.data, CHANNELS)?;
            zscores.push(z);
        }
        Ok(PreparedData {
            study,
            zscores,
            seed: self.seed,
        })
    }
}

impl PreparedData {
    /// All windows of the given size/step, balanced per subject.
    ///
    /// # Errors
    ///
    /// Propagates windowing failures.
    pub fn windows(&self, size: usize, step: usize) -> Result<Vec<LabeledWindow>> {
        Ok(self.study.windows(size, step, self.seed ^ 0x57EB)?)
    }

    /// LOSO split for `test_subject`.
    ///
    /// # Errors
    ///
    /// Propagates windowing failures and unknown subjects.
    pub fn loso(
        &self,
        test_subject: usize,
        size: usize,
        step: usize,
    ) -> Result<(Vec<LabeledWindow>, Vec<LabeledWindow>)> {
        Ok(self
            .study
            .loso_split(test_subject, size, step, self.seed ^ 0x1050)?)
    }
}

/// Proxy-training budget (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainBudget {
    /// Epochs per candidate.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Cap on minibatches per epoch.
    pub max_batches: Option<usize>,
    /// Cap on training windows.
    pub train_cap: usize,
    /// Cap on validation windows.
    pub val_cap: usize,
    /// Sliding-window step during training-set extraction.
    pub step: usize,
}

impl TrainBudget {
    /// Tiny budget for tests and doc examples.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            epochs: 12,
            batch_size: 16,
            max_batches: None,
            train_cap: 300,
            val_cap: 120,
            step: 25,
        }
    }

    /// The default bench budget: enough to separate good from bad configs.
    #[must_use]
    pub fn bench() -> Self {
        Self {
            epochs: 25,
            batch_size: 16,
            max_batches: Some(60),
            train_cap: 1200,
            val_cap: 400,
            step: 25,
        }
    }

    /// Uncapped training (slow; for offline reproduction runs).
    #[must_use]
    pub fn full() -> Self {
        Self {
            epochs: 40,
            batch_size: 32,
            max_batches: None,
            train_cap: usize::MAX,
            val_cap: usize::MAX,
            step: 25,
        }
    }
}

/// Rough forward-pass cost of one window, in FLOPs, for fair-compute
/// budgeting across families (the paper trains every candidate on a GPU
/// farm; we give every candidate the same FLOP allowance instead).
#[must_use]
pub fn flops_per_window(genome: &Genome) -> f64 {
    match genome {
        Genome::Cnn { config, .. } => {
            let mut flops = 0.0;
            let (mut h, mut w, mut cin) = (config.channels as f64, config.window as f64, 1.0);
            for spec in &config.convs {
                let ho = ((h - spec.kernel as f64) / spec.stride as f64 + 1.0).max(1.0);
                let wo = ((w - spec.kernel as f64) / spec.stride as f64 + 1.0).max(1.0);
                flops += 2.0
                    * spec.filters as f64
                    * cin
                    * (spec.kernel * spec.kernel) as f64
                    * ho
                    * wo;
                cin = spec.filters as f64;
                h = ho;
                w = wo;
                if config.pool != PoolKind::None && h >= 2.0 && w >= 2.0 {
                    h /= 2.0;
                    w /= 2.0;
                }
            }
            flops + 2.0 * cin * h * w * 3.0
        }
        Genome::Lstm { config, .. } => {
            let t = config.seq_len() as f64;
            let h = config.hidden as f64;
            let mut flops = 0.0;
            let mut in_dim = config.channels as f64;
            for _ in 0..config.layers {
                flops += 2.0 * 4.0 * (in_dim + h) * h * t;
                in_dim = h;
            }
            flops + 2.0 * h * 3.0
        }
        Genome::Transformer { config, .. } => {
            let t = config.seq_len() as f64;
            let d = config.d_model as f64;
            let ff = config.dim_ff as f64;
            let per_layer = 2.0 * t * (4.0 * d * d + 2.0 * d * ff) + 4.0 * t * t * d;
            2.0 * t * (config.channels as f64) * d
                + config.layers as f64 * per_layer
                + 2.0 * d * 3.0
        }
        // Forest fitting is cheap and not iterative; report a nominal cost.
        Genome::Forest { .. } => 1e4,
    }
}

/// Derives a per-candidate budget giving roughly `flop_budget` total
/// training FLOPs (forward+backward ≈ 3× forward), so a 512-unit LSTM gets
/// fewer minibatches than a small CNN instead of stalling the whole search.
#[must_use]
pub fn fair_budget(genome: &Genome, base: &TrainBudget, flop_budget: f64) -> TrainBudget {
    let per_batch = 3.0 * flops_per_window(genome) * base.batch_size as f64;
    let total_batches = (flop_budget / per_batch).max(6.0) as usize;
    let per_epoch = (total_batches / base.epochs.max(1)).max(1);
    TrainBudget {
        max_batches: Some(match base.max_batches {
            Some(cap) => cap.min(per_epoch),
            None => per_epoch,
        }),
        ..*base
    }
}

/// A trained, deployable artifact.
// A handful of these exist at a time, so the Net/Forest size gap is
// irrelevant and boxing would complicate every destructuring site.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum TrainedArtifact {
    /// A compiled neural network.
    Net(InferModel),
    /// A fitted random forest with its window length.
    Forest(ForestClassifier),
}

impl std::fmt::Debug for TrainedArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainedArtifact::Net(m) => write!(f, "Net({})", m.kind()),
            TrainedArtifact::Forest(c) => write!(f, "Forest({})", c.name()),
        }
    }
}

impl TrainedArtifact {
    /// Effective parameter count (the paper's `P(m)`: scalar weights for
    /// nets, total nodes for forests).
    #[must_use]
    pub fn param_count(&self) -> usize {
        match self {
            TrainedArtifact::Net(m) => m.param_count(),
            TrainedArtifact::Forest(c) => c.param_count(),
        }
    }

    /// Converts the artifact into a tagged ensemble member.
    #[must_use]
    pub fn into_member(self) -> Member {
        match self {
            TrainedArtifact::Net(m) => Member::Net(m),
            TrainedArtifact::Forest(c) => Member::Forest(c),
        }
    }

    /// Classifies one channel-major window (handles member window length).
    #[must_use]
    pub fn predict(&self, window: &[f32], channels: usize) -> usize {
        let win_len = window.len() / channels;
        let probs = match self {
            TrainedArtifact::Net(m) => m.predict_proba_window(window, channels, win_len),
            TrainedArtifact::Forest(c) => c.predict_proba_window(window, channels, win_len),
        };
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

fn cap<T: Clone>(v: &[T], cap: usize) -> Vec<T> {
    v.iter().take(cap).cloned().collect()
}

/// Trains one genome on the given windows, returning the artifact and its
/// accuracy on `val`. Parallel training stages run on the process-wide
/// [`exec::shared`] pool; use [`train_genome_with`] to pin them to an
/// explicit pool.
///
/// # Errors
///
/// Propagates training failures (empty data, divergence, bad configs).
pub fn train_genome(
    genome: &Genome,
    train: &[LabeledWindow],
    val: &[LabeledWindow],
    budget: &TrainBudget,
    seed: u64,
) -> Result<(TrainedArtifact, f64)> {
    train_genome_with(genome, train, val, budget, seed, &exec::shared())
}

/// [`train_genome`] on an explicit pool (feature extraction, per-tree
/// forest fitting and batched scoring fan out on it; the iterative
/// net-training path is inherently sequential).
///
/// # Errors
///
/// Same as [`train_genome`].
pub fn train_genome_with(
    genome: &Genome,
    train: &[LabeledWindow],
    val: &[LabeledWindow],
    budget: &TrainBudget,
    seed: u64,
    pool: &ExecPool,
) -> Result<(TrainedArtifact, f64)> {
    if train.is_empty() {
        return Err(CoreError::Ml(ml::MlError::EmptyDataset));
    }
    let train = cap(train, budget.train_cap);
    let val = cap(val, budget.val_cap);
    let tx: Vec<Vec<f32>> = train.iter().map(|w| w.data.clone()).collect();
    let ty: Vec<usize> = train.iter().map(|w| w.label.label()).collect();
    let vx: Vec<Vec<f32>> = val.iter().map(|w| w.data.clone()).collect();
    let vy: Vec<usize> = val.iter().map(|w| w.label.label()).collect();

    let train_cfg = |optimizer: OptimizerKind| TrainConfig {
        epochs: budget.epochs,
        batch_size: budget.batch_size,
        optimizer,
        seed,
        patience: Some(budget.epochs),
        max_batches: budget.max_batches,
    };

    // Net training runs through `train_built`'s owned path: each call
    // constructs, fits and returns its own model, so concurrent genome
    // trainings (parallel ensemble members, parallel LOSO folds) never
    // contend for a `&mut` borrow.
    match genome {
        Genome::Cnn { config, optimizer } => {
            let (model, _) =
                train_built(|| config.build(seed), &tx, &ty, &vx, &vy, &train_cfg(*optimizer))?;
            let compiled = compile_cnn(&model);
            let acc = accuracy_of(&compiled, &vx, &vy);
            Ok((TrainedArtifact::Net(compiled), acc))
        }
        Genome::Lstm { config, optimizer } => {
            let (model, _) =
                train_built(|| config.build(seed), &tx, &ty, &vx, &vy, &train_cfg(*optimizer))?;
            let compiled = compile_lstm(&model);
            let acc = accuracy_of(&compiled, &vx, &vy);
            Ok((TrainedArtifact::Net(compiled), acc))
        }
        Genome::Transformer { config, optimizer } => {
            let (model, _) =
                train_built(|| config.build(seed), &tx, &ty, &vx, &vy, &train_cfg(*optimizer))?;
            let compiled = compile_transformer(&model);
            let acc = accuracy_of(&compiled, &vx, &vy);
            Ok((TrainedArtifact::Net(compiled), acc))
        }
        Genome::Forest { config, window } => {
            // Feature extraction, per-tree fitting and scoring all fan out
            // over the pool; every step is per-index deterministic.
            let fx: Vec<Vec<f32>> =
                pool.par_map(&tx, |w| window_stat_features(w, CHANNELS));
            let forest = RandomForest::fit_with(*config, &fx, &ty, pool)?;
            let vfx: Vec<Vec<f32>> =
                pool.par_map(&vx, |w| window_stat_features(w, CHANNELS));
            let acc = forest.evaluate_with(&vfx, &vy, pool);
            Ok((
                TrainedArtifact::Forest(ForestClassifier::new(forest, *window)),
                acc,
            ))
        }
    }
}

fn accuracy_of(model: &InferModel, vx: &[Vec<f32>], vy: &[usize]) -> f64 {
    if vx.is_empty() {
        return 0.0;
    }
    let correct = vx
        .iter()
        .zip(vy)
        .filter(|(w, &l)| model.predict(w) == l)
        .count();
    correct as f64 / vx.len() as f64
}

/// The fitness oracle wiring [`evo::EvolutionarySearch`] to real EEG
/// training: windows the prepared study at each genome's window size,
/// splits 80:20 (Sec. III-D1), trains under the budget and reports
/// validation accuracy + parameter count.
#[derive(Debug)]
pub struct EegEvaluator {
    data: PreparedData,
    budget: TrainBudget,
    /// Subject held out from fitness evaluation entirely (LOSO test set).
    held_out: Option<usize>,
    /// When set, every candidate trains under [`fair_budget`] at this many
    /// total FLOPs.
    flop_budget: Option<f64>,
    /// Pool for the parallel training stages of each candidate.
    pool: Arc<ExecPool>,
}

impl EegEvaluator {
    /// Creates the evaluator, training candidates on the process-wide
    /// [`exec::shared`] pool.
    #[must_use]
    pub fn new(data: PreparedData, budget: TrainBudget, held_out: Option<usize>) -> Self {
        Self {
            data,
            budget,
            held_out,
            flop_budget: None,
            pool: exec::shared(),
        }
    }

    /// Enables fair-compute budgeting (see [`fair_budget`]).
    #[must_use]
    pub fn with_flop_budget(mut self, flops: f64) -> Self {
        self.flop_budget = Some(flops);
        self
    }

    /// Pins the parallel training stages to an explicit pool.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<ExecPool>) -> Self {
        self.pool = pool;
        self
    }

    /// The prepared data backing this evaluator.
    #[must_use]
    pub fn data(&self) -> &PreparedData {
        &self.data
    }
}

impl Evaluator for EegEvaluator {
    fn evaluate(&self, genome: &Genome, seed: u64) -> EvalResult {
        let window = genome.window();
        let result = (|| -> Result<EvalResult> {
            let all = self.data.windows(window, self.budget.step)?;
            let pool: Vec<LabeledWindow> = match self.held_out {
                Some(held) => all.into_iter().filter(|w| w.subject != held).collect(),
                None => all,
            };
            let (train, val) = train_val_split(pool, 0.2, seed ^ 0x8020);
            let budget = match self.flop_budget {
                Some(flops) => fair_budget(genome, &self.budget, flops),
                None => self.budget,
            };
            let (artifact, accuracy) =
                train_genome_with(genome, &train, &val, &budget, seed, &self.pool)?;
            Ok(EvalResult {
                accuracy,
                params: artifact.param_count(),
            })
        })();
        // A candidate that fails to train is simply unfit, not fatal to the
        // search (mirrors NAS practice).
        result.unwrap_or(EvalResult {
            accuracy: 0.0,
            params: usize::MAX / 2,
        })
    }
}

/// Scaled-down "known-good" configs used by quick examples and tests.
#[must_use]
pub fn quick_cnn_config() -> CnnConfig {
    CnnConfig {
        convs: vec![ConvSpec {
            filters: 8,
            kernel: 5,
            stride: 2,
        }],
        pool: PoolKind::None,
        window: 100,
        channels: 16,
        dropout: 0.2,
    }
}

/// Scaled-down transformer partner for [`quick_cnn_config`].
#[must_use]
pub fn quick_transformer_config() -> TransformerConfig {
    TransformerConfig {
        layers: 1,
        heads: 2,
        d_model: 32,
        dim_ff: 64,
        dropout: 0.2,
        window: 100,
        channels: 16,
        time_stride: 4,
    }
}

/// Trains the paper's winning ensemble shape (CNN + Transformer, soft
/// voting). With a quick budget the scaled-down configs are used so tests
/// stay fast; with [`TrainBudget::full`] the paper-best configs train.
///
/// # Errors
///
/// Propagates training failures.
pub fn train_default_ensemble(
    data: &PreparedData,
    budget: &TrainBudget,
    seed: u64,
) -> Result<Ensemble> {
    train_default_ensemble_with(data, budget, seed, &exec::shared())
}

/// [`train_default_ensemble`] with the members trained **concurrently** on
/// an explicit pool, one work item per member. Every member's windowing
/// split and training seed depend only on its index, and members are
/// collected in index order, so the ensemble is bit-identical to the one
/// the sequential (1-thread) path trains.
///
/// # Errors
///
/// Propagates training failures.
pub fn train_default_ensemble_with(
    data: &PreparedData,
    budget: &TrainBudget,
    seed: u64,
    pool: &ExecPool,
) -> Result<Ensemble> {
    let quick = budget.train_cap <= TrainBudget::bench().train_cap;
    let cnn_cfg = if quick {
        quick_cnn_config()
    } else {
        CnnConfig::paper_best()
    };
    let tf_cfg = if quick {
        quick_transformer_config()
    } else {
        TransformerConfig::paper_best()
    };

    let genomes = [
        Genome::Cnn {
            config: cnn_cfg,
            optimizer: OptimizerKind::Adam { lr: 2e-3 },
        },
        Genome::Transformer {
            config: tf_cfg,
            optimizer: OptimizerKind::AdamW {
                lr: 1e-3,
                weight_decay: 1e-5,
            },
        },
    ];

    let results: Vec<Result<Member>> = pool.par_map_indexed(&genomes, |i, genome| {
        let all = data.windows(genome.window(), budget.step)?;
        let (train, val) = train_val_split(all, 0.2, seed ^ (i as u64 + 1));
        let (artifact, _) = train_genome_with(genome, &train, &val, budget, seed + i as u64, pool)?;
        Ok(artifact.into_member())
    });
    let members = results.into_iter().collect::<Result<Vec<Member>>>()?;
    Ok(Ensemble::new(members, Voting::Soft))
}

/// Leave-one-subject-out accuracies for one genome: each subject in turn is
/// the unseen test set (Sec. III-D1).
///
/// # Errors
///
/// Propagates training failures.
pub fn loso_accuracies(
    data: &PreparedData,
    genome: &Genome,
    budget: &TrainBudget,
    seed: u64,
) -> Result<Vec<f64>> {
    loso_accuracies_with(data, genome, budget, seed, &exec::shared())
}

/// [`loso_accuracies`] with the folds trained **concurrently** on an
/// explicit pool, one work item per held-out subject. Each fold's split
/// and training seed are independent of scheduling, and accuracies are
/// collected in subject order, so the result is bit-identical to the
/// sequential path.
///
/// # Errors
///
/// Propagates training failures.
pub fn loso_accuracies_with(
    data: &PreparedData,
    genome: &Genome,
    budget: &TrainBudget,
    seed: u64,
    pool: &ExecPool,
) -> Result<Vec<f64>> {
    pool.par_map_range(0..data.study.subjects(), |subject| {
        let (train_pool, test) = data.loso(subject, genome.window(), budget.step)?;
        let (train, val) = train_val_split(train_pool, 0.2, seed ^ 0xAB);
        let (artifact, _) = train_genome_with(genome, &train, &val, budget, seed, pool)?;
        let test = cap(&test, budget.val_cap);
        let correct = test
            .iter()
            .filter(|w| artifact.predict(&w.data, CHANNELS) == w.label.label())
            .count();
        Ok(correct as f64 / test.len().max(1) as f64)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_data() -> PreparedData {
        DatasetBuilder::new(Protocol::quick(), 2, 11).build().unwrap()
    }

    #[test]
    fn dataset_builds_and_is_normalized() {
        let data = quick_data();
        assert_eq!(data.study.subjects(), 2);
        // Normalized: per-channel std ≈ 1.
        let rec = &data.study.recordings[0];
        let row = rec.data.channel(0);
        let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn cnn_genome_trains_above_chance() {
        let data = quick_data();
        let genome = Genome::Cnn {
            config: quick_cnn_config(),
            optimizer: OptimizerKind::Adam { lr: 2e-3 },
        };
        let all = data.windows(100, 50).unwrap();
        let (train, val) = train_val_split(all, 0.2, 3);
        let (artifact, acc) =
            train_genome(&genome, &train, &val, &TrainBudget::quick(), 5).unwrap();
        assert!(acc > 0.4, "accuracy {acc} barely above chance");
        assert!(artifact.param_count() > 100);
    }

    #[test]
    fn forest_genome_trains_above_chance() {
        let data = quick_data();
        let genome = Genome::Forest {
            config: ml::forest::ForestConfig {
                n_estimators: 50,
                max_depth: Some(12),
                min_samples_split: 4,
                classes: 3,
                seed: 1,
            },
            window: 100,
        };
        let all = data.windows(100, 50).unwrap();
        let (train, val) = train_val_split(all, 0.2, 3);
        let (_, acc) = train_genome(&genome, &train, &val, &TrainBudget::quick(), 5).unwrap();
        assert!(acc > 0.4, "forest accuracy {acc}");
    }

    #[test]
    fn evaluator_is_usable_by_the_search() {
        let data = quick_data();
        let eval = EegEvaluator::new(data, TrainBudget::quick(), None);
        let genome = Genome::Cnn {
            config: quick_cnn_config(),
            optimizer: OptimizerKind::Adam { lr: 2e-3 },
        };
        let r = eval.evaluate(&genome, 1);
        assert!(r.accuracy > 0.0 && r.params > 0);
    }

    #[test]
    fn default_ensemble_trains() {
        let data = quick_data();
        let ensemble = train_default_ensemble(&data, &TrainBudget::quick(), 2).unwrap();
        assert_eq!(ensemble.len(), 2);
        assert!(ensemble.window() >= 100);
    }
}
