//! CognitiveArm: the end-to-end real-time EEG-to-prosthetic control system.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrate crates: EEG acquisition ([`eeg`]) streams through the DSP
//! front end ([`dsp`]), windows are classified by the compiled DL engine
//! ([`ml`]) at 15 Hz, voice commands ([`asr`]) multiplex which degree of
//! freedom the labels drive, and the controller actuates the simulated
//! prosthesis ([`arm`]) over its serial protocol — all with explicit,
//! deterministic simulated time and per-stage latency accounting. The
//! parallel hot paths (per-channel filtering, per-tree forest training,
//! ensemble-member inference, per-genome search evaluation) run on the
//! deterministic [`exec`] substrate: thread count — configured via
//! [`pipeline::PipelineConfig::threads`] or `COGARM_THREADS` — changes
//! wall-clock time, never outputs.
//!
//! * [`preprocess`] — the streaming (causal) and offline (zero-phase)
//!   preprocessing chains of Sec. III-A3.
//! * [`eval`] — dataset preparation, genome training and the
//!   leave-one-subject-out evaluation harness of Sec. III-D; implements
//!   [`evo::Evaluator`] so the evolutionary search can drive real training.
//! * [`pipeline`] — the real-time loop of Sec. IV-A (15 Hz action labels,
//!   voice-mode multiplexing, serial actuation) with latency tracking.
//! * [`mux`] — the VAD-gated voice-command path of Sec. III-F.
//! * [`session`] — the closed-loop real-world validation protocol of
//!   Sec. IV-A5 (the paper's 19-out-of-20 sessions result).
//!
//! # Examples
//!
//! ```no_run
//! use cognitive_arm::pipeline::{CognitiveArm, PipelineConfig};
//! use cognitive_arm::eval::{DatasetBuilder, TrainBudget};
//! use eeg::dataset::Protocol;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Train a tiny system and run it closed-loop for two seconds.
//! let data = DatasetBuilder::new(Protocol::quick(), 2, 7).build()?;
//! let ensemble = cognitive_arm::eval::train_default_ensemble(&data, &TrainBudget::quick(), 1)?;
//! let mut system = CognitiveArm::new(PipelineConfig::default(), ensemble, 0);
//! let trace = system.run_for(2.0)?;
//! println!("labels emitted: {}", trace.labels.len());
//! # Ok(())
//! # }
//! ```

pub mod eval;
pub mod mux;
pub mod pipeline;
pub mod preprocess;
pub mod session;

mod error;

pub use error::CoreError;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
