use std::fmt;

/// Errors produced by the end-to-end system.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// EEG substrate failure.
    Eeg(eeg::EegError),
    /// DSP failure.
    Dsp(dsp::DspError),
    /// Model training/inference failure.
    Ml(ml::MlError),
    /// Voice path failure.
    Asr(asr::AsrError),
    /// Arm/actuation failure.
    Arm(arm::ArmError),
    /// The pipeline was configured inconsistently.
    BadConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Eeg(e) => write!(f, "eeg: {e}"),
            CoreError::Dsp(e) => write!(f, "dsp: {e}"),
            CoreError::Ml(e) => write!(f, "ml: {e}"),
            CoreError::Asr(e) => write!(f, "asr: {e}"),
            CoreError::Arm(e) => write!(f, "arm: {e}"),
            CoreError::BadConfig(msg) => write!(f, "bad pipeline config: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Eeg(e) => Some(e),
            CoreError::Dsp(e) => Some(e),
            CoreError::Ml(e) => Some(e),
            CoreError::Asr(e) => Some(e),
            CoreError::Arm(e) => Some(e),
            CoreError::BadConfig(_) => None,
        }
    }
}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for CoreError {
            fn from(e: $ty) -> Self {
                CoreError::$variant(e)
            }
        }
    };
}

from_err!(Eeg, eeg::EegError);
from_err!(Dsp, dsp::DspError);
from_err!(Ml, ml::MlError);
from_err!(Asr, asr::AsrError);
from_err!(Arm, arm::ArmError);
