//! Preprocessing chains (Sec. III-A3).
//!
//! Two variants of the same Butterworth-bandpass + 50 Hz-notch chain:
//!
//! * [`OfflineChain`] — zero-phase `filtfilt` for dataset preparation,
//! * [`StreamingChain`] — causal per-channel streaming filters for the
//!   real-time loop (a control loop cannot look into the future).
//!
//! Both are followed by the per-subject z-score normalization of Sec. V-A,
//! whose statistics are fitted on training data and frozen.

use std::sync::{Arc, Mutex};

use dsp::butterworth::Butterworth;
use dsp::filterbank::FilterBank;
use dsp::filtfilt::ZeroPhaseBank;
use dsp::normalize::Zscore;
use dsp::notch::notch_filter;
use eeg::types::Chunk;
use eeg::{CHANNELS, SAMPLE_RATE};
use exec::ExecPool;

use crate::Result;

/// Filter design parameters (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterSpec {
    /// Butterworth prototype order (paper: 9).
    pub order: usize,
    /// Band-pass low edge in Hz (paper: 0.5).
    pub low_hz: f64,
    /// Band-pass high edge in Hz (paper: 45).
    pub high_hz: f64,
    /// Notch centre in Hz (paper: 50).
    pub notch_hz: f64,
    /// Notch quality factor (paper: 30).
    pub notch_q: f64,
}

impl Default for FilterSpec {
    fn default() -> Self {
        Self {
            order: 9,
            low_hz: 0.5,
            high_hz: 45.0,
            notch_hz: 50.0,
            notch_q: 30.0,
        }
    }
}

/// Offline zero-phase preprocessing for dataset preparation. Channels are
/// filtered in blocks of [`dsp::filterbank::LANES`] through compiled
/// [`ZeroPhaseBank`]s, blocks in parallel on an [`ExecPool`]; each block
/// is an independent work item, lanes within a block are independent
/// channels, and results land back in channel order — so the output is
/// bit-identical to the scalar per-channel `filtfilt` at any thread
/// count (locked by `tests/tests/filters.rs` golden traces).
pub struct OfflineChain {
    bandpass: dsp::biquad::SosFilter,
    notch: dsp::biquad::SosFilter,
    pool: Arc<ExecPool>,
    /// Checked-out-and-returned zero-phase scratch, one entry per
    /// concurrently running work item — re-running the chain re-uses
    /// these instead of compiling fresh banks per call.
    scratch: Mutex<Vec<OfflineScratch>>,
}

/// One work item's compiled zero-phase banks (band-pass, then notch).
#[derive(Debug, Clone)]
struct OfflineScratch {
    bandpass: ZeroPhaseBank,
    notch: ZeroPhaseBank,
}

impl std::fmt::Debug for OfflineChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OfflineChain")
            .field("bandpass_order", &self.bandpass.order())
            .field("notch_order", &self.notch.order())
            .field("threads", &self.pool.threads())
            .finish()
    }
}

impl Clone for OfflineChain {
    fn clone(&self) -> Self {
        Self {
            bandpass: self.bandpass.clone(),
            notch: self.notch.clone(),
            pool: Arc::clone(&self.pool),
            scratch: Mutex::new(Vec::new()),
        }
    }
}

impl OfflineChain {
    /// Designs the chain on the process-wide [`exec::shared`] pool.
    ///
    /// # Errors
    ///
    /// Propagates filter-design errors for out-of-range specs.
    pub fn new(spec: &FilterSpec) -> Result<Self> {
        Self::with_pool(spec, exec::shared())
    }

    /// Designs the chain on an explicit pool.
    ///
    /// # Errors
    ///
    /// Propagates filter-design errors for out-of-range specs.
    pub fn with_pool(spec: &FilterSpec, pool: Arc<ExecPool>) -> Result<Self> {
        Ok(Self {
            bandpass: Butterworth::bandpass(spec.order, spec.low_hz, spec.high_hz, SAMPLE_RATE)?,
            notch: notch_filter(spec.notch_hz, spec.notch_q, SAMPLE_RATE)?,
            pool,
            scratch: Mutex::new(Vec::new()),
        })
    }

    /// Filters a whole multichannel recording zero-phase, in place, one
    /// channel *block* (a bank's worth of SIMD lanes) per parallel work
    /// item. Zero-phase composition matches the scalar path exactly:
    /// band-pass `filtfilt`, then notch `filtfilt`, per channel.
    ///
    /// # Errors
    ///
    /// Returns an error for recordings shorter than the filtfilt pad.
    pub fn apply(&self, chunk: &mut Chunk) -> Result<()> {
        let per = chunk.samples;
        if per == 0 || chunk.channels == 0 {
            return Ok(());
        }
        let mut blocks: Vec<&mut [f32]> = chunk
            .data
            .chunks_mut(per * dsp::filterbank::LANES)
            .collect();
        let results: Vec<dsp::Result<()>> = self.pool.par_map_mut(&mut blocks, |block| {
            let mut scratch = self
                .scratch
                .lock()
                .expect("offline scratch lock")
                .pop()
                .unwrap_or_else(|| OfflineScratch {
                    bandpass: ZeroPhaseBank::new(&self.bandpass, dsp::filterbank::LANES),
                    notch: ZeroPhaseBank::new(&self.notch, dsp::filterbank::LANES),
                });
            let out = scratch
                .bandpass
                .apply_channel_major(block, per)
                .and_then(|()| scratch.notch.apply_channel_major(block, per));
            self.scratch
                .lock()
                .expect("offline scratch lock")
                .push(scratch);
            out
        });
        for r in results {
            r?;
        }
        Ok(())
    }
}

/// Causal streaming preprocessing for the real-time loop: the band-pass +
/// notch cascade for all channels, compiled into one channel-interleaved
/// [`FilterBank`] with persistent state. Per channel, each step is
/// bit-identical to the per-channel `StreamingFilter` pair it replaced
/// (band-pass, f32 narrowing, notch) — the bank only changes how many
/// channels one instruction advances.
#[derive(Debug, Clone)]
pub struct StreamingChain {
    bank: FilterBank,
    zscore: Option<Zscore>,
}

impl StreamingChain {
    /// Designs the chain for all 16 channels and compiles the execution
    /// form (scalar or AVX2, resolved by [`dsp::simd`]).
    ///
    /// # Errors
    ///
    /// Propagates filter-design errors.
    pub fn new(spec: &FilterSpec) -> Result<Self> {
        let bp = Butterworth::bandpass(spec.order, spec.low_hz, spec.high_hz, SAMPLE_RATE)?;
        let nt = notch_filter(spec.notch_hz, spec.notch_q, SAMPLE_RATE)?;
        Ok(Self {
            bank: FilterBank::new(CHANNELS, &[&bp, &nt]),
            zscore: None,
        })
    }

    /// Installs frozen normalization statistics (fitted on training data).
    pub fn set_normalization(&mut self, zscore: Zscore) {
        self.zscore = Some(zscore);
    }

    /// The installed normalization statistics, if any.
    #[must_use]
    pub fn normalization(&self) -> Option<&Zscore> {
        self.zscore.as_ref()
    }

    /// Processes one multichannel sample in place.
    pub fn step(&mut self, sample: &mut [f32; CHANNELS]) {
        self.bank.step_frame(sample);
        if let Some(z) = &self.zscore {
            for (ch, v) in sample.iter_mut().enumerate() {
                *v = (*v - z.means()[ch]) / z.stds()[ch];
            }
        }
    }

    /// Resets all filter state (new session).
    pub fn reset(&mut self) {
        self.bank.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eeg::signal::{SignalGenerator, SubjectParams};
    use eeg::Action;

    #[test]
    fn offline_chain_removes_line_noise() {
        let mut params = SubjectParams::sampled(1);
        params.line_amp = 8.0;
        let mut g = SignalGenerator::new(params, 3);
        let mut chunk = g.generate_action(Action::Idle, 4000);
        let raw_line = dsp::welch::welch_psd(chunk.channel(0), SAMPLE_RATE, 512)
            .unwrap()
            .band_power(49.0, 51.0);
        OfflineChain::new(&FilterSpec::default())
            .unwrap()
            .apply(&mut chunk)
            .unwrap();
        let filt_line = dsp::welch::welch_psd(chunk.channel(0), SAMPLE_RATE, 512)
            .unwrap()
            .band_power(49.0, 51.0);
        assert!(
            filt_line < raw_line / 100.0,
            "line {raw_line} -> {filt_line}"
        );
    }

    #[test]
    fn offline_chain_is_bit_identical_across_thread_counts() {
        let mut g = SignalGenerator::new(SubjectParams::sampled(5), 9);
        let chunk = g.generate_action(Action::Left, 2000);
        let mut reference = chunk.clone();
        OfflineChain::with_pool(&FilterSpec::default(), Arc::new(ExecPool::new(1)))
            .unwrap()
            .apply(&mut reference)
            .unwrap();
        for threads in [2, 4, 8] {
            let mut parallel = chunk.clone();
            OfflineChain::with_pool(&FilterSpec::default(), Arc::new(ExecPool::new(threads)))
                .unwrap()
                .apply(&mut parallel)
                .unwrap();
            let bits_equal = reference
                .data
                .iter()
                .zip(&parallel.data)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bits_equal, "threads={threads} diverged");
        }
    }

    #[test]
    fn streaming_chain_converges_to_offline_levels() {
        let mut params = SubjectParams::sampled(2);
        params.line_amp = 8.0;
        let mut g = SignalGenerator::new(params, 4);
        let chunk = g.generate_action(Action::Idle, 4000);
        let mut chain = StreamingChain::new(&FilterSpec::default()).unwrap();
        let per = chunk.samples;
        let mut filtered = vec![0.0f32; CHANNELS * per];
        for i in 0..per {
            let mut s = [0.0f32; CHANNELS];
            for (ch, v) in s.iter_mut().enumerate() {
                *v = chunk.data[ch * per + i];
            }
            chain.step(&mut s);
            for (ch, &v) in s.iter().enumerate() {
                filtered[ch * per + i] = v;
            }
        }
        // After settling, 50 Hz is gone (check the second half).
        let tail = &filtered[per / 2..per]; // channel 0 second half
        let line = dsp::welch::welch_psd(tail, SAMPLE_RATE, 512)
            .unwrap()
            .band_power(49.0, 51.0);
        assert!(line < 0.05, "residual line power {line}");
    }

    #[test]
    fn normalization_is_applied_when_installed() {
        let mut chain = StreamingChain::new(&FilterSpec::default()).unwrap();
        // Fit a z-score with mean 0 / std 2 per channel.
        let data: Vec<f32> = (0..CHANNELS)
            .flat_map(|_| vec![-2.0f32, 2.0, -2.0, 2.0])
            .collect();
        let z = Zscore::fit(&data, CHANNELS).unwrap();
        chain.set_normalization(z);
        let mut s = [1.0f32; CHANNELS];
        chain.step(&mut s);
        // Output scaled by 1/2 relative to the unnormalized path (approximately,
        // modulo filter transient) — just verify it's finite and smaller.
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn reset_restores_initial_transient() {
        let mut chain = StreamingChain::new(&FilterSpec::default()).unwrap();
        let mut a = [1.0f32; CHANNELS];
        chain.step(&mut a);
        chain.reset();
        let mut b = [1.0f32; CHANNELS];
        chain.step(&mut b);
        assert_eq!(a, b);
    }
}
