//! The real-time control loop (Sec. IV-A).
//!
//! Samples stream from the (simulated) headset at 125 Hz, pass through the
//! causal filter chain, and fill a sliding window; every `label_every`
//! samples the compiled ensemble classifies the window into an action label
//! (8 samples ≈ 15.6 Hz, the paper's "15 Hz" label rate); labels pass
//! through the voice-mode multiplexer's active mode into the controller,
//! whose serial bytes drive the MCU and its servos. Per-stage wall-clock
//! latency is recorded for the paper's end-to-end timing story.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use arm::controller::{ActionLabel, Controller, ControllerConfig, ControlMode};
use arm::kinematics::Joint;
use arm::mcu::Mcu;
use arm::safety::{SafetyConfig, SafetyGate};
use eeg::board::{Board, SimulatedBoard};
use eeg::signal::SubjectParams;
use eeg::types::Action;
use eeg::{CHANNELS, SAMPLE_RATE};
use exec::ExecPool;
use ml::ensemble::{Ensemble, EnsembleScratch};
use ml::models::CLASSES;
use serde::{Deserialize, Serialize};

use crate::preprocess::{FilterSpec, StreamingChain};
use crate::{CoreError, Result};

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Samples between classifications (8 → 15.6 Hz at 125 Hz).
    pub label_every: usize,
    /// Filter design.
    pub filter: FilterSpec,
    /// Controller behaviour.
    pub controller: ControllerConfig,
    /// Safety limits.
    pub safety: SafetyConfig,
    /// Worker threads for parallel stages (`None` = the process-wide
    /// [`exec::shared`] pool, sized by `COGARM_THREADS` or
    /// `available_parallelism`). Thread count never changes outputs.
    pub threads: Option<usize>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            label_every: 8,
            filter: FilterSpec::default(),
            controller: ControllerConfig::default(),
            safety: SafetyConfig::default(),
            threads: None,
        }
    }
}

/// Accumulating mean/max statistics for one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Invocations measured.
    pub count: u64,
    sum_s: f64,
    /// Worst-case seconds observed.
    pub max_s: f64,
}

impl StageStats {
    /// Folds one invocation's duration into the stats (public so the
    /// serving engine's filter stage accounts with the same machinery).
    pub fn record(&mut self, seconds: f64) {
        self.count += 1;
        self.sum_s += seconds;
        self.max_s = self.max_s.max(seconds);
    }

    /// Mean seconds per invocation.
    #[must_use]
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }
}

/// Per-stage latency accounting (Sec. IV's timing claims).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Filtering cost per label period.
    pub filter: StageStats,
    /// Ensemble inference per label.
    pub inference: StageStats,
    /// Controller + serial encode + MCU parse per label.
    pub actuation: StageStats,
}

impl LatencyReport {
    /// Mean end-to-end compute latency per label, in seconds.
    #[must_use]
    pub fn end_to_end_s(&self) -> f64 {
        self.filter.mean_s() + self.inference.mean_s() + self.actuation.mean_s()
    }
}

/// One emitted label with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabelEvent {
    /// Simulated time in seconds.
    pub t: f64,
    /// Predicted class index.
    pub label: usize,
}

/// Trace of a pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionTrace {
    /// Every label emitted.
    pub labels: Vec<LabelEvent>,
    /// Joint positions sampled at each label instant
    /// `(t, lift, wrist, grip)`.
    pub joints: Vec<(f64, f64, f64, f64)>,
}

/// Per-channel sliding window of the most recent filtered samples — the
/// classifier's input buffer, shared by the monolithic loop and the
/// serving engine's filter stage so the two can never drift.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    rows: Vec<VecDeque<f32>>,
    len: usize,
}

impl SlidingWindow {
    /// An empty window holding up to `len` samples per channel.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            rows: (0..CHANNELS)
                .map(|_| VecDeque::with_capacity(len))
                .collect(),
            len,
        }
    }

    /// Appends one multichannel sample, evicting the oldest when full.
    pub fn push(&mut self, sample: &[f32; CHANNELS]) {
        for (row, &v) in self.rows.iter_mut().zip(sample) {
            if row.len() == self.len {
                row.pop_front();
            }
            row.push_back(v);
        }
    }

    /// Whether every channel holds `window_len` samples.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.rows[0].len() == self.len
    }

    /// The configured window length in samples.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.len
    }

    /// The channel-major flattened window (the ensemble's input layout).
    #[must_use]
    pub fn flat(&self) -> Vec<f32> {
        let mut flat = Vec::with_capacity(CHANNELS * self.len);
        self.flat_into(&mut flat);
        flat
    }

    /// [`SlidingWindow::flat`] appending to a reused buffer (cleared
    /// first) — the allocation-free label-tick path; identical values.
    pub fn flat_into(&self, out: &mut Vec<f32>) {
        out.clear();
        self.append_to(out);
    }

    /// Appends the channel-major window values to `out` without clearing
    /// it — how the serving micro-batcher stacks many sessions' windows
    /// into one contiguous batch buffer.
    pub fn append_to(&self, out: &mut Vec<f32>) {
        for row in &self.rows {
            out.extend(row.iter().copied());
        }
    }
}

/// The classify → actuate → record half of the label loop: ensemble
/// inference on the pool, controller → MCU actuation, and the trace +
/// latency bookkeeping. [`CognitiveArm::run_for`] and the serving
/// engine's streaming inference stage both run **this exact code**, which
/// is what makes their traces bit-identical by construction.
pub struct InferenceHead {
    ensemble: Ensemble,
    controller: Controller,
    mcu: Mcu,
    /// Inference lanes (one per ensemble member × batch slot); every
    /// activation of every member lives here, so a warm label tick
    /// allocates nothing. Built lazily on the first classification: a
    /// session whose classifications run through a serving group's shared
    /// batch scratch never classifies through its own head, and skipping
    /// the arena build there removes the dominant share of per-session
    /// scratch memory.
    scratch: Option<EnsembleScratch>,
    /// Combined class probabilities of the last classification.
    probas: Vec<f32>,
    /// Reused serial-command buffer (largest emission: three 7-byte
    /// frames in grip mode).
    cmd_buf: Vec<u8>,
}

impl std::fmt::Debug for InferenceHead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceHead")
            .field("ensemble", &self.ensemble.name())
            .field("mode", &self.controller.mode())
            .finish()
    }
}

impl InferenceHead {
    /// Assembles the head from a trained ensemble and a configured
    /// controller, with a fresh MCU. The inference scratch arena is built
    /// on the first classification through this head (see the field doc);
    /// the rest of the reusable state is allocated here, once.
    #[must_use]
    pub fn new(ensemble: Ensemble, controller: Controller) -> Self {
        Self {
            ensemble,
            controller,
            mcu: Mcu::new(),
            scratch: None,
            probas: vec![0.0; CLASSES],
            cmd_buf: Vec::with_capacity(32),
        }
    }

    /// Builds the head's own scratch arena now instead of on the first
    /// classification — the warm-up hook for latency-sensitive callers
    /// that want the first label tick to be as allocation-free as the
    /// rest.
    pub fn warm_scratch(&mut self) {
        if self.scratch.is_none() {
            self.scratch = Some(EnsembleScratch::new(&self.ensemble));
        }
    }

    /// Whether this head has built its own scratch arena (false for
    /// sessions served exclusively through a group's shared batch
    /// scratch).
    #[must_use]
    pub fn has_scratch(&self) -> bool {
        self.scratch.is_some()
    }

    /// The classifying ensemble.
    #[must_use]
    pub fn ensemble(&self) -> &Ensemble {
        &self.ensemble
    }

    /// Switches the voice-selected control mode.
    pub fn set_mode(&mut self, mode: ControlMode) {
        self.controller.set_mode(mode);
    }

    /// The active control mode.
    #[must_use]
    pub fn mode(&self) -> ControlMode {
        self.controller.mode()
    }

    /// Current value of a joint on the physical (simulated) arm.
    #[must_use]
    pub fn joint(&self, joint: Joint) -> f64 {
        self.mcu.arm.joint_value(joint)
    }

    /// One label step over a full channel-major window: classify on
    /// `pool`, drive the controller/MCU for a label period of
    /// `period_samples`, and record the label + joint snapshot at
    /// simulated time `t` into `trace` (and the stage timings into
    /// `latency`). Returns the predicted label.
    ///
    /// # Errors
    ///
    /// Propagates actuation failures.
    pub fn step(
        &mut self,
        window: &[f32],
        pool: &ExecPool,
        t: f64,
        period_samples: usize,
        trace: &mut SessionTrace,
        latency: &mut LatencyReport,
    ) -> Result<usize> {
        // Classification.
        let t1 = Instant::now();
        let label = self.classify(window, pool);
        latency.inference.record(t1.elapsed().as_secs_f64());
        self.apply(label, t, period_samples, trace, latency)
    }

    /// The classification half of the label tick: one batched (batch = 1)
    /// ensemble call into the head's preallocated scratch, then the shared
    /// argmax. Bit-identical to `Ensemble::predict_with`; zero heap
    /// allocations once warm.
    pub fn classify(&mut self, window: &[f32], pool: &ExecPool) -> usize {
        self.warm_scratch();
        let scratch = self.scratch.as_mut().expect("warmed above");
        // Slice rather than pass the whole buffer: a prior
        // `classify_batch_into` may have grown `probas` past one window.
        self.ensemble.predict_batch_into(
            window,
            1,
            CHANNELS,
            pool,
            scratch,
            &mut self.probas[..CLASSES],
        );
        ml::ensemble::argmax(&self.probas[..CLASSES])
    }

    /// The multi-window batch entry: classifies `batch` channel-major
    /// windows (stacked in `windows`) in one ensemble call through this
    /// head's scratch, appending one label per window to `labels`. Under
    /// the runtime-default plan v2 the ensemble runs true multi-window
    /// GEMMs, and v2's row-count invariance makes each label exactly what
    /// [`InferenceHead::classify`] would produce for that window alone —
    /// which is what lets a serving host batch across sessions without a
    /// numerics consequence.
    ///
    /// # Panics
    ///
    /// Panics if `windows` does not hold `batch` windows of this
    /// ensemble's window length.
    pub fn classify_batch_into(
        &mut self,
        windows: &[f32],
        batch: usize,
        pool: &ExecPool,
        labels: &mut Vec<usize>,
    ) {
        self.warm_scratch();
        let scratch = self.scratch.as_mut().expect("warmed above");
        self.probas.resize(batch * CLASSES, 0.0);
        self.ensemble
            .predict_batch_into(windows, batch, CHANNELS, pool, scratch, &mut self.probas);
        for b in 0..batch {
            labels.push(ml::ensemble::argmax(
                &self.probas[b * CLASSES..(b + 1) * CLASSES],
            ));
        }
    }

    /// The actuation + record half of the label tick. Split from
    /// [`InferenceHead::step`] so the serving micro-batcher can classify
    /// many sessions' windows in one ensemble call and still actuate each
    /// session through **this exact code**.
    ///
    /// # Errors
    ///
    /// Propagates actuation failures.
    pub fn apply(
        &mut self,
        label: usize,
        t: f64,
        period_samples: usize,
        trace: &mut SessionTrace,
        latency: &mut LatencyReport,
    ) -> Result<usize> {
        let t2 = Instant::now();
        let action = match label {
            0 => ActionLabel::Left,
            1 => ActionLabel::Right,
            _ => ActionLabel::Idle,
        };
        self.controller.on_label_into(action, &mut self.cmd_buf)?;
        if !self.cmd_buf.is_empty() {
            self.mcu.receive(&self.cmd_buf);
        }
        self.mcu.tick(period_samples as f64 / SAMPLE_RATE);
        latency.actuation.record(t2.elapsed().as_secs_f64());

        trace.labels.push(LabelEvent { t, label });
        trace.joints.push((
            t,
            self.mcu.arm.joint_value(Joint::Lift),
            self.mcu.arm.joint_value(Joint::Wrist),
            self.mcu.arm.joint_value(Joint::Grip),
        ));
        Ok(label)
    }
}

/// The assembled CognitiveArm system.
pub struct CognitiveArm {
    config: PipelineConfig,
    board: SimulatedBoard,
    chain: StreamingChain,
    head: InferenceHead,
    window: SlidingWindow,
    /// Reused channel-major flattening of the sliding window.
    flat_buf: Vec<f32>,
    elapsed_samples: u64,
    latency: LatencyReport,
    pool: Arc<ExecPool>,
}

impl std::fmt::Debug for CognitiveArm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CognitiveArm")
            .field("ensemble", &self.head.ensemble().name())
            .field("window_len", &self.window.window_len())
            .field("elapsed_samples", &self.elapsed_samples)
            .field("threads", &self.pool.threads())
            .finish()
    }
}

impl CognitiveArm {
    /// Assembles the system for one simulated subject.
    ///
    /// # Panics
    ///
    /// Panics if the filter design fails (the default spec never does).
    #[must_use]
    pub fn new(config: PipelineConfig, ensemble: Ensemble, subject_seed: u64) -> Self {
        let pool = match config.threads {
            Some(n) => Arc::new(ExecPool::new(n)),
            None => exec::shared(),
        };
        Self::with_pool(config, ensemble, subject_seed, pool)
    }

    /// [`CognitiveArm::new`] on an explicit execution pool, ignoring
    /// `config.threads` — the hook for multiplexing many systems over one
    /// serving pool (`serve::SessionManager`). Thread count never changes
    /// outputs, so sharing a pool never couples sessions numerically.
    ///
    /// # Panics
    ///
    /// Panics if the filter design fails (the default spec never does).
    #[must_use]
    pub fn with_pool(
        config: PipelineConfig,
        ensemble: Ensemble,
        subject_seed: u64,
        pool: Arc<ExecPool>,
    ) -> Self {
        let params = SubjectParams::sampled(subject_seed);
        // The loop drains the board every label period, so the ring never
        // holds more than one period (plus slack up to the window length);
        // sizing it to the consumption window instead of the hardware
        // default's 6 minutes cuts per-session scratch ~450× with
        // bit-identical frames.
        let ring = ensemble.window().max(config.label_every).max(64);
        let mut board = SimulatedBoard::with_buffer_capacity(params, subject_seed ^ 0xB0A7D, ring);
        board.start_stream().expect("fresh board starts");
        let chain = StreamingChain::new(&config.filter).expect("default filter spec is valid");
        let controller = Controller::new(config.controller, SafetyGate::new(config.safety));
        let window = SlidingWindow::new(ensemble.window());
        let flat_buf = Vec::with_capacity(CHANNELS * ensemble.window());
        Self {
            config,
            board,
            chain,
            head: InferenceHead::new(ensemble, controller),
            window,
            flat_buf,
            elapsed_samples: 0,
            latency: LatencyReport::default(),
            pool,
        }
    }

    /// The execution pool driving this system's parallel stages.
    #[must_use]
    pub fn pool(&self) -> &Arc<ExecPool> {
        &self.pool
    }

    /// The pipeline configuration this system was assembled with.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The classifying ensemble.
    #[must_use]
    pub fn ensemble(&self) -> &Ensemble {
        self.head.ensemble()
    }

    /// The frozen per-subject normalization, if installed (see
    /// [`CognitiveArm::set_normalization`]).
    #[must_use]
    pub fn normalization(&self) -> Option<&dsp::normalize::Zscore> {
        self.chain.normalization()
    }

    /// Installs the frozen per-subject normalization fitted during training
    /// (Sec. V-A). Without it the classifier sees raw µV while it was
    /// trained on z-scored data, and accuracy collapses — call this with
    /// the subject's statistics from
    /// [`crate::eval::PreparedData::zscores`].
    pub fn set_normalization(&mut self, zscore: dsp::normalize::Zscore) {
        self.chain.set_normalization(zscore);
    }

    /// Sets the mental task the simulated user performs.
    pub fn set_subject_action(&mut self, action: Action) {
        self.board.set_action(action);
    }

    /// Switches the voice-selected control mode (wired from
    /// [`crate::mux::VoiceMux`] by the caller, keeping the audio thread
    /// separate from the EEG loop as in Sec. III-F3).
    pub fn set_mode(&mut self, mode: ControlMode) {
        self.head.set_mode(mode);
    }

    /// The active control mode.
    #[must_use]
    pub fn mode(&self) -> ControlMode {
        self.head.mode()
    }

    /// Current value of a joint on the physical (simulated) arm.
    #[must_use]
    pub fn joint(&self, joint: Joint) -> f64 {
        self.head.joint(joint)
    }

    /// Latency accounting so far.
    #[must_use]
    pub fn latency(&self) -> &LatencyReport {
        &self.latency
    }

    /// Simulated seconds elapsed.
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_samples as f64 / SAMPLE_RATE
    }

    /// Runs the loop for `seconds` of simulated time, returning the trace.
    ///
    /// # Errors
    ///
    /// Propagates board and actuation failures.
    pub fn run_for(&mut self, seconds: f64) -> Result<SessionTrace> {
        let mut trace = SessionTrace::default();
        self.run_into(seconds, &mut trace)?;
        Ok(trace)
    }

    /// [`CognitiveArm::run_for`] appending to a caller-provided trace.
    /// With a trace whose capacity covers the segment, the steady-state
    /// label tick performs **zero heap allocations**: acquisition drains
    /// frame-by-frame, the filter runs in place, the window flattens into
    /// a reused buffer, the ensemble classifies into its preallocated
    /// scratch arena, and actuation reuses its command buffer
    /// (`tests/tests/allocation.rs` enforces this with a counting global
    /// allocator).
    ///
    /// # Errors
    ///
    /// Propagates board and actuation failures; rejects non-positive
    /// durations.
    pub fn run_into(&mut self, seconds: f64, trace: &mut SessionTrace) -> Result<()> {
        if seconds <= 0.0 {
            return Err(CoreError::BadConfig("non-positive run duration".into()));
        }
        let total = (seconds * SAMPLE_RATE) as usize;
        let step = self.config.label_every;
        let expected_labels = total.div_ceil(step.max(1));
        trace.labels.reserve(expected_labels);
        trace.joints.reserve(expected_labels);
        let mut done = 0usize;
        while done < total {
            let n = step.min(total - done);
            if self.advance_period(n)? {
                self.window.flat_into(&mut self.flat_buf);
                let t = self.elapsed_s();
                self.head
                    .step(&self.flat_buf, &self.pool, t, n, trace, &mut self.latency)?;
            }
            done += n;
        }
        Ok(())
    }

    /// Advances one label period of `n` samples — acquisition, causal
    /// filtering and windowing — and reports whether the sliding window is
    /// full (i.e. a classification is due). The lockstep half of the label
    /// tick: [`CognitiveArm::run_into`] drives it followed by the head's
    /// classify-actuate step, and the serving micro-batcher drives it for
    /// many sessions before one batched ensemble call.
    ///
    /// # Errors
    ///
    /// Propagates board failures.
    pub fn advance_period(&mut self, n: usize) -> Result<bool> {
        self.board.advance(n)?;
        let chain = &mut self.chain;
        let window = &mut self.window;
        let t0 = Instant::now();
        self.board.drain_frames(|frame| {
            let mut s = *frame;
            chain.step(&mut s);
            window.push(&s);
        })?;
        self.latency.filter.record(t0.elapsed().as_secs_f64());
        self.elapsed_samples += n as u64;
        Ok(self.window.is_full())
    }

    /// Appends the current channel-major window to `out` — how the
    /// micro-batcher gathers due sessions into one contiguous batch
    /// buffer. Values are exactly what the monolithic loop classifies.
    pub fn append_window_to(&self, out: &mut Vec<f32>) {
        self.window.append_to(out);
    }

    /// Applies an externally classified label (the micro-batcher's entry:
    /// the label must come from this session's ensemble over the window
    /// this tick produced). Records `inference_seconds` — the batched
    /// call's wall time, which is the latency this session observed — and
    /// runs the same actuation + record code as the monolithic loop.
    ///
    /// # Errors
    ///
    /// Propagates actuation failures.
    pub fn apply_label(
        &mut self,
        label: usize,
        period_samples: usize,
        inference_seconds: f64,
        trace: &mut SessionTrace,
    ) -> Result<usize> {
        let t = self.elapsed_s();
        self.apply_label_at(label, t, period_samples, inference_seconds, trace)
    }

    /// [`CognitiveArm::apply_label`] with the label's timestamp supplied by
    /// the caller. A ready-set scheduler may actuate a window one tick
    /// after gathering it (the session's clock has advanced by then); it
    /// captures `elapsed_s()` at gather time and passes it here so the
    /// trace records the time the window *became due* — exactly what the
    /// barrier scheduler writes.
    ///
    /// # Errors
    ///
    /// Propagates actuation failures.
    pub fn apply_label_at(
        &mut self,
        label: usize,
        t: f64,
        period_samples: usize,
        inference_seconds: f64,
        trace: &mut SessionTrace,
    ) -> Result<usize> {
        self.latency.inference.record(inference_seconds);
        self.head
            .apply(label, t, period_samples, trace, &mut self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{train_default_ensemble, DatasetBuilder, TrainBudget};
    use eeg::dataset::Protocol;

    fn quick_system() -> CognitiveArm {
        let data = DatasetBuilder::new(Protocol::quick(), 1, 21)
            .build()
            .unwrap();
        let ensemble = train_default_ensemble(&data, &TrainBudget::quick(), 3).unwrap();
        CognitiveArm::new(PipelineConfig::default(), ensemble, 21)
    }

    #[test]
    fn pipeline_emits_labels_at_the_configured_rate() {
        let mut sys = quick_system();
        sys.set_subject_action(Action::Idle);
        let trace = sys.run_for(3.0).unwrap();
        // Window fills after `window` samples (100 at quick config = 0.8 s),
        // then one label per 8 samples.
        let expected = ((3.0 * SAMPLE_RATE) as usize - 100) / 8;
        assert!(
            (trace.labels.len() as i64 - expected as i64).abs() <= 2,
            "{} labels vs expected {expected}",
            trace.labels.len()
        );
        // Label cadence ≈ 15 Hz.
        let rate = trace.labels.len() as f64 / (3.0 - 0.8);
        assert!(rate > 13.0 && rate < 17.0, "label rate {rate} Hz");
    }

    #[test]
    fn latency_is_recorded_for_every_stage() {
        let mut sys = quick_system();
        let _ = sys.run_for(2.0).unwrap();
        let lat = sys.latency();
        assert!(lat.inference.count > 0);
        assert!(lat.filter.mean_s() > 0.0);
        assert!(lat.end_to_end_s() > 0.0);
        assert!(lat.inference.max_s >= lat.inference.mean_s());
    }

    #[test]
    fn threads_config_sizes_the_pool() {
        /// A free stub classifier so this test skips training entirely.
        #[derive(Clone)]
        struct Stub;
        impl ml::ensemble::Classifier for Stub {
            fn predict_proba_window(&self, _w: &[f32], _c: usize, _l: usize) -> Vec<f32> {
                vec![1.0, 0.0, 0.0]
            }
            fn window(&self) -> usize {
                4
            }
            fn name(&self) -> String {
                "stub".into()
            }
            fn param_count(&self) -> usize {
                0
            }
            fn clone_box(&self) -> Box<dyn ml::ensemble::Classifier> {
                Box::new(self.clone())
            }
        }
        let ensemble = Ensemble::new(
            vec![ml::ensemble::Member::Custom(Box::new(Stub))],
            ml::ensemble::Voting::Soft,
        );
        let config = PipelineConfig {
            threads: Some(3),
            ..PipelineConfig::default()
        };
        let sys = CognitiveArm::new(config, ensemble, 1);
        assert_eq!(sys.pool().threads(), 3);
        // None delegates to the shared pool.
        let ensemble = Ensemble::new(
            vec![ml::ensemble::Member::Custom(Box::new(Stub))],
            ml::ensemble::Voting::Soft,
        );
        let sys = CognitiveArm::new(PipelineConfig::default(), ensemble, 1);
        assert!(Arc::ptr_eq(sys.pool(), &exec::shared()));
    }

    #[test]
    fn batched_classify_matches_per_window_classify() {
        let data = DatasetBuilder::new(Protocol::quick(), 1, 21)
            .build()
            .unwrap();
        let ensemble = train_default_ensemble(&data, &TrainBudget::quick(), 3).unwrap();
        let config = PipelineConfig::default();
        let controller =
            Controller::new(config.controller, SafetyGate::new(config.safety));
        let mut head = InferenceHead::new(ensemble, controller);
        let pool = ExecPool::new(2);

        let win_len = head.ensemble().window();
        let per_window = CHANNELS * win_len;
        let batch = 5;
        let windows: Vec<f32> = (0..batch * per_window)
            .map(|i| ((i * 37 + 11) % 97) as f32 * 0.021 - 1.0)
            .collect();

        let solo: Vec<usize> = (0..batch)
            .map(|b| head.classify(&windows[b * per_window..(b + 1) * per_window], &pool))
            .collect();
        let mut batched = Vec::new();
        head.classify_batch_into(&windows, batch, &pool, &mut batched);
        assert_eq!(batched, solo);
        // The head stays usable for batch = 1 afterwards (buffer grew).
        let again = head.classify(&windows[..per_window], &pool);
        assert_eq!(again, solo[0]);
    }

    #[test]
    fn mode_switch_changes_driven_joint() {
        let mut sys = quick_system();
        assert_eq!(sys.mode(), ControlMode::Arm);
        sys.set_mode(ControlMode::Fingers);
        assert_eq!(sys.mode(), ControlMode::Fingers);
    }

    #[test]
    fn zero_duration_is_rejected() {
        let mut sys = quick_system();
        assert!(matches!(
            sys.run_for(0.0),
            Err(CoreError::BadConfig(_))
        ));
    }

    #[test]
    fn trace_joints_track_the_mcu() {
        let mut sys = quick_system();
        sys.set_subject_action(Action::Right);
        let trace = sys.run_for(2.0).unwrap();
        let last = trace.joints.last().unwrap();
        assert!((last.1 - sys.joint(Joint::Lift)).abs() < 1e-9);
    }
}
