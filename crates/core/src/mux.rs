//! The VAD-gated voice-command path (Sec. III-F).
//!
//! Audio flows in as clips; the VAD finds speech; only then does the
//! keyword spotter run ("triggering the ASR model only when speech was
//! detected, minimizing resource consumption"); a recognized keyword maps
//! to the prosthetic's control mode.

use arm::controller::ControlMode;
use asr::kws::KeywordSpotter;
use asr::vad::{detect_speech, VadConfig};
use asr::Command;

use crate::Result;

/// Maps a recognized keyword to the control mode it selects.
#[must_use]
pub fn mode_of(cmd: Command) -> ControlMode {
    match cmd {
        Command::Arm => ControlMode::Arm,
        Command::Elbow => ControlMode::Elbow,
        Command::Fingers => ControlMode::Fingers,
    }
}

/// Statistics of the voice path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MuxStats {
    /// Clips processed.
    pub clips: u64,
    /// Clips where the VAD found no speech (spotter skipped).
    pub gated_out: u64,
    /// Successful recognitions.
    pub recognized: u64,
}

/// The voice-mode multiplexer.
#[derive(Debug)]
pub struct VoiceMux {
    spotter: KeywordSpotter,
    vad: VadConfig,
    stats: MuxStats,
}

impl VoiceMux {
    /// Wraps a trained spotter with default VAD settings.
    #[must_use]
    pub fn new(spotter: KeywordSpotter) -> Self {
        Self {
            spotter,
            vad: VadConfig::default(),
            stats: MuxStats::default(),
        }
    }

    /// Processing statistics so far.
    #[must_use]
    pub fn stats(&self) -> MuxStats {
        self.stats
    }

    /// Processes one microphone clip. Returns the newly selected mode, or
    /// `None` when the VAD gated the clip out or nothing was recognized.
    ///
    /// # Errors
    ///
    /// Propagates recognition failures on degenerate segments.
    pub fn process_clip(&mut self, clip: &[f32]) -> Result<Option<ControlMode>> {
        self.stats.clips += 1;
        let segments = detect_speech(clip, &self.vad);
        let Some(seg) = segments.iter().max_by_key(|s| s.len()) else {
            self.stats.gated_out += 1;
            return Ok(None);
        };
        let cmd = self.spotter.recognize(&clip[seg.start..seg.end])?;
        self.stats.recognized += 1;
        Ok(Some(mode_of(cmd)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr::audio::synth_clip;
    use asr::kws::KwsConfig;

    fn mux() -> VoiceMux {
        let spotter = KeywordSpotter::train(
            KwsConfig {
                hidden: 32,
                train_per_class: 20,
                epochs: 40,
                ..KwsConfig::default()
            },
            1,
        )
        .unwrap();
        VoiceMux::new(spotter)
    }

    #[test]
    fn keyword_switches_mode() {
        let mut m = mux();
        let mut hits = 0;
        for (cmd, expected) in [
            (Command::Arm, ControlMode::Arm),
            (Command::Elbow, ControlMode::Elbow),
            (Command::Fingers, ControlMode::Fingers),
        ] {
            for seed in 50..55 {
                let (clip, _, _) = synth_clip(cmd, 0.03, seed);
                if m.process_clip(&clip).unwrap() == Some(expected) {
                    hits += 1;
                }
            }
        }
        assert!(hits >= 12, "only {hits}/15 clips recognized correctly");
    }

    #[test]
    fn silence_is_gated_out() {
        let mut m = mux();
        let silence = vec![0.001f32; 16000];
        assert_eq!(m.process_clip(&silence).unwrap(), None);
        assert_eq!(m.stats().gated_out, 1);
        assert_eq!(m.stats().recognized, 0);
    }

    #[test]
    fn mode_mapping_is_total() {
        assert_eq!(mode_of(Command::Arm), ControlMode::Arm);
        assert_eq!(mode_of(Command::Elbow), ControlMode::Elbow);
        assert_eq!(mode_of(Command::Fingers), ControlMode::Fingers);
    }
}
