//! Closed-loop real-world validation (Sec. IV-A5).
//!
//! "Participants independently controlled the arm's movements during test
//! sessions, successfully translating their intended actions in 19 out of
//! 20 sessions." Each simulated session: the subject holds one intention
//! (left or right) for a few seconds; the session succeeds when the active
//! joint moved in the intended direction by a meaningful amount.

use eeg::types::Action;
use serde::{Deserialize, Serialize};

use crate::pipeline::CognitiveArm;
use crate::Result;

/// Validation protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Number of sessions (paper: 20).
    pub trials: usize,
    /// Seconds the intention is held per session.
    pub trial_secs: f64,
    /// Idle settling time between sessions.
    pub rest_secs: f64,
    /// Minimum joint displacement (degrees / grip %) to count as success.
    pub min_move: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            trials: 20,
            trial_secs: 4.0,
            rest_secs: 1.5,
            min_move: 2.0,
        }
    }
}

/// Per-trial outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// The intended action.
    pub intended: Action,
    /// Joint displacement achieved (signed, + = "right" direction).
    pub displacement: f64,
    /// Whether the intention was translated correctly.
    pub success: bool,
}

/// The validation report (the paper's "19 out of 20").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Every trial.
    pub trials: Vec<TrialOutcome>,
}

impl ValidationReport {
    /// Number of successful sessions.
    #[must_use]
    pub fn successes(&self) -> usize {
        self.trials.iter().filter(|t| t.success).count()
    }

    /// Success ratio in `[0, 1]`.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.successes() as f64 / self.trials.len() as f64
    }
}

/// Runs the closed-loop validation protocol on an assembled system.
///
/// Trials alternate left/right intentions. The system's current voice mode
/// determines which joint is watched. Inference runs on the system's
/// [`exec::ExecPool`] (see [`crate::pipeline::PipelineConfig::threads`]);
/// because the pool is deterministic, the report is identical for any
/// thread count.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_validation(system: &mut CognitiveArm, config: &SessionConfig) -> Result<ValidationReport> {
    let joint = system.mode().joint();
    let mut trials = Vec::with_capacity(config.trials);
    // Pre-roll so the window is full and filters settled.
    system.set_subject_action(Action::Idle);
    let _ = system.run_for(2.0)?;

    for trial in 0..config.trials {
        let intended = if trial % 2 == 0 {
            Action::Right
        } else {
            Action::Left
        };
        // Rest, then hold the intention.
        system.set_subject_action(Action::Idle);
        let _ = system.run_for(config.rest_secs)?;
        let before = system.joint(joint);
        system.set_subject_action(intended);
        let _ = system.run_for(config.trial_secs)?;
        let after = system.joint(joint);
        let displacement = after - before;
        let success = match intended {
            Action::Right => displacement > config.min_move,
            Action::Left => displacement < -config.min_move,
            Action::Idle => displacement.abs() <= config.min_move,
        };
        trials.push(TrialOutcome {
            intended,
            displacement,
            success,
        });
    }
    Ok(ValidationReport { trials })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{train_default_ensemble, DatasetBuilder, TrainBudget};
    use crate::pipeline::PipelineConfig;
    use eeg::dataset::Protocol;

    #[test]
    fn validation_mostly_succeeds_with_a_trained_system() {
        // Train on the same simulated subject that drives the session (the
        // paper's participants were calibrated users of the system).
        let data = DatasetBuilder::new(Protocol::quick(), 1, 33).build().unwrap();
        let ensemble = train_default_ensemble(&data, &TrainBudget::quick(), 5).unwrap();
        // Same subject physiology as the training study (subject 0 of seed
        // 33) plus that subject's frozen normalization.
        let zscore = data.zscores[0].clone();
        // Run the loop on a 2-worker pool: the validation outcome may not
        // depend on the thread count.
        let config = PipelineConfig {
            threads: Some(2),
            ..PipelineConfig::default()
        };
        let mut system = CognitiveArm::new(config, ensemble, 33);
        system.set_normalization(zscore);
        let report = run_validation(
            &mut system,
            &SessionConfig {
                trials: 6,
                trial_secs: 3.0,
                rest_secs: 1.0,
                min_move: 1.0,
            },
        )
        .unwrap();
        assert_eq!(report.trials.len(), 6);
        assert!(
            report.success_rate() >= 0.5,
            "success rate {} too low: {:?}",
            report.success_rate(),
            report.trials
        );
    }

    #[test]
    fn report_counts_are_consistent() {
        let report = ValidationReport {
            trials: vec![
                TrialOutcome {
                    intended: Action::Right,
                    displacement: 5.0,
                    success: true,
                },
                TrialOutcome {
                    intended: Action::Left,
                    displacement: 1.0,
                    success: false,
                },
            ],
        };
        assert_eq!(report.successes(), 1);
        assert!((report.success_rate() - 0.5).abs() < 1e-12);
    }
}
