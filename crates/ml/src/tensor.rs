//! Dense `f32` tensors and the numeric kernels everything else builds on.
//!
//! Deliberately simple: contiguous row-major storage, explicit shapes, and
//! a blocked `matmul` that is fast enough for the model sizes the paper
//! deploys on a Jetson-class device. No views/strides — clarity over
//! generality, since the autodiff layer above composes whole-tensor ops.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::arena::ArenaVec;

/// A dense row-major tensor of `f32`.
///
/// Storage is an [`ArenaVec`]: either an owned buffer (trained models,
/// intermediate results — exactly the old `Vec<f32>` semantics) or a
/// borrowed view into a shared weight arena such as a memory-mapped
/// `.cogm` image, in which case clones are refcount bumps and mutation is
/// copy-on-write.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: ArenaVec<f32>,
}

impl Tensor {
    /// Creates a tensor from shape and data (a `Vec<f32>` or an
    /// [`ArenaVec`]).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    #[must_use]
    pub fn new(shape: Vec<usize>, data: impl Into<ArenaVec<f32>>) -> Self {
        let data = data.into();
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {shape:?} implies {numel} elements, got {}",
            data.len()
        );
        Self { shape, data }
    }

    /// All-zero tensor.
    #[must_use]
    pub fn zeros(shape: Vec<usize>) -> Self {
        let numel = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; numel].into(),
        }
    }

    /// Tensor filled with a constant.
    #[must_use]
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let numel = shape.iter().product();
        Self {
            shape,
            data: vec![value; numel].into(),
        }
    }

    /// Uniform init in `[-limit, limit]` (used for Glorot/He scaling by the
    /// layers).
    #[must_use]
    pub fn uniform(shape: Vec<usize>, limit: f32, rng: &mut StdRng) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| rng.gen_range(-limit..=limit)).collect();
        Self { shape, data }
    }

    /// Whether the data lives in a shared weight arena (clones are
    /// refcount bumps, not copies).
    #[must_use]
    pub fn is_shared(&self) -> bool {
        self.data.is_shared()
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (copy-on-write when the data is
    /// arena-shared).
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.data.make_mut()
    }

    /// Consumes the tensor, returning its data buffer (one copy when
    /// arena-shared).
    #[must_use]
    pub fn into_data(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// Reinterprets the data with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    #[must_use]
    pub fn reshaped(mut self, shape: Vec<usize>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.data.len(), "reshape to {shape:?} changes size");
        self.shape = shape;
        self
    }

    /// Number of rows when interpreted as a matrix `[rows, cols]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    #[must_use]
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "not a matrix: {:?}", self.shape);
        self.shape[0]
    }

    /// Number of columns when interpreted as a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    #[must_use]
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "not a matrix: {:?}", self.shape);
        self.shape[1]
    }

    /// Matrix multiply `self [m,k] × rhs [k,n] -> [m,n]`.
    ///
    /// Uses the ikj loop order so the inner loop streams both operands.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or inner dimensions differ.
    #[must_use]
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (rhs.rows(), rhs.cols());
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        matmul_kernel(&self.data, &rhs.data, m, k, n, &mut out);
        Tensor::new(vec![m, n], out)
    }

    /// Matrix multiply with the right operand transposed:
    /// `self [m,k] × rhs^T where rhs is [n,k] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics on non-2-D operands or mismatched inner dimensions.
    #[must_use]
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (rhs.rows(), rhs.cols());
        assert_eq!(k, k2, "matmul_t inner dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        matmul_t_kernel(&self.data, &rhs.data, m, k, n, &mut out);
        Tensor::new(vec![m, n], out)
    }

    /// Transpose of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    #[must_use]
    pub fn transposed(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::new(vec![n, m], out)
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "add_assign shape mismatch");
        for (a, b) in self.data.make_mut().iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Elementwise in-place scaling.
    pub fn scale_assign(&mut self, k: f32) {
        for a in self.data.make_mut() {
            *a *= k;
        }
    }

    /// Returns a new tensor mapped elementwise.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the maximum element in each row of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    #[must_use]
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (m, n) = (self.rows(), self.cols());
        (0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// True if any element is NaN or infinite.
    #[must_use]
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

/// The raw `a [m,k] × b [k,n] -> out [m,n]` kernel behind
/// [`Tensor::matmul`], exposed over slices so the compiled inference plan
/// (`crate::plan`) can run the *same arithmetic in the same order* into a
/// preallocated scratch buffer — sharing the loop is what makes the
/// allocation-free path bit-identical to the allocating one.
///
/// `out` is fully overwritten (accumulation starts from zero).
///
/// On x86-64 hosts with AVX2 the kernel dispatches to an explicit SIMD
/// variant ([`matmul_v1_avx2`]). Dispatch is **bit-invisible**: per output
/// element both variants apply one `multiply, add` per non-zero `a` term
/// in ascending `k` order (no FMA contraction, no reassociation) — column
/// lanes are independent, so vectorizing across them cannot reorder any
/// element's accumulation. The frozen v1 golden fixtures therefore stay
/// valid on every host.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` dimensions imply.
pub fn matmul_kernel(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert!(a.len() >= m * k, "lhs shorter than m*k");
    assert!(b.len() >= k * n, "rhs shorter than k*n");
    let out = &mut out[..m * n];
    out.fill(0.0);
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() && n >= 8 {
        // SAFETY: AVX2 support was just detected, and the slice lengths
        // were asserted above; the kernel reads `a[..m*k]`, `b[..k*n]` and
        // writes `out[..m*n]` only.
        unsafe { matmul_v1_avx2(a, b, m, k, n, out) };
        return;
    }
    matmul_v1_scalar(a, b, m, k, n, 0, out);
}

/// The scalar reference body of [`matmul_kernel`], restricted to the
/// column range `[j0, n)` so it also serves as the SIMD variant's column
/// tail. Accumulation starts from the (pre-zeroed) buffer contents.
fn matmul_v1_scalar(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, j0: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow[j0..].iter_mut().zip(&brow[j0..]) {
                *o += av * bv;
            }
        }
    }
}

/// AVX2 variant of the v1 kernel: eight-column panels whose accumulators
/// live in registers across the entire `k` loop. Per output element the
/// operation sequence is *identical* to [`matmul_v1_scalar`] — skip
/// `a == 0`, broadcast, multiply, single add (`vmulps`/`vaddps`, never
/// `vfmadd`) in ascending `k` order — so the variants agree bit for bit.
/// Columns `n - n % 8..` are handled by the scalar tail.
///
/// # Safety
///
/// Caller must ensure AVX2 is available and that `a.len() >= m*k`,
/// `b.len() >= k*n`, `out.len() >= m*n`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_v1_avx2(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };
    let panels = n - n % 8;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + 8 <= n {
            let mut acc = _mm256_setzero_ps();
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), brow));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j), acc);
            j += 8;
        }
    }
    if panels < n {
        matmul_v1_scalar(a, b, m, k, n, panels, out);
    }
}

/// The **plan-v2** dense GEMM: `a [m,k] × b [k,n] -> out [m,n]`, blocked
/// four `a`-rows deep with the `k` loop unrolled in pairs.
///
/// Two deliberate departures from [`matmul_kernel`] (v1):
///
/// * **Row blocking (MR = 4).** Four output rows advance together, so each
///   streamed `b` row is reused four times from registers/L1 instead of
///   once — at batch 16 the weight matrix crosses memory four times, not
///   sixteen. This is pure scheduling: each output row still accumulates
///   independently, so results are **row-count invariant** — row `i` of an
///   `m`-row call is bit-identical to a 1-row call on the same data, which
///   is what lets the batched serving tick share one numerics version with
///   solo sessions.
/// * **Paired-`k` reassociation.** Each update folds two `k` terms at once
///   (`acc + (a0·b0 + a1·b1)` instead of `(acc + a0·b0) + a1·b1`), halving
///   the dependency chain on the accumulator. f32 addition is not
///   associative, so this produces *different bits* than v1 — the honest
///   reason the plan version exists. Odd `k` finishes with a single term;
///   the remainder rows (`m % 4`) use the same per-row pairing, keeping
///   the invariance above.
///
/// `out` is fully overwritten.
///
/// On x86-64 hosts with AVX2 the kernel dispatches to an explicit SIMD
/// variant ([`matmul_blocked_avx2`]) that vectorizes the `j` (output
/// column) loop eight lanes wide. Column lanes are independent — the SIMD
/// variant performs *exactly* the scalar kernel's per-element operations
/// in the same order (multiply, pair-add, accumulate; no FMA contraction,
/// no `k` reassociation beyond the pairing both variants share) — so
/// hardware dispatch is **bit-invisible**: the same model produces the
/// same v2 bits on every host, and the committed golden traces stay valid
/// everywhere.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` dimensions imply.
pub fn matmul_blocked_kernel(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert!(a.len() >= m * k, "lhs shorter than m*k");
    assert!(b.len() >= k * n, "rhs shorter than k*n");
    let out = &mut out[..m * n];
    out.fill(0.0);
    #[cfg(target_arch = "x86_64")]
    if crate::simd::enabled() && n >= 8 {
        // SAFETY: AVX2 support was just detected, and the slice lengths
        // were asserted above; the kernel reads `a[..m*k]`, `b[..k*n]` and
        // writes `out[..m*n]` only.
        unsafe { matmul_blocked_avx2(a, b, m, k, n, out) };
        return;
    }
    matmul_blocked_scalar(a, b, m, k, n, 0, out);
}

/// The scalar reference body of [`matmul_blocked_kernel`], restricted to
/// the column range `[j0, n)` so it also serves as the SIMD variant's
/// column tail. `out` rows outside the range are left untouched;
/// accumulation starts from the (pre-zeroed) buffer contents.
fn matmul_blocked_scalar(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    j0: usize,
    out: &mut [f32],
) {
    let mut i = 0;
    while i + 4 <= m {
        let (o0, rest) = out[i * n..(i + 4) * n].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let (a0, a1, a2, a3) = (
            &a[i * k..(i + 1) * k],
            &a[(i + 1) * k..(i + 2) * k],
            &a[(i + 2) * k..(i + 3) * k],
            &a[(i + 3) * k..(i + 4) * k],
        );
        let mut p = 0;
        while p + 2 <= k {
            let b0 = &b[p * n..(p + 1) * n];
            let b1 = &b[(p + 1) * n..(p + 2) * n];
            let (x00, x01) = (a0[p], a0[p + 1]);
            let (x10, x11) = (a1[p], a1[p + 1]);
            let (x20, x21) = (a2[p], a2[p + 1]);
            let (x30, x31) = (a3[p], a3[p + 1]);
            for j in j0..n {
                let (v0, v1) = (b0[j], b1[j]);
                o0[j] += x00 * v0 + x01 * v1;
                o1[j] += x10 * v0 + x11 * v1;
                o2[j] += x20 * v0 + x21 * v1;
                o3[j] += x30 * v0 + x31 * v1;
            }
            p += 2;
        }
        if p < k {
            let b0 = &b[p * n..(p + 1) * n];
            let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
            for j in j0..n {
                let v0 = b0[j];
                o0[j] += x0 * v0;
                o1[j] += x1 * v0;
                o2[j] += x2 * v0;
                o3[j] += x3 * v0;
            }
        }
        i += 4;
    }
    while i < m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut p = 0;
        while p + 2 <= k {
            let b0 = &b[p * n..(p + 1) * n];
            let b1 = &b[(p + 1) * n..(p + 2) * n];
            let (x0, x1) = (arow[p], arow[p + 1]);
            for j in j0..n {
                orow[j] += x0 * b0[j] + x1 * b1[j];
            }
            p += 2;
        }
        if p < k {
            let b0 = &b[p * n..(p + 1) * n];
            let x0 = arow[p];
            for j in j0..n {
                orow[j] += x0 * b0[j];
            }
        }
        i += 1;
    }
}

/// AVX2 variant of the blocked GEMM: eight-column panels whose f32
/// accumulators live in registers across the entire `k` loop, four `a`
/// rows deep. Per output element the operation sequence is *identical* to
/// [`matmul_blocked_scalar`] — broadcast-multiply the paired `k` terms,
/// add the pair, fold into the accumulator (`vmulps`/`vaddps`, never
/// `vfmadd`, which would skip the intermediate rounding the scalar kernel
/// performs) — so the two variants agree bit for bit; lanes only change
/// *which* independent columns advance together. Columns `n - n % 8..`
/// are handled by the scalar tail.
///
/// # Safety
///
/// Caller must ensure AVX2 is available and that `a.len() >= m*k`,
/// `b.len() >= k*n`, `out.len() >= m*n`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_blocked_avx2(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };
    let panels = n - n % 8;
    let mut i = 0;
    while i + 4 <= m {
        let (a0, a1, a2, a3) = (
            &a[i * k..(i + 1) * k],
            &a[(i + 1) * k..(i + 2) * k],
            &a[(i + 2) * k..(i + 3) * k],
            &a[(i + 3) * k..(i + 4) * k],
        );
        let mut j = 0;
        while j + 8 <= n {
            let mut c0 = _mm256_setzero_ps();
            let mut c1 = _mm256_setzero_ps();
            let mut c2 = _mm256_setzero_ps();
            let mut c3 = _mm256_setzero_ps();
            let mut p = 0;
            while p + 2 <= k {
                let b0 = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                let b1 = _mm256_loadu_ps(b.as_ptr().add((p + 1) * n + j));
                let t0 = _mm256_add_ps(
                    _mm256_mul_ps(_mm256_set1_ps(a0[p]), b0),
                    _mm256_mul_ps(_mm256_set1_ps(a0[p + 1]), b1),
                );
                let t1 = _mm256_add_ps(
                    _mm256_mul_ps(_mm256_set1_ps(a1[p]), b0),
                    _mm256_mul_ps(_mm256_set1_ps(a1[p + 1]), b1),
                );
                let t2 = _mm256_add_ps(
                    _mm256_mul_ps(_mm256_set1_ps(a2[p]), b0),
                    _mm256_mul_ps(_mm256_set1_ps(a2[p + 1]), b1),
                );
                let t3 = _mm256_add_ps(
                    _mm256_mul_ps(_mm256_set1_ps(a3[p]), b0),
                    _mm256_mul_ps(_mm256_set1_ps(a3[p + 1]), b1),
                );
                c0 = _mm256_add_ps(c0, t0);
                c1 = _mm256_add_ps(c1, t1);
                c2 = _mm256_add_ps(c2, t2);
                c3 = _mm256_add_ps(c3, t3);
                p += 2;
            }
            if p < k {
                let b0 = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(a0[p]), b0));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(a1[p]), b0));
                c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(a2[p]), b0));
                c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(a3[p]), b0));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j), c0);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 1) * n + j), c1);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 2) * n + j), c2);
            _mm256_storeu_ps(out.as_mut_ptr().add((i + 3) * n + j), c3);
            j += 8;
        }
        i += 4;
    }
    while i < m {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + 8 <= n {
            let mut c0 = _mm256_setzero_ps();
            let mut p = 0;
            while p + 2 <= k {
                let b0 = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                let b1 = _mm256_loadu_ps(b.as_ptr().add((p + 1) * n + j));
                let t = _mm256_add_ps(
                    _mm256_mul_ps(_mm256_set1_ps(arow[p]), b0),
                    _mm256_mul_ps(_mm256_set1_ps(arow[p + 1]), b1),
                );
                c0 = _mm256_add_ps(c0, t);
                p += 2;
            }
            if p < k {
                let b0 = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(arow[p]), b0));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j), c0);
            j += 8;
        }
        i += 1;
    }
    if panels < n {
        matmul_blocked_scalar(a, b, m, k, n, panels, out);
    }
}

/// The raw `a [m,k] × b^T (b [n,k]) -> out [m,n]` kernel behind
/// [`Tensor::matmul_t`] (see [`matmul_kernel`] for why it exists).
///
/// # Panics
///
/// Panics if any slice is shorter than its dimensions imply.
pub fn matmul_t_kernel(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::new(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_t_equals_matmul_of_transpose() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::uniform(vec![4, 6], 1.0, &mut rng);
        let b = Tensor::uniform(vec![5, 6], 1.0, &mut rng);
        let direct = a.matmul_t(&b);
        let via_transpose = a.matmul(&b.transposed());
        for (x, y) in direct.data().iter().zip(via_transpose.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn blocked_kernel_is_row_count_invariant() {
        // Every row of a blocked m-row call must be bit-identical to a
        // 1-row call on the same data: the batched serving path depends on
        // this to share one numerics version with solo sessions. Odd k
        // exercises the single-k tail; m values straddle the 4-row blocks.
        let mut rng = StdRng::seed_from_u64(3);
        for (k, n) in [(7, 5), (8, 6), (33, 17)] {
            let b = Tensor::uniform(vec![k, n], 1.0, &mut rng);
            for m in [1usize, 3, 4, 5, 16] {
                let a = Tensor::uniform(vec![m, k], 1.0, &mut rng);
                let mut batched = vec![0.0f32; m * n];
                matmul_blocked_kernel(a.data(), b.data(), m, k, n, &mut batched);
                for i in 0..m {
                    let mut solo = vec![0.0f32; n];
                    matmul_blocked_kernel(
                        &a.data()[i * k..(i + 1) * k],
                        b.data(),
                        1,
                        k,
                        n,
                        &mut solo,
                    );
                    for (x, y) in solo.iter().zip(&batched[i * n..(i + 1) * n]) {
                        assert_eq!(x.to_bits(), y.to_bits(), "m={m} k={k} n={n} row {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_kernel_dispatch_is_bit_invisible() {
        // Whatever SIMD variant the host dispatches to must reproduce the
        // scalar reference bit for bit — the committed v2 golden traces
        // depend on it. Shapes straddle the 4-row block, the 8-column
        // panel and the paired-k tail.
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [(1, 7, 3), (4, 8, 8), (6, 33, 19), (16, 40, 26), (5, 9, 8)] {
            let a = Tensor::uniform(vec![m, k], 1.0, &mut rng);
            let b = Tensor::uniform(vec![k, n], 1.0, &mut rng);
            let mut dispatched = vec![0.0f32; m * n];
            matmul_blocked_kernel(a.data(), b.data(), m, k, n, &mut dispatched);
            let mut scalar = vec![0.0f32; m * n];
            matmul_blocked_scalar(a.data(), b.data(), m, k, n, 0, &mut scalar);
            for (i, (x, y)) in scalar.iter().zip(&dispatched).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "m={m} k={k} n={n} elem {i}: scalar {x} vs dispatched {y}"
                );
            }
        }
    }

    #[test]
    fn blocked_kernel_tracks_v1_within_float_tolerance() {
        // v2 reassociates the k loop, so bits differ from v1 — but only by
        // accumulated f32 rounding, not by algorithm.
        let mut rng = StdRng::seed_from_u64(4);
        let (m, k, n) = (6, 37, 23);
        let a = Tensor::uniform(vec![m, k], 1.0, &mut rng);
        let b = Tensor::uniform(vec![k, n], 1.0, &mut rng);
        let mut v1 = vec![0.0f32; m * n];
        let mut v2 = vec![0.0f32; m * n];
        matmul_kernel(a.data(), b.data(), m, k, n, &mut v1);
        matmul_blocked_kernel(a.data(), b.data(), m, k, n, &mut v2);
        for (x, y) in v1.iter().zip(&v2) {
            assert!((x - y).abs() <= 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_roundtrips() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::uniform(vec![3, 7], 1.0, &mut rng);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let t = Tensor::new(vec![2, 3], vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.8]);
        assert_eq!(t.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshaped(vec![3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "changes size")]
    fn reshape_rejects_size_change() {
        let _ = Tensor::zeros(vec![2, 3]).reshaped(vec![2, 2]);
    }

    #[test]
    fn uniform_respects_limit_and_seed() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = Tensor::uniform(vec![100], 0.5, &mut rng1);
        let b = Tensor::uniform(vec![100], 0.5, &mut rng2);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(vec![3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
