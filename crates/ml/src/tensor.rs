//! Dense `f32` tensors and the numeric kernels everything else builds on.
//!
//! Deliberately simple: contiguous row-major storage, explicit shapes, and
//! a blocked `matmul` that is fast enough for the model sizes the paper
//! deploys on a Jetson-class device. No views/strides — clarity over
//! generality, since the autodiff layer above composes whole-tensor ops.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from shape and data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    #[must_use]
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {shape:?} implies {numel} elements, got {}",
            data.len()
        );
        Self { shape, data }
    }

    /// All-zero tensor.
    #[must_use]
    pub fn zeros(shape: Vec<usize>) -> Self {
        let numel = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; numel],
        }
    }

    /// Tensor filled with a constant.
    #[must_use]
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let numel = shape.iter().product();
        Self {
            shape,
            data: vec![value; numel],
        }
    }

    /// Uniform init in `[-limit, limit]` (used for Glorot/He scaling by the
    /// layers).
    #[must_use]
    pub fn uniform(shape: Vec<usize>, limit: f32, rng: &mut StdRng) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| rng.gen_range(-limit..=limit)).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data buffer.
    #[must_use]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the data with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    #[must_use]
    pub fn reshaped(mut self, shape: Vec<usize>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.data.len(), "reshape to {shape:?} changes size");
        self.shape = shape;
        self
    }

    /// Number of rows when interpreted as a matrix `[rows, cols]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    #[must_use]
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "not a matrix: {:?}", self.shape);
        self.shape[0]
    }

    /// Number of columns when interpreted as a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    #[must_use]
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "not a matrix: {:?}", self.shape);
        self.shape[1]
    }

    /// Matrix multiply `self [m,k] × rhs [k,n] -> [m,n]`.
    ///
    /// Uses the ikj loop order so the inner loop streams both operands.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or inner dimensions differ.
    #[must_use]
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (rhs.rows(), rhs.cols());
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        matmul_kernel(&self.data, &rhs.data, m, k, n, &mut out);
        Tensor::new(vec![m, n], out)
    }

    /// Matrix multiply with the right operand transposed:
    /// `self [m,k] × rhs^T where rhs is [n,k] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics on non-2-D operands or mismatched inner dimensions.
    #[must_use]
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (rhs.rows(), rhs.cols());
        assert_eq!(k, k2, "matmul_t inner dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        matmul_t_kernel(&self.data, &rhs.data, m, k, n, &mut out);
        Tensor::new(vec![m, n], out)
    }

    /// Transpose of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    #[must_use]
    pub fn transposed(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::new(vec![n, m], out)
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Elementwise in-place scaling.
    pub fn scale_assign(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Returns a new tensor mapped elementwise.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the maximum element in each row of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    #[must_use]
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (m, n) = (self.rows(), self.cols());
        (0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// True if any element is NaN or infinite.
    #[must_use]
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

/// The raw `a [m,k] × b [k,n] -> out [m,n]` kernel behind
/// [`Tensor::matmul`], exposed over slices so the compiled inference plan
/// (`crate::plan`) can run the *same arithmetic in the same order* into a
/// preallocated scratch buffer — sharing the loop is what makes the
/// allocation-free path bit-identical to the allocating one.
///
/// `out` is fully overwritten (accumulation starts from zero).
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` dimensions imply.
pub fn matmul_kernel(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    let out = &mut out[..m * n];
    out.fill(0.0);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// The raw `a [m,k] × b^T (b [n,k]) -> out [m,n]` kernel behind
/// [`Tensor::matmul_t`] (see [`matmul_kernel`] for why it exists).
///
/// # Panics
///
/// Panics if any slice is shorter than its dimensions imply.
pub fn matmul_t_kernel(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::new(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_t_equals_matmul_of_transpose() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::uniform(vec![4, 6], 1.0, &mut rng);
        let b = Tensor::uniform(vec![5, 6], 1.0, &mut rng);
        let direct = a.matmul_t(&b);
        let via_transpose = a.matmul(&b.transposed());
        for (x, y) in direct.data().iter().zip(via_transpose.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_roundtrips() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::uniform(vec![3, 7], 1.0, &mut rng);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let t = Tensor::new(vec![2, 3], vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.8]);
        assert_eq!(t.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshaped(vec![3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "changes size")]
    fn reshape_rejects_size_change() {
        let _ = Tensor::zeros(vec![2, 3]).reshaped(vec![2, 2]);
    }

    #[test]
    fn uniform_respects_limit_and_seed() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = Tensor::uniform(vec![100], 0.5, &mut rng1);
        let b = Tensor::uniform(vec![100], 0.5, &mut rng2);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(vec![3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
