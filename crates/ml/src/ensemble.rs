//! Ensembles of heterogeneous classifiers (Fig. 11).
//!
//! The paper trains "ensemble combinations" of the four families and finds
//! CNN + Transformer best. Members may expect different window lengths (the
//! CNN wants 190 samples, the RF 90), so the ensemble holds a window long
//! enough for everyone and hands each member the most recent slice it needs.

use exec::ExecPool;

use crate::forest::{window_stat_features, window_stat_features_into, RandomForest};
use crate::infer::{softmax_into, InferModel};
use crate::models::CLASSES;
use crate::plan::{InferPlan, PlanVersion};

/// Anything that can classify a channel-major EEG window.
pub trait Classifier: Send + Sync {
    /// Class probabilities for the trailing `self.window()` samples of the
    /// given window.
    fn predict_proba_window(&self, window: &[f32], channels: usize, win_len: usize) -> Vec<f32>;

    /// Window length in samples this classifier wants.
    fn window(&self) -> usize;

    /// Human-readable name.
    fn name(&self) -> String;

    /// Effective parameter count.
    fn param_count(&self) -> usize;

    /// A boxed deep copy (lets [`Ensemble`] be `Clone` over trait objects).
    fn clone_box(&self) -> Box<dyn Classifier>;
}

/// Extracts the channel-major tail of length `target` from a longer
/// channel-major window.
///
/// # Panics
///
/// Panics if `target > win_len` or the layout is inconsistent.
#[must_use]
pub fn tail_window(window: &[f32], channels: usize, win_len: usize, target: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(channels * target);
    tail_window_into(window, channels, win_len, target, &mut out);
    out
}

/// [`tail_window`] into a reused buffer (cleared first) — the
/// allocation-free serving path; identical values.
///
/// # Panics
///
/// Panics if `target > win_len` or the layout is inconsistent.
pub fn tail_window_into(
    window: &[f32],
    channels: usize,
    win_len: usize,
    target: usize,
    out: &mut Vec<f32>,
) {
    assert_eq!(window.len(), channels * win_len, "window layout");
    assert!(target <= win_len, "target {target} > window {win_len}");
    out.clear();
    for ch in 0..channels {
        let row = &window[ch * win_len..(ch + 1) * win_len];
        out.extend_from_slice(&row[win_len - target..]);
    }
}

impl Classifier for InferModel {
    fn predict_proba_window(&self, window: &[f32], channels: usize, win_len: usize) -> Vec<f32> {
        let tail = tail_window(window, channels, win_len, self.window());
        self.predict_proba(&tail)
    }

    fn window(&self) -> usize {
        InferModel::window(self)
    }

    fn name(&self) -> String {
        self.kind().to_owned()
    }

    fn param_count(&self) -> usize {
        InferModel::param_count(self)
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

/// Random forest adapted to raw windows: computes the Table III statistical
/// features internally.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestClassifier {
    forest: RandomForest,
    window: usize,
}

impl ForestClassifier {
    /// Wraps a fitted forest with its expected window length.
    #[must_use]
    pub fn new(forest: RandomForest, window: usize) -> Self {
        Self { forest, window }
    }

    /// The wrapped forest.
    #[must_use]
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }
}

impl Classifier for ForestClassifier {
    fn predict_proba_window(&self, window: &[f32], channels: usize, win_len: usize) -> Vec<f32> {
        let tail = tail_window(window, channels, win_len, self.window);
        let features = window_stat_features(&tail, channels);
        self.forest.predict_proba(&features)
    }

    fn window(&self) -> usize {
        self.window
    }

    fn name(&self) -> String {
        format!("rf[{} trees]", self.forest.config().n_estimators)
    }

    fn param_count(&self) -> usize {
        self.forest.total_nodes()
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

/// Voting strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Voting {
    /// Average the members' probability vectors (the paper's ensembles
    /// aggregate predictions to reduce variance, Sec. III-D3).
    Soft,
    /// One vote per member's argmax.
    Hard,
}

/// A concrete ensemble member, tagged by kind.
///
/// The explicit kind tag is what makes ensembles persistable: `model-io`
/// can serialize `Net`/`Forest` members by matching on the variant, where
/// the old `Vec<Box<dyn Classifier>>` erasure left no way to recover the
/// concrete type. `Custom` keeps the open trait-object door for tests and
/// experimental classifiers; it is the one variant a save refuses.
// A handful of members exist per ensemble, so the Net/Forest size gap is
// irrelevant and boxing would complicate every match site (same call the
// eval layer makes for `TrainedArtifact`).
#[allow(clippy::large_enum_variant)]
pub enum Member {
    /// A compiled neural network (CNN / LSTM / Transformer).
    Net(InferModel),
    /// A fitted random forest over statistical features.
    Forest(ForestClassifier),
    /// An arbitrary classifier behind the trait object (not persistable).
    Custom(Box<dyn Classifier>),
}

impl Member {
    /// Short kind tag (`net` / `forest` / `custom`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Member::Net(_) => "net",
            Member::Forest(_) => "forest",
            Member::Custom(_) => "custom",
        }
    }

    fn as_classifier(&self) -> &dyn Classifier {
        match self {
            Member::Net(m) => m,
            Member::Forest(c) => c,
            Member::Custom(b) => b.as_ref(),
        }
    }

    /// The allocation-free counterpart of
    /// [`Classifier::predict_proba_window`]: tail extraction, features and
    /// activations all live in `lane`, probabilities land in `out`. The
    /// arithmetic — and its order — is identical to the allocating trait
    /// path, so the two produce the same bits (`Custom` members have no
    /// scratch contract and fall back to the trait call).
    fn predict_proba_window_into(
        &self,
        window: &[f32],
        channels: usize,
        win_len: usize,
        lane: &mut LaneScratch,
        out: &mut [f32],
    ) {
        match self {
            Member::Net(m) => {
                tail_window_into(window, channels, win_len, m.window(), &mut lane.tail);
                let plan = lane.plan.as_mut().expect("net lane carries a plan");
                m.predict_logits_into(&lane.tail, 1, plan, &mut lane.logits);
                softmax_into(&lane.logits, out);
            }
            Member::Forest(c) => {
                tail_window_into(
                    window,
                    channels,
                    win_len,
                    Classifier::window(c),
                    &mut lane.tail,
                );
                window_stat_features_into(&lane.tail, channels, &mut lane.features);
                c.forest().predict_proba_into(&lane.features, out);
            }
            Member::Custom(b) => {
                let p = b.predict_proba_window(window, channels, win_len);
                out.fill(0.0);
                for (o, &v) in out.iter_mut().zip(&p) {
                    *o = v;
                }
            }
        }
    }
}

/// Scratch for one inference lane: one member classifying one window.
/// Compiled nets carry an [`InferPlan`]; forests carry tail/feature
/// buffers. Everything is reused across calls, so the steady-state lane
/// performs zero heap allocations once warm.
#[derive(Debug)]
struct LaneScratch {
    plan: Option<InferPlan>,
    tail: Vec<f32>,
    logits: Vec<f32>,
    features: Vec<f32>,
}

impl LaneScratch {
    fn for_member(member: &Member, version: PlanVersion) -> Self {
        let plan = match member {
            Member::Net(m) => Some(InferPlan::compile_with(m, version)),
            Member::Forest(_) | Member::Custom(_) => None,
        };
        let classes = plan.as_ref().map_or(0, InferPlan::classes);
        Self {
            plan,
            tail: Vec::new(),
            logits: vec![0.0; classes],
            features: Vec::new(),
        }
    }
}

/// One pool job of a **v2** batched ensemble call: one member classifying
/// a contiguous *chunk* of the batch through a single batched forward
/// pass (nets run one stacked-GEMM [`InferPlan`] call; forests loop
/// windows over their reused feature scratch). Plan-v2 kernels are
/// row-count invariant, so each window's probabilities are bit-identical
/// to a single-window v2 call — neither batching nor how the batch is
/// chunked across lanes has any numerics consequence within the version.
#[derive(Debug)]
struct MemberSlot {
    member: usize,
    /// First window of this lane's contiguous chunk (assigned per call).
    start: usize,
    /// Number of windows in the chunk (assigned per call).
    len: usize,
    plan: Option<InferPlan>,
    tails: Vec<f32>,
    logits: Vec<f32>,
    features: Vec<f32>,
    /// `len × CLASSES` member probabilities, combined per window after
    /// the fan-out joins.
    out: Vec<f32>,
}

impl MemberSlot {
    fn new(member: usize) -> Self {
        Self {
            member,
            start: 0,
            len: 0,
            plan: None,
            tails: Vec::new(),
            logits: Vec::new(),
            features: Vec::new(),
            out: Vec::new(),
        }
    }

    /// Classifies this lane's chunk (`start..start + len`) for its member.
    /// Buffers grow on first use of a larger chunk and are reused
    /// thereafter (zero steady-state allocations).
    fn run(&mut self, member: &Member, windows: &[f32], channels: usize, win_len: usize) {
        let batch = self.len;
        let per_window = channels * win_len;
        let windows = &windows[self.start * per_window..(self.start + batch) * per_window];
        self.out.resize(batch * CLASSES, 0.0);
        match member {
            Member::Net(m) => {
                let mw = m.window();
                let per_tail = channels * mw;
                self.tails.resize(batch * per_tail, 0.0);
                for b in 0..batch {
                    let window = &windows[b * per_window..(b + 1) * per_window];
                    for ch in 0..channels {
                        let row = &window[ch * win_len..(ch + 1) * win_len];
                        self.tails[b * per_tail + ch * mw..b * per_tail + (ch + 1) * mw]
                            .copy_from_slice(&row[win_len - mw..]);
                    }
                }
                let plan = self
                    .plan
                    .get_or_insert_with(|| InferPlan::compile_with(m, PlanVersion::V2));
                let classes = plan.classes();
                self.logits.resize(batch * classes, 0.0);
                plan.predict_logits_into(m, &self.tails[..batch * per_tail], batch, &mut self.logits);
                for b in 0..batch {
                    softmax_into(
                        &self.logits[b * classes..(b + 1) * classes],
                        &mut self.out[b * CLASSES..b * CLASSES + classes],
                    );
                }
            }
            Member::Forest(c) => {
                for b in 0..batch {
                    let window = &windows[b * per_window..(b + 1) * per_window];
                    tail_window_into(window, channels, win_len, Classifier::window(c), &mut self.tails);
                    window_stat_features_into(&self.tails, channels, &mut self.features);
                    c.forest()
                        .predict_proba_into(&self.features, &mut self.out[b * CLASSES..(b + 1) * CLASSES]);
                }
            }
            Member::Custom(custom) => {
                for b in 0..batch {
                    let window = &windows[b * per_window..(b + 1) * per_window];
                    let p = custom.predict_proba_window(window, channels, win_len);
                    let out = &mut self.out[b * CLASSES..(b + 1) * CLASSES];
                    out.fill(0.0);
                    for (o, &v) in out.iter_mut().zip(&p) {
                        *o = v;
                    }
                }
            }
        }
    }
}

/// One pool job of a batched ensemble call: member `member` classifying
/// batch window `window` into its private `out` slot. The lane
/// materializes on first use, so lanes that are never dispatched (e.g.
/// high batch slots on a sequential pool, which reuses each member's
/// first lane) cost nothing.
#[derive(Debug)]
struct JobSlot {
    member: usize,
    window: usize,
    lane: Option<LaneScratch>,
    out: Vec<f32>,
}

/// The reusable scratch arena for one ensemble's batched inference:
/// `batch × members` independent lanes (each net lane owns a compiled
/// [`InferPlan`]), laid out batch-major — `slots[b * members + m]` — so
/// the live slots of a `batch`-window call are exactly the prefix
/// `slots[..batch * members]` (no dead-lane dispatch) and growing to a
/// larger batch *appends* slots without touching existing warm lanes.
/// Build one per serving session (or per micro-batch group) with
/// [`EnsembleScratch::new`] and reuse it for every call; once warm it
/// allocates nothing.
///
/// A scratch arena belongs to the ensemble it was built from — lanes are
/// compiled per member, and using it with a structurally different
/// ensemble panics.
#[derive(Debug)]
pub struct EnsembleScratch {
    version: PlanVersion,
    /// V1 layout: `batch × members` per-(window, member) lanes.
    slots: Vec<JobSlot>,
    /// V2 layout: lane-major chunk lanes — `member_slots[lane * members
    /// + m]` — so growing the lane count appends slots without touching
    /// warm ones, and a 1-lane (sequential) call dispatches exactly the
    /// first `members` slots.
    member_slots: Vec<MemberSlot>,
    batch_cap: usize,
    members: usize,
}

impl EnsembleScratch {
    /// Scratch for single-window calls on `ensemble` at the process-wide
    /// [`PlanVersion::runtime_default`] (grows on demand when a larger
    /// batch first arrives).
    #[must_use]
    pub fn new(ensemble: &Ensemble) -> Self {
        Self::with_version(ensemble, PlanVersion::runtime_default())
    }

    /// [`EnsembleScratch::new`] pinned to an explicit numerics version;
    /// every batched call through this scratch runs that version's
    /// kernels (nets compile their plans to match).
    #[must_use]
    pub fn with_version(ensemble: &Ensemble, version: PlanVersion) -> Self {
        let member_slots = match version {
            PlanVersion::V1 => Vec::new(),
            PlanVersion::V2 => (0..ensemble.len()).map(MemberSlot::new).collect(),
        };
        let mut scratch = Self {
            version,
            slots: Vec::new(),
            member_slots,
            batch_cap: 0,
            members: ensemble.len(),
        };
        scratch.ensure_batch(ensemble, 1);
        scratch
    }

    /// The numerics version this scratch runs.
    #[must_use]
    pub fn version(&self) -> PlanVersion {
        self.version
    }

    /// The largest batch this scratch currently serves without growing.
    #[must_use]
    pub fn batch_capacity(&self) -> usize {
        self.batch_cap
    }

    fn ensure_batch(&mut self, ensemble: &Ensemble, batch: usize) {
        assert_eq!(
            self.members,
            ensemble.len(),
            "scratch built for a different ensemble"
        );
        if self.version == PlanVersion::V1 {
            for b in self.batch_cap..batch {
                for mi in 0..self.members {
                    self.slots.push(JobSlot {
                        member: mi,
                        window: b,
                        lane: None,
                        out: vec![0.0; CLASSES],
                    });
                }
            }
        }
        // V2 member slots grow their own buffers on first use of a
        // larger batch; nothing to do here beyond the capacity bump.
        self.batch_cap = self.batch_cap.max(batch);
    }

    /// Grows the v2 arena to at least `lanes` chunk lanes per member,
    /// appending fresh lane-major slots without touching warm ones.
    fn ensure_lanes(&mut self, lanes: usize) {
        let cur = self.member_slots.len() / self.members;
        for _ in cur..lanes {
            for m in 0..self.members {
                self.member_slots.push(MemberSlot::new(m));
            }
        }
    }
}

impl std::fmt::Debug for Member {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Member::{}({})", self.kind(), self.as_classifier().name())
    }
}

impl Clone for Member {
    fn clone(&self) -> Self {
        match self {
            Member::Net(m) => Member::Net(m.clone()),
            Member::Forest(c) => Member::Forest(c.clone()),
            Member::Custom(b) => Member::Custom(b.clone_box()),
        }
    }
}

/// Structural equality for the concrete variants; `Custom` members never
/// compare equal (the trait object exposes no comparison).
impl PartialEq for Member {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Member::Net(a), Member::Net(b)) => a == b,
            (Member::Forest(a), Member::Forest(b)) => a == b,
            _ => false,
        }
    }
}

impl From<InferModel> for Member {
    fn from(m: InferModel) -> Self {
        Member::Net(m)
    }
}

impl From<ForestClassifier> for Member {
    fn from(c: ForestClassifier) -> Self {
        Member::Forest(c)
    }
}

impl Classifier for Member {
    fn predict_proba_window(&self, window: &[f32], channels: usize, win_len: usize) -> Vec<f32> {
        self.as_classifier()
            .predict_proba_window(window, channels, win_len)
    }

    fn window(&self) -> usize {
        self.as_classifier().window()
    }

    fn name(&self) -> String {
        self.as_classifier().name()
    }

    fn param_count(&self) -> usize {
        self.as_classifier().param_count()
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

/// A voting ensemble over heterogeneous classifiers.
#[derive(Clone)]
pub struct Ensemble {
    members: Vec<Member>,
    voting: Voting,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field("members", &self.name())
            .field("voting", &self.voting)
            .finish()
    }
}

/// Structural equality over members and voting rule (see [`Member`]'s
/// `PartialEq` for the `Custom` caveat).
impl PartialEq for Ensemble {
    fn eq(&self, other: &Self) -> bool {
        self.voting == other.voting && self.members == other.members
    }
}

impl Ensemble {
    /// Creates an ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    #[must_use]
    pub fn new(members: Vec<Member>, voting: Voting) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Self { members, voting }
    }

    /// The members, in voting order.
    #[must_use]
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// The voting rule.
    #[must_use]
    pub fn voting(&self) -> Voting {
        self.voting
    }

    /// Visits every compiled network member mutably — the entry point the
    /// compression passes (`ml::compress`) use to prune or quantize a
    /// trained ensemble in place. Forests and custom members are skipped;
    /// they have no weight matrices to transform.
    pub fn visit_net_models_mut(&mut self, mut f: impl FnMut(&mut InferModel)) {
        for m in &mut self.members {
            if let Member::Net(net) = m {
                f(net);
            }
        }
    }

    /// Compiles every network member's weight matrices into their
    /// execution formats (CSC / densified sparse plans, transposed int8
    /// panels) ahead of first inference. The compiled forms live in
    /// per-matrix shared caches, so cloning the ensemble afterwards — the
    /// per-session handoff in `serve` — shares one compiled set across
    /// all sessions of an artifact instead of recompiling per session.
    pub fn precompile_exec(&self) {
        for m in &self.members {
            if let Member::Net(net) = m {
                net.visit_weights(crate::infer::MatRep::precompile);
            }
        }
    }

    /// Longest member window — the buffer length the ensemble needs.
    #[must_use]
    pub fn window(&self) -> usize {
        self.members.iter().map(|m| m.window()).max().unwrap_or(0)
    }

    /// Member names joined with `+`.
    #[must_use]
    pub fn name(&self) -> String {
        self.members
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Combined parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.members.iter().map(|m| m.param_count()).sum()
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Combined class probabilities for a window of the ensemble's length.
    ///
    /// A thin wrapper over the batched scratch engine (fresh scratch per
    /// call); steady-state loops should hold an [`EnsembleScratch`] and
    /// call [`Ensemble::predict_batch_into`] instead.
    #[must_use]
    pub fn predict_proba(&self, window: &[f32], channels: usize) -> Vec<f32> {
        let mut scratch = EnsembleScratch::new(self);
        let mut out = vec![0.0f32; CLASSES];
        self.predict_batch_core(window, 1, channels, None, &mut scratch, &mut out);
        out
    }

    /// [`Ensemble::predict_proba`] with members evaluated in parallel on
    /// `pool`. Member probabilities are combined in member order, so the
    /// result is bit-identical to the sequential path.
    #[must_use]
    pub fn predict_proba_with(&self, window: &[f32], channels: usize, pool: &ExecPool) -> Vec<f32> {
        let mut scratch = EnsembleScratch::new(self);
        let mut out = vec![0.0f32; CLASSES];
        self.predict_batch_core(window, 1, channels, Some(pool), &mut scratch, &mut out);
        out
    }

    /// The batch-first, allocation-free inference entry point: classifies
    /// `batch` channel-major windows (concatenated in `windows`, each
    /// `channels × win_len` long) in one call, writing `batch × CLASSES`
    /// combined probabilities to `out`.
    ///
    /// Work fans out as `members × batch` independent jobs on `pool`, each
    /// into its own preallocated lane of `scratch`; results are combined
    /// per window in member order. Per window, arithmetic and its order
    /// are identical to [`Ensemble::predict_proba`] — batching changes
    /// memory layout, never numerics — so a batched serving tick is
    /// bit-identical to per-session inference by construction.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was built for a different ensemble or the
    /// buffer lengths disagree with `batch`/`channels`.
    pub fn predict_batch_into(
        &self,
        windows: &[f32],
        batch: usize,
        channels: usize,
        pool: &ExecPool,
        scratch: &mut EnsembleScratch,
        out: &mut [f32],
    ) {
        self.predict_batch_core(windows, batch, channels, Some(pool), scratch, out);
    }

    fn predict_batch_core(
        &self,
        windows: &[f32],
        batch: usize,
        channels: usize,
        pool: Option<&ExecPool>,
        scratch: &mut EnsembleScratch,
        out: &mut [f32],
    ) {
        assert!(batch >= 1, "empty batch");
        assert!(
            windows.len().is_multiple_of(batch * channels),
            "window batch layout"
        );
        let win_len = windows.len() / (batch * channels);
        assert_eq!(out.len(), batch * CLASSES, "probability buffer size");
        scratch.ensure_batch(self, batch);
        let per_window = channels * win_len;
        let members = &self.members;
        let n_members = members.len();
        let parallel = pool.is_some_and(|p| p.threads() > 1);
        if scratch.version == PlanVersion::V2 {
            if batch == 1 {
                // Single-window fast path: one lane, one chunk — skip the
                // lane/chunk bookkeeping entirely so the steady-state
                // serving tick (and `predict_proba`) pays no batch setup.
                // The slots run the same per-member kernels with
                // `start = 0, len = 1`, so numerics are untouched (plan-v2
                // kernels are row-count invariant).
                for slot in &mut scratch.member_slots[..n_members] {
                    slot.start = 0;
                    slot.len = 1;
                }
                if parallel {
                    let pool = pool.expect("parallel implies a pool");
                    pool.par_map_mut(&mut scratch.member_slots[..n_members], |slot| {
                        slot.run(&members[slot.member], windows, channels, win_len);
                    });
                } else {
                    for slot in &mut scratch.member_slots[..n_members] {
                        slot.run(&members[slot.member], windows, channels, win_len);
                    }
                }
                self.combine_into(
                    scratch.member_slots[..n_members]
                        .iter()
                        .map(|s| &s.out[..CLASSES]),
                    out,
                );
                return;
            }
            // Fan-out: each member's batch splits into `lanes` contiguous
            // chunks, one stacked-GEMM job per (member, lane) — enough
            // jobs to feed every pool thread even when the ensemble has
            // fewer members than the pool has threads. Plan-v2 kernels
            // are row-count invariant — every window's bits are
            // independent of how the batch is chunked — so the lane
            // count may track the thread count without perturbing
            // results, and the combine below is deterministic because
            // each window's member probabilities land in fixed slots
            // folded in member order.
            let threads = pool.map_or(1, ExecPool::threads);
            let lanes = if parallel {
                ((threads * 2).div_ceil(n_members)).clamp(1, batch)
            } else {
                1
            };
            let chunk = batch.div_ceil(lanes);
            let used = batch.div_ceil(chunk);
            scratch.ensure_lanes(used);
            let live = used * n_members;
            for (i, slot) in scratch.member_slots[..live].iter_mut().enumerate() {
                let start = (i / n_members) * chunk;
                slot.start = start;
                slot.len = chunk.min(batch - start);
            }
            if parallel {
                let pool = pool.expect("parallel implies a pool");
                pool.par_map_mut(&mut scratch.member_slots[..live], |slot| {
                    slot.run(&members[slot.member], windows, channels, win_len);
                });
            } else {
                for slot in &mut scratch.member_slots[..live] {
                    slot.run(&members[slot.member], windows, channels, win_len);
                }
            }
            for b in 0..batch {
                let lane = b / chunk;
                let off = b - lane * chunk;
                let acc = &mut out[b * CLASSES..(b + 1) * CLASSES];
                self.combine_into(
                    (0..n_members).map(|m| {
                        let s = &scratch.member_slots[lane * n_members + m];
                        &s.out[off * CLASSES..(off + 1) * CLASSES]
                    }),
                    acc,
                );
            }
            return;
        }
        if parallel {
            let pool = pool.expect("parallel implies a pool");
            // One independent job per (window, member) pair, each with its
            // own lane (materialized on first use) — per-index
            // determinism: results land in fixed slots and are combined
            // in a fixed order below. The batch-major layout makes the
            // live slots exactly this prefix, so no dead lane is ever
            // dispatched. `par_map_mut` of a unit closure collects a
            // `Vec<()>`, which never allocates.
            pool.par_map_mut(&mut scratch.slots[..batch * n_members], |slot| {
                let w = &windows[slot.window * per_window..(slot.window + 1) * per_window];
                let member = &members[slot.member];
                let lane = slot
                    .lane
                    .get_or_insert_with(|| LaneScratch::for_member(member, PlanVersion::V1));
                member.predict_proba_window_into(w, channels, win_len, lane, &mut slot.out);
            });
        } else {
            // Sequential: reuse each member's *first* lane for every
            // window (scratch contents never affect outputs), keeping the
            // arena cache-hot and the high batch slots lane-free — a
            // batched call costs what the per-window loop costs.
            for b in 0..batch {
                let w = &windows[b * per_window..(b + 1) * per_window];
                for (mi, member) in members.iter().enumerate() {
                    if b == 0 {
                        let slot = &mut scratch.slots[mi];
                        let lane = slot
                            .lane
                            .get_or_insert_with(|| LaneScratch::for_member(member, PlanVersion::V1));
                        member.predict_proba_window_into(w, channels, win_len, lane, &mut slot.out);
                    } else {
                        let (head, tail) = scratch.slots.split_at_mut(b * n_members + mi);
                        let lane = head[mi]
                            .lane
                            .get_or_insert_with(|| LaneScratch::for_member(member, PlanVersion::V1));
                        member.predict_proba_window_into(
                            w,
                            channels,
                            win_len,
                            lane,
                            &mut tail[0].out,
                        );
                    }
                }
            }
        }
        for b in 0..batch {
            let acc = &mut out[b * CLASSES..(b + 1) * CLASSES];
            self.combine_into(
                (0..n_members).map(|m| scratch.slots[b * n_members + m].out.as_slice()),
                acc,
            );
        }
    }

    /// Reduces per-member probability slices under the voting rule into
    /// `acc` (fully overwritten), folding in member order (f32 addition is
    /// not associative; a fixed order keeps the vote reproducible).
    fn combine_into<'a>(&self, probas: impl Iterator<Item = &'a [f32]>, acc: &mut [f32]) {
        acc.fill(0.0);
        match self.voting {
            Voting::Soft => {
                for p in probas {
                    for (a, v) in acc.iter_mut().zip(p) {
                        *a += v;
                    }
                }
            }
            Voting::Hard => {
                for p in probas {
                    let arg = p
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    acc[arg] += 1.0;
                }
            }
        }
        let n = self.members.len() as f32;
        for a in acc.iter_mut() {
            *a /= n;
        }
    }

    /// Combined class prediction.
    #[must_use]
    pub fn predict(&self, window: &[f32], channels: usize) -> usize {
        Self::argmax(&self.predict_proba(window, channels))
    }

    /// [`Ensemble::predict`] with members evaluated in parallel on `pool`.
    #[must_use]
    pub fn predict_with(&self, window: &[f32], channels: usize, pool: &ExecPool) -> usize {
        Self::argmax(&self.predict_proba_with(window, channels, pool))
    }

    fn argmax(probs: &[f32]) -> usize {
        argmax(probs)
    }
}

/// Index of the largest probability — the vote-to-label rule every
/// consumer of [`Ensemble::predict_batch_into`] must share so external
/// batched classification (the serving micro-batcher) picks exactly the
/// label [`Ensemble::predict`] would.
///
/// # Panics
///
/// Panics on non-finite probabilities.
#[must_use]
pub fn argmax(probs: &[f32]) -> usize {
    probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stub classifier that always answers one class.
    #[derive(Clone)]
    struct Fixed {
        class: usize,
        window: usize,
    }

    impl Classifier for Fixed {
        fn predict_proba_window(
            &self,
            _window: &[f32],
            _channels: usize,
            _win_len: usize,
        ) -> Vec<f32> {
            let mut p = vec![0.05f32; CLASSES];
            p[self.class] = 0.9;
            p
        }

        fn window(&self) -> usize {
            self.window
        }

        fn name(&self) -> String {
            format!("fixed{}", self.class)
        }

        fn param_count(&self) -> usize {
            1
        }

        fn clone_box(&self) -> Box<dyn Classifier> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn tail_window_takes_most_recent_samples() {
        // 2 channels x 5 samples.
        let w = [1., 2., 3., 4., 5., 10., 20., 30., 40., 50.];
        let tail = tail_window(&w, 2, 5, 2);
        assert_eq!(tail, vec![4., 5., 40., 50.]);
    }

    #[test]
    fn soft_voting_averages() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 0, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
            ],
            Voting::Soft,
        );
        let w = vec![0.0f32; 2 * 4];
        assert_eq!(e.predict(&w, 2), 1);
        let p = e.predict_proba(&w, 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn hard_voting_counts_majority() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 2, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 2, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 0, window: 4 })),
            ],
            Voting::Hard,
        );
        let w = vec![0.0f32; 2 * 4];
        assert_eq!(e.predict(&w, 2), 2);
    }

    #[test]
    fn ensemble_window_is_longest_member() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 0, window: 90 })),
                Member::Custom(Box::new(Fixed { class: 0, window: 190 })),
            ],
            Voting::Soft,
        );
        assert_eq!(e.window(), 190);
        assert_eq!(e.len(), 2);
        assert_eq!(e.param_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        let _ = Ensemble::new(vec![], Voting::Soft);
    }

    #[test]
    fn parallel_vote_matches_sequential_bitwise() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 0, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
            ],
            Voting::Soft,
        );
        let w = vec![0.25f32; 2 * 4];
        let seq = e.predict_proba(&w, 2);
        for threads in [1, 2, 4] {
            let pool = ExecPool::new(threads);
            let par = e.predict_proba_with(&w, 2, &pool);
            let bits_equal = seq
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bits_equal, "threads={threads}: {seq:?} vs {par:?}");
            assert_eq!(e.predict(&w, 2), e.predict_with(&w, 2, &pool));
        }
    }

    fn toy_forest_member(window: usize, channels: usize) -> Member {
        use crate::forest::ForestConfig;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let dim = channels * 5;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let row: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            xs.push(row);
            ys.push(i % CLASSES);
        }
        let forest = RandomForest::fit(
            ForestConfig {
                n_estimators: 3,
                max_depth: Some(3),
                min_samples_split: 2,
                classes: CLASSES,
                seed: 1,
            },
            &xs,
            &ys,
        )
        .expect("toy forest fits");
        Member::Forest(ForestClassifier::new(forest, window))
    }

    #[test]
    fn batched_call_matches_single_window_calls_bitwise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let channels = 2;
        let win_len = 6;
        let e = Ensemble::new(
            vec![
                toy_forest_member(4, channels),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
            ],
            Voting::Soft,
        );
        let mut rng = StdRng::seed_from_u64(77);
        let batch = 4;
        let windows: Vec<f32> = (0..batch * channels * win_len)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        for threads in [1, 2, 4] {
            let pool = ExecPool::new(threads);
            let mut scratch = EnsembleScratch::new(&e);
            let mut out = vec![0.0f32; batch * CLASSES];
            e.predict_batch_into(&windows, batch, channels, &pool, &mut scratch, &mut out);
            for b in 0..batch {
                let solo =
                    e.predict_proba(&windows[b * channels * win_len..(b + 1) * channels * win_len], channels);
                let got = &out[b * CLASSES..(b + 1) * CLASSES];
                for (x, y) in solo.iter().zip(got) {
                    assert_eq!(x.to_bits(), y.to_bits(), "threads={threads} window={b}");
                }
            }
            // Scratch reuse (including a smaller follow-up batch) stays
            // bit-identical.
            let mut again = vec![0.0f32; CLASSES];
            e.predict_batch_into(
                &windows[..channels * win_len],
                1,
                channels,
                &pool,
                &mut scratch,
                &mut again,
            );
            for (x, y) in out[..CLASSES].iter().zip(&again) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={threads} reuse");
            }
        }
    }

    #[test]
    #[should_panic(expected = "scratch built for a different ensemble")]
    fn foreign_scratch_is_rejected() {
        let one = Ensemble::new(
            vec![Member::Custom(Box::new(Fixed { class: 0, window: 4 }))],
            Voting::Soft,
        );
        let two = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 0, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
            ],
            Voting::Soft,
        );
        let mut scratch = EnsembleScratch::new(&one);
        let pool = ExecPool::new(1);
        let mut out = vec![0.0f32; CLASSES];
        two.predict_batch_into(&[0.0; 8], 1, 2, &pool, &mut scratch, &mut out);
    }

    #[test]
    fn clone_preserves_members_and_voting() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 2, window: 8 })),
                Member::Custom(Box::new(Fixed { class: 0, window: 4 })),
            ],
            Voting::Hard,
        );
        let c = e.clone();
        assert_eq!(c.name(), e.name());
        assert_eq!(c.window(), e.window());
        let w = vec![0.0f32; 2 * 8];
        assert_eq!(c.predict(&w, 2), e.predict(&w, 2));
    }

    #[test]
    fn name_joins_members() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 0, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
            ],
            Voting::Soft,
        );
        assert_eq!(e.name(), "fixed0+fixed1");
    }
}
