//! Ensembles of heterogeneous classifiers (Fig. 11).
//!
//! The paper trains "ensemble combinations" of the four families and finds
//! CNN + Transformer best. Members may expect different window lengths (the
//! CNN wants 190 samples, the RF 90), so the ensemble holds a window long
//! enough for everyone and hands each member the most recent slice it needs.

use exec::ExecPool;

use crate::forest::{window_stat_features, RandomForest};
use crate::infer::InferModel;
use crate::models::CLASSES;

/// Anything that can classify a channel-major EEG window.
pub trait Classifier: Send + Sync {
    /// Class probabilities for the trailing `self.window()` samples of the
    /// given window.
    fn predict_proba_window(&self, window: &[f32], channels: usize, win_len: usize) -> Vec<f32>;

    /// Window length in samples this classifier wants.
    fn window(&self) -> usize;

    /// Human-readable name.
    fn name(&self) -> String;

    /// Effective parameter count.
    fn param_count(&self) -> usize;

    /// A boxed deep copy (lets [`Ensemble`] be `Clone` over trait objects).
    fn clone_box(&self) -> Box<dyn Classifier>;
}

/// Extracts the channel-major tail of length `target` from a longer
/// channel-major window.
///
/// # Panics
///
/// Panics if `target > win_len` or the layout is inconsistent.
#[must_use]
pub fn tail_window(window: &[f32], channels: usize, win_len: usize, target: usize) -> Vec<f32> {
    assert_eq!(window.len(), channels * win_len, "window layout");
    assert!(target <= win_len, "target {target} > window {win_len}");
    let mut out = Vec::with_capacity(channels * target);
    for ch in 0..channels {
        let row = &window[ch * win_len..(ch + 1) * win_len];
        out.extend_from_slice(&row[win_len - target..]);
    }
    out
}

impl Classifier for InferModel {
    fn predict_proba_window(&self, window: &[f32], channels: usize, win_len: usize) -> Vec<f32> {
        let tail = tail_window(window, channels, win_len, self.window());
        self.predict_proba(&tail)
    }

    fn window(&self) -> usize {
        InferModel::window(self)
    }

    fn name(&self) -> String {
        self.kind().to_owned()
    }

    fn param_count(&self) -> usize {
        InferModel::param_count(self)
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

/// Random forest adapted to raw windows: computes the Table III statistical
/// features internally.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestClassifier {
    forest: RandomForest,
    window: usize,
}

impl ForestClassifier {
    /// Wraps a fitted forest with its expected window length.
    #[must_use]
    pub fn new(forest: RandomForest, window: usize) -> Self {
        Self { forest, window }
    }

    /// The wrapped forest.
    #[must_use]
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }
}

impl Classifier for ForestClassifier {
    fn predict_proba_window(&self, window: &[f32], channels: usize, win_len: usize) -> Vec<f32> {
        let tail = tail_window(window, channels, win_len, self.window);
        let features = window_stat_features(&tail, channels);
        self.forest.predict_proba(&features)
    }

    fn window(&self) -> usize {
        self.window
    }

    fn name(&self) -> String {
        format!("rf[{} trees]", self.forest.config().n_estimators)
    }

    fn param_count(&self) -> usize {
        self.forest.total_nodes()
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

/// Voting strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Voting {
    /// Average the members' probability vectors (the paper's ensembles
    /// aggregate predictions to reduce variance, Sec. III-D3).
    Soft,
    /// One vote per member's argmax.
    Hard,
}

/// A concrete ensemble member, tagged by kind.
///
/// The explicit kind tag is what makes ensembles persistable: `model-io`
/// can serialize `Net`/`Forest` members by matching on the variant, where
/// the old `Vec<Box<dyn Classifier>>` erasure left no way to recover the
/// concrete type. `Custom` keeps the open trait-object door for tests and
/// experimental classifiers; it is the one variant a save refuses.
// A handful of members exist per ensemble, so the Net/Forest size gap is
// irrelevant and boxing would complicate every match site (same call the
// eval layer makes for `TrainedArtifact`).
#[allow(clippy::large_enum_variant)]
pub enum Member {
    /// A compiled neural network (CNN / LSTM / Transformer).
    Net(InferModel),
    /// A fitted random forest over statistical features.
    Forest(ForestClassifier),
    /// An arbitrary classifier behind the trait object (not persistable).
    Custom(Box<dyn Classifier>),
}

impl Member {
    /// Short kind tag (`net` / `forest` / `custom`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Member::Net(_) => "net",
            Member::Forest(_) => "forest",
            Member::Custom(_) => "custom",
        }
    }

    fn as_classifier(&self) -> &dyn Classifier {
        match self {
            Member::Net(m) => m,
            Member::Forest(c) => c,
            Member::Custom(b) => b.as_ref(),
        }
    }
}

impl std::fmt::Debug for Member {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Member::{}({})", self.kind(), self.as_classifier().name())
    }
}

impl Clone for Member {
    fn clone(&self) -> Self {
        match self {
            Member::Net(m) => Member::Net(m.clone()),
            Member::Forest(c) => Member::Forest(c.clone()),
            Member::Custom(b) => Member::Custom(b.clone_box()),
        }
    }
}

/// Structural equality for the concrete variants; `Custom` members never
/// compare equal (the trait object exposes no comparison).
impl PartialEq for Member {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Member::Net(a), Member::Net(b)) => a == b,
            (Member::Forest(a), Member::Forest(b)) => a == b,
            _ => false,
        }
    }
}

impl From<InferModel> for Member {
    fn from(m: InferModel) -> Self {
        Member::Net(m)
    }
}

impl From<ForestClassifier> for Member {
    fn from(c: ForestClassifier) -> Self {
        Member::Forest(c)
    }
}

impl Classifier for Member {
    fn predict_proba_window(&self, window: &[f32], channels: usize, win_len: usize) -> Vec<f32> {
        self.as_classifier()
            .predict_proba_window(window, channels, win_len)
    }

    fn window(&self) -> usize {
        self.as_classifier().window()
    }

    fn name(&self) -> String {
        self.as_classifier().name()
    }

    fn param_count(&self) -> usize {
        self.as_classifier().param_count()
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }
}

/// A voting ensemble over heterogeneous classifiers.
#[derive(Clone)]
pub struct Ensemble {
    members: Vec<Member>,
    voting: Voting,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field("members", &self.name())
            .field("voting", &self.voting)
            .finish()
    }
}

/// Structural equality over members and voting rule (see [`Member`]'s
/// `PartialEq` for the `Custom` caveat).
impl PartialEq for Ensemble {
    fn eq(&self, other: &Self) -> bool {
        self.voting == other.voting && self.members == other.members
    }
}

impl Ensemble {
    /// Creates an ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    #[must_use]
    pub fn new(members: Vec<Member>, voting: Voting) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Self { members, voting }
    }

    /// The members, in voting order.
    #[must_use]
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// The voting rule.
    #[must_use]
    pub fn voting(&self) -> Voting {
        self.voting
    }

    /// Longest member window — the buffer length the ensemble needs.
    #[must_use]
    pub fn window(&self) -> usize {
        self.members.iter().map(|m| m.window()).max().unwrap_or(0)
    }

    /// Member names joined with `+`.
    #[must_use]
    pub fn name(&self) -> String {
        self.members
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Combined parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.members.iter().map(|m| m.param_count()).sum()
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Combined class probabilities for a window of the ensemble's length.
    #[must_use]
    pub fn predict_proba(&self, window: &[f32], channels: usize) -> Vec<f32> {
        let win_len = window.len() / channels;
        let probas: Vec<Vec<f32>> = self
            .members
            .iter()
            .map(|m| m.predict_proba_window(window, channels, win_len))
            .collect();
        self.combine(&probas)
    }

    /// [`Ensemble::predict_proba`] with members evaluated in parallel on
    /// `pool`. Member probabilities are combined in member order, so the
    /// result is bit-identical to the sequential path.
    #[must_use]
    pub fn predict_proba_with(&self, window: &[f32], channels: usize, pool: &ExecPool) -> Vec<f32> {
        let win_len = window.len() / channels;
        let probas = pool.par_map(&self.members, |m| {
            m.predict_proba_window(window, channels, win_len)
        });
        self.combine(&probas)
    }

    /// Reduces per-member probability vectors under the voting rule,
    /// folding in member order (f32 addition is not associative; a fixed
    /// order keeps the vote reproducible).
    fn combine(&self, probas: &[Vec<f32>]) -> Vec<f32> {
        let mut acc = vec![0.0f32; CLASSES];
        match self.voting {
            Voting::Soft => {
                for p in probas {
                    for (a, v) in acc.iter_mut().zip(p) {
                        *a += v;
                    }
                }
            }
            Voting::Hard => {
                for p in probas {
                    let arg = p
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    acc[arg] += 1.0;
                }
            }
        }
        let n = self.members.len() as f32;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    /// Combined class prediction.
    #[must_use]
    pub fn predict(&self, window: &[f32], channels: usize) -> usize {
        Self::argmax(&self.predict_proba(window, channels))
    }

    /// [`Ensemble::predict`] with members evaluated in parallel on `pool`.
    #[must_use]
    pub fn predict_with(&self, window: &[f32], channels: usize, pool: &ExecPool) -> usize {
        Self::argmax(&self.predict_proba_with(window, channels, pool))
    }

    fn argmax(probs: &[f32]) -> usize {
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stub classifier that always answers one class.
    #[derive(Clone)]
    struct Fixed {
        class: usize,
        window: usize,
    }

    impl Classifier for Fixed {
        fn predict_proba_window(
            &self,
            _window: &[f32],
            _channels: usize,
            _win_len: usize,
        ) -> Vec<f32> {
            let mut p = vec![0.05f32; CLASSES];
            p[self.class] = 0.9;
            p
        }

        fn window(&self) -> usize {
            self.window
        }

        fn name(&self) -> String {
            format!("fixed{}", self.class)
        }

        fn param_count(&self) -> usize {
            1
        }

        fn clone_box(&self) -> Box<dyn Classifier> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn tail_window_takes_most_recent_samples() {
        // 2 channels x 5 samples.
        let w = [1., 2., 3., 4., 5., 10., 20., 30., 40., 50.];
        let tail = tail_window(&w, 2, 5, 2);
        assert_eq!(tail, vec![4., 5., 40., 50.]);
    }

    #[test]
    fn soft_voting_averages() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 0, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
            ],
            Voting::Soft,
        );
        let w = vec![0.0f32; 2 * 4];
        assert_eq!(e.predict(&w, 2), 1);
        let p = e.predict_proba(&w, 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn hard_voting_counts_majority() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 2, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 2, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 0, window: 4 })),
            ],
            Voting::Hard,
        );
        let w = vec![0.0f32; 2 * 4];
        assert_eq!(e.predict(&w, 2), 2);
    }

    #[test]
    fn ensemble_window_is_longest_member() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 0, window: 90 })),
                Member::Custom(Box::new(Fixed { class: 0, window: 190 })),
            ],
            Voting::Soft,
        );
        assert_eq!(e.window(), 190);
        assert_eq!(e.len(), 2);
        assert_eq!(e.param_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        let _ = Ensemble::new(vec![], Voting::Soft);
    }

    #[test]
    fn parallel_vote_matches_sequential_bitwise() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 0, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
            ],
            Voting::Soft,
        );
        let w = vec![0.25f32; 2 * 4];
        let seq = e.predict_proba(&w, 2);
        for threads in [1, 2, 4] {
            let pool = ExecPool::new(threads);
            let par = e.predict_proba_with(&w, 2, &pool);
            let bits_equal = seq
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bits_equal, "threads={threads}: {seq:?} vs {par:?}");
            assert_eq!(e.predict(&w, 2), e.predict_with(&w, 2, &pool));
        }
    }

    #[test]
    fn clone_preserves_members_and_voting() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 2, window: 8 })),
                Member::Custom(Box::new(Fixed { class: 0, window: 4 })),
            ],
            Voting::Hard,
        );
        let c = e.clone();
        assert_eq!(c.name(), e.name());
        assert_eq!(c.window(), e.window());
        let w = vec![0.0f32; 2 * 8];
        assert_eq!(c.predict(&w, 2), e.predict(&w, 2));
    }

    #[test]
    fn name_joins_members() {
        let e = Ensemble::new(
            vec![
                Member::Custom(Box::new(Fixed { class: 0, window: 4 })),
                Member::Custom(Box::new(Fixed { class: 1, window: 4 })),
            ],
            Voting::Soft,
        );
        assert_eq!(e.name(), "fixed0+fixed1");
    }
}
