//! Model compression: global magnitude pruning and post-training int8
//! quantization (Sec. III-E, Fig. 12).
//!
//! Both transforms operate on the compiled [`InferModel`], converting its
//! weight representations; the inference kernels then genuinely change
//! (CSR skip-zero math for pruning, i8×i8→i32 accumulation for
//! quantization), which is what produces the latency movement the paper
//! reports.

use serde::{Deserialize, Serialize};

use crate::error::MlError;
use crate::infer::{InferModel, MatRep, QuantMatrix};
use crate::sparse::CsrMatrix;

/// Pruning levels evaluated by the paper (Sec. III-E1).
pub const PAPER_PRUNE_LEVELS: [f64; 5] = [0.0, 0.3, 0.5, 0.7, 0.9];

/// Densest matrix (fraction of non-zero entries) still stored as CSR
/// after pruning; anything denser keeps dense storage.
///
/// Re-derived in PR 9 from the `BENCH_matvec-density.json` sweep. Speed
/// no longer gates this choice: CSR storage compiles to a shape- and
/// batch-aware execution format at plan build
/// ([`crate::matexec::SparseExec`]), which wins or ties dense at every
/// density below [`crate::matexec::SPARSE_DENSIFY_MIN_DENSITY`] — the
/// old 0.5 cutoff dated from the scatter-add storage kernel, which lost
/// to dense well below it. What remains is a size/compile-cost argument:
/// a CSR entry costs 8 bytes against dense's 4 per cell, so by 45%
/// density the payload alone reaches 0.9× dense before row-pointer
/// overhead, and in the hybrid execution band the compiler materializes
/// a densified copy at plan build anyway. Above 0.45, CSR buys nothing
/// on any axis; below it, bytes shrink and the compiled exec wins.
/// `csr_cutoff_is_grounded_in_exec_and_size_crossovers` locks the value
/// against the matexec selection bands.
pub const CSR_MAX_DENSITY: f64 = 0.45;

/// Applies **global** magnitude pruning at the given ratio (0 = keep all,
/// 0.7 = drop the 70% smallest-magnitude weights across the whole network)
/// and converts each weight matrix to the storage its measured density
/// favours: CSR up to [`CSR_MAX_DENSITY`], dense above it (a barely
/// pruned matrix would only get slower as CSR; the zeros it does have
/// still contribute nothing).
///
/// Biases and LayerNorm parameters are never pruned, matching standard
/// practice (and the paper's "global pruning … across the network").
///
/// # Panics
///
/// Panics if `ratio` is outside `[0, 1)`.
pub fn prune_global(model: &mut InferModel, ratio: f64) {
    assert!((0.0..1.0).contains(&ratio), "prune ratio {ratio}");
    // Pass 1: collect all magnitudes.
    let mut magnitudes: Vec<f32> = Vec::new();
    model.visit_weights(|w| {
        if let MatRep::Dense(d) = w {
            magnitudes.extend(d.data().iter().map(|v| v.abs()));
        }
    });
    if magnitudes.is_empty() {
        return;
    }
    let threshold = if ratio == 0.0 {
        0.0
    } else {
        let k = ((magnitudes.len() as f64) * ratio) as usize;
        let k = k.min(magnitudes.len() - 1);
        let (_, kth, _) =
            magnitudes.select_nth_unstable_by(k, |a, b| a.partial_cmp(b).expect("finite"));
        *kth
    };
    // Pass 2: zero, then pick the storage the surviving density favours.
    model.visit_weights_mut(|w| {
        if let MatRep::Dense(d) = w {
            let mut pruned = d.clone();
            let mut nnz = 0usize;
            for v in pruned.data_mut() {
                if v.abs() <= threshold && threshold > 0.0 {
                    *v = 0.0;
                } else if *v != 0.0 {
                    nnz += 1;
                }
            }
            let density = nnz as f64 / pruned.numel().max(1) as f64;
            *w = if density <= CSR_MAX_DENSITY {
                MatRep::Sparse(CsrMatrix::from_dense(&pruned))
            } else {
                MatRep::Dense(pruned)
            };
        }
    });
}

/// Measured sparsity after pruning: fraction of weight entries that are
/// zero, over all weight matrices.
#[must_use]
pub fn measured_sparsity(model: &InferModel) -> f64 {
    let mut nnz = 0usize;
    let mut total = 0usize;
    model.visit_weights(|w| {
        let (r, c) = w.dims();
        total += r * c;
        nnz += match w {
            MatRep::Dense(d) => d.data().iter().filter(|v| **v != 0.0).count(),
            MatRep::Sparse(s) => s.nnz(),
            MatRep::Int8(q) => q.data.iter().filter(|v| **v != 0).count(),
        };
    });
    if total == 0 {
        0.0
    } else {
        1.0 - nnz as f64 / total as f64
    }
}

/// Quantization calibration mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QuantMode {
    /// Per-tensor scales from each matrix's own max-abs, dynamic activation
    /// scales — what a careful int8 deployment does.
    Calibrated,
    /// One global weight scale — the max-abs over *all* matrices — and a
    /// fixed activation scale for every layer. Layers whose weights are much
    /// smaller than the network-wide maximum quantize to a handful of
    /// levels (many to exactly zero); this reproduces the paper's observed
    /// behaviour where 8-bit quantization "severely reduces performance"
    /// (Fig. 12 point A) while being the fastest variant.
    GlobalFaithful,
}

/// Converts every weight matrix to int8.
///
/// The model is untouched on error, so a failed call can never leave a
/// half-quantized artifact behind.
///
/// # Errors
///
/// [`MlError::NoQuantizableWeights`] in [`QuantMode::GlobalFaithful`] when
/// the model holds no dense or sparse matrices to derive the global scale
/// from (an already fully quantized model): proceeding would fabricate a
/// scale unrelated to the weights and silently produce a garbage model.
pub fn quantize(model: &mut InferModel, mode: QuantMode) -> Result<(), MlError> {
    // Determine the global scale for the faithful mode: the max-abs over
    // every weight matrix — deterministic and layer-agnostic, which is the
    // bug being modelled (per-layer ranges differ by orders of magnitude).
    let mut global_scale: Option<f32> = None;
    if mode == QuantMode::GlobalFaithful {
        let mut global_max: Option<f32> = None;
        model.visit_weights(|w| {
            let dense = match w {
                MatRep::Dense(d) => d.clone(),
                MatRep::Sparse(s) => s.to_dense(),
                MatRep::Int8(_) => return,
            };
            let max = dense.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            global_max = Some(global_max.unwrap_or(0.0).max(max));
        });
        let Some(global_max) = global_max else {
            return Err(MlError::NoQuantizableWeights);
        };
        global_scale = Some((global_max / 127.0).max(1e-8));
    }
    model.visit_weights_mut(|w| {
        let dense = match w {
            MatRep::Dense(d) => d.clone(),
            MatRep::Sparse(s) => s.to_dense(),
            MatRep::Int8(_) => return,
        };
        let (scale, act_scale) = match mode {
            QuantMode::Calibrated => {
                let max = dense.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                ((max / 127.0).max(1e-8), None)
            }
            // The fixed activation scale of 1.0 models a global activation
            // calibration: the quantizer's range is set by the network's
            // largest activations (the logits, which span tens of units in
            // a trained net), so small-valued early activations — z-scored
            // EEG lives within ±4 — are crushed onto a handful of integer
            // levels. Together with the shared weight scale this is the
            // "8-bit quantization severely reduces performance" regime of
            // Fig. 12.
            QuantMode::GlobalFaithful => (
                global_scale.expect("global scale computed above or errored out"),
                Some(1.0),
            ),
        };
        *w = MatRep::Int8(QuantMatrix::quantize(&dense, scale, act_scale));
    });
    Ok(())
}

/// Weight storage in bytes after whatever transforms were applied — the
/// memory axis of the embedded-deployment story.
#[must_use]
pub fn storage_bytes(model: &InferModel) -> usize {
    let mut total = 0usize;
    model.visit_weights(|w| total += w.storage_bytes());
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::compile_cnn;
    use crate::models::{CnnConfig, ConvSpec, PoolKind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn test_model() -> InferModel {
        let cfg = CnnConfig {
            convs: vec![ConvSpec {
                filters: 8,
                kernel: 3,
                stride: 2,
            }],
            pool: PoolKind::None,
            window: 40,
            channels: 16,
            dropout: 0.0,
        };
        compile_cnn(&cfg.build(11).unwrap())
    }

    fn window(seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..16 * 40).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn prune_hits_requested_sparsity() {
        for ratio in [0.3, 0.5, 0.7, 0.9] {
            let mut m = test_model();
            prune_global(&mut m, ratio);
            let s = measured_sparsity(&m);
            assert!(
                (s - ratio).abs() < 0.05,
                "requested {ratio}, measured {s}"
            );
        }
    }

    #[test]
    fn prune_zero_keeps_everything() {
        let mut m = test_model();
        let before = m.param_count();
        prune_global(&mut m, 0.0);
        // Nothing dropped (init has no exact zeros), and at full density
        // the storage heuristic keeps every matrix dense.
        assert_eq!(m.param_count(), before);
        m.visit_weights(|w| assert!(matches!(w, MatRep::Dense(_))));
    }

    #[test]
    fn csr_density_threshold_picks_the_faster_representation() {
        // Locks the crossover: after pruning, every matrix must sit on
        // the side of `CSR_MAX_DENSITY` its own measured density dictates
        // — the regime `benches/kernels.rs` measures as faster. Global
        // pruning spreads unevenly across matrices, so the invariant is
        // per-matrix, not per-model.
        let check = |m: &InferModel| {
            let mut reps = (0usize, 0usize); // (sparse, dense)
            m.visit_weights(|w| {
                let (r, c) = w.dims();
                match w {
                    MatRep::Sparse(s) => {
                        let density = s.nnz() as f64 / (r * c) as f64;
                        assert!(
                            density <= CSR_MAX_DENSITY,
                            "CSR kept at density {density}"
                        );
                        reps.0 += 1;
                    }
                    MatRep::Dense(d) => {
                        let nnz = d.data().iter().filter(|v| **v != 0.0).count();
                        let density = nnz as f64 / (r * c) as f64;
                        assert!(
                            density > CSR_MAX_DENSITY,
                            "dense kept at density {density}"
                        );
                        reps.1 += 1;
                    }
                    MatRep::Int8(_) => unreachable!("pruning never quantizes"),
                }
            });
            reps
        };

        let mut heavy = test_model();
        prune_global(&mut heavy, 0.7);
        let (sparse, _) = check(&heavy);
        assert!(sparse > 0, "70% pruning must produce CSR matrices");

        let mut light = test_model();
        prune_global(&mut light, 0.3);
        let (_, dense) = check(&light);
        assert!(dense > 0, "30% pruning must keep dense matrices");
        // The dense-kept model really was pruned.
        let s = measured_sparsity(&light);
        assert!((s - 0.3).abs() < 0.05, "measured sparsity {s}");
    }

    #[test]
    // Asserting on constants is the point: this test exists to fail the
    // build when someone moves a cutoff without re-deriving the others.
    #[allow(clippy::assertions_on_constants)]
    fn csr_cutoff_is_grounded_in_exec_and_size_crossovers() {
        // Locks the PR 9 re-derivation. The cutoff must sit strictly
        // inside the hybrid execution band: above the density where pure
        // CSC stops winning single-row serving (matexec then pairs CSC
        // with a densified copy), and below the density where even the
        // execution compiler gives up on sparsity altogether. Outside
        // that ordering the storage choice and the execution selection
        // would contradict each other.
        assert!(crate::matexec::SPARSE_HYBRID_MIN_DENSITY < CSR_MAX_DENSITY);
        assert!(CSR_MAX_DENSITY < crate::matexec::SPARSE_DENSIFY_MIN_DENSITY);
        // The size argument that pins 0.45 specifically: an 8-byte CSR
        // entry against a 4-byte dense cell means the payload hits 0.9×
        // dense at the cutoff (row pointers push it past 1.0× for narrow
        // matrices), while the old 0.5 cutoff stored matrices *larger*
        // than their dense form for zero execution gain.
        let payload_ratio = CSR_MAX_DENSITY * 8.0 / 4.0;
        assert!((payload_ratio - 0.9).abs() < 1e-9, "ratio {payload_ratio}");
        assert!(
            (CSR_MAX_DENSITY - 0.45).abs() < 1e-12,
            "re-derive from BENCH_matvec-density.json before moving the cutoff"
        );
    }

    #[test]
    fn mild_pruning_barely_changes_outputs() {
        let dense = test_model();
        let mut pruned = dense.clone();
        prune_global(&mut pruned, 0.3);
        let w = window(0);
        let a = dense.predict_logits(&w);
        let b = pruned.predict_logits(&w);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.5, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn calibrated_quantization_tracks_dense_predictions() {
        let dense = test_model();
        let mut quant = dense.clone();
        quantize(&mut quant, QuantMode::Calibrated).unwrap();
        let mut agree = 0;
        for s in 0..20 {
            if dense.predict(&window(s)) == quant.predict(&window(s)) {
                agree += 1;
            }
        }
        assert!(agree >= 17, "only {agree}/20 predictions agree");
    }

    #[test]
    fn faithful_quantization_distorts_more_than_calibrated() {
        let dense = test_model();
        let mut cal = dense.clone();
        quantize(&mut cal, QuantMode::Calibrated).unwrap();
        let mut faithful = dense.clone();
        quantize(&mut faithful, QuantMode::GlobalFaithful).unwrap();
        let w = window(1);
        let d = dense.predict_logits(&w);
        let err = |m: &InferModel| -> f32 {
            m.predict_logits(&w)
                .iter()
                .zip(&d)
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        assert!(err(&faithful) > err(&cal), "faithful should distort more");
    }

    #[test]
    fn quantization_shrinks_storage_4x() {
        let dense = test_model();
        let mut quant = dense.clone();
        quantize(&mut quant, QuantMode::Calibrated).unwrap();
        let ratio = storage_bytes(&dense) as f64 / storage_bytes(&quant) as f64;
        assert!(ratio > 3.9, "compression ratio {ratio}");
    }

    #[test]
    fn faithful_quantization_of_all_int8_model_is_a_typed_error() {
        // A model with nothing left to derive a global scale from must be
        // rejected, not silently quantized with a magic fallback scale.
        let mut m = test_model();
        quantize(&mut m, QuantMode::GlobalFaithful).unwrap();
        let before = m.clone();
        let err = quantize(&mut m, QuantMode::GlobalFaithful).unwrap_err();
        assert_eq!(err, MlError::NoQuantizableWeights);
        assert_eq!(m, before, "failed quantization must not touch the model");
    }

    #[test]
    fn calibrated_requantization_of_all_int8_model_is_a_no_op() {
        // Calibrated mode derives scales per matrix and simply leaves
        // already-quantized matrices alone — no error, no change.
        let mut m = test_model();
        quantize(&mut m, QuantMode::Calibrated).unwrap();
        let before = m.clone();
        quantize(&mut m, QuantMode::Calibrated).unwrap();
        assert_eq!(m, before);
    }

    #[test]
    #[should_panic(expected = "prune ratio")]
    fn full_prune_rejected() {
        let mut m = test_model();
        prune_global(&mut m, 1.0);
    }
}
