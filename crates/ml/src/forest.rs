//! Random Forest over statistical features (Table III row "Random Forest").
//!
//! CART trees with Gini impurity, bootstrap resampling and √d feature
//! subsampling. The paper's RF consumes per-channel statistical features
//! (mean, std, min, max, var); [`window_stat_features`] computes exactly
//! that vector from a channel-major window, and the Fig. 9 Pareto point "D"
//! reports total node count as the parameter measure (the paper annotates
//! "72000 total nodes").

use std::sync::Arc;

use exec::ExecPool;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{MlError, Result};

/// Random-forest hyperparameters (Table III: 100–500 trees, depth 10–None).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees (estimators).
    pub n_estimators: usize,
    /// Maximum tree depth (`None` = grow until pure).
    pub max_depth: Option<usize>,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Number of classes.
    pub classes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ForestConfig {
    /// Sec. V winner: 200 estimators (with window 90 upstream), depth 20.
    #[must_use]
    pub fn paper_best() -> Self {
        Self {
            n_estimators: 200,
            max_depth: Some(20),
            min_samples_split: 4,
            classes: 3,
            seed: 0,
        }
    }
}

/// The five Table III statistics per channel, flattened channel-major.
///
/// # Panics
///
/// Panics if `window.len()` is not a multiple of `channels`.
#[must_use]
pub fn window_stat_features(window: &[f32], channels: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(channels * 5);
    window_stat_features_into(window, channels, &mut out);
    out
}

/// [`window_stat_features`] into a reused buffer (cleared first) — the
/// allocation-free serving path; identical arithmetic.
///
/// # Panics
///
/// Panics if `window.len()` is not a multiple of `channels`.
pub fn window_stat_features_into(window: &[f32], channels: usize, out: &mut Vec<f32>) {
    assert!(
        channels > 0 && window.len().is_multiple_of(channels),
        "window {} not divisible by {channels}",
        window.len()
    );
    let per = window.len() / channels;
    out.clear();
    for ch in 0..channels {
        let row = &window[ch * per..(ch + 1) * per];
        let n = row.len() as f64;
        let mean = row.iter().map(|&x| f64::from(x)).sum::<f64>() / n;
        let var = row
            .iter()
            .map(|&x| (f64::from(x) - mean).powi(2))
            .sum::<f64>()
            / n;
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &x in row {
            min = min.min(x);
            max = max.max(x);
        }
        out.push(mean as f32);
        out.push(var.sqrt() as f32);
        out.push(min);
        out.push(max);
        out.push(var as f32);
    }
}

/// One node of a CART tree's arena (public so `model-io` can persist
/// fitted forests node for node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// A terminal node.
    Leaf {
        /// Class-probability distribution at this leaf.
        probs: Vec<f32>,
    },
    /// An internal split.
    Split {
        /// Feature index compared at this node.
        feature: usize,
        /// Decision threshold (`<=` goes left).
        threshold: f32,
        /// Arena index of the left child (always greater than this node's).
        left: usize,
        /// Arena index of the right child (always greater than this node's).
        right: usize,
    },
}

/// One CART tree stored as an arena of nodes.
///
/// The arena is behind an `Arc`, so cloning a tree (and hence an ensemble
/// member that holds forests) shares the fitted nodes instead of copying
/// them — the forest analogue of the tensors' shared weight arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Arc<Vec<TreeNode>>,
}

impl Tree {
    /// Reassembles a tree from its node arena (the model-persistence load
    /// path), enforcing the invariant [`Tree::predict_proba`] relies on for
    /// termination: every split's children live strictly after it in the
    /// arena, so traversal from the root is acyclic.
    ///
    /// Feature indices cannot be bounds-checked here — the fitted feature
    /// count is not part of the tree — so predicting with a feature vector
    /// shorter than a split's `feature` index still panics, exactly as it
    /// does for a freshly fitted tree fed the wrong-length input.
    /// [`RandomForest::from_parts`] additionally checks leaf distributions
    /// against the configured class count.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::BadConfig`] for an empty arena or any
    /// backward/out-of-range child index.
    pub fn from_nodes(nodes: Vec<TreeNode>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(MlError::BadConfig("tree with no nodes".into()));
        }
        for (i, node) in nodes.iter().enumerate() {
            if let TreeNode::Split { left, right, .. } = node {
                if *left <= i || *right <= i || *left >= nodes.len() || *right >= nodes.len() {
                    return Err(MlError::BadConfig(format!(
                        "split node {i} has non-forward children {left}/{right}"
                    )));
                }
            }
        }
        Ok(Self {
            nodes: Arc::new(nodes),
        })
    }

    /// The node arena, root first.
    #[must_use]
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Number of nodes (the paper's size metric for RF).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Class probabilities for one feature vector.
    #[must_use]
    pub fn predict_proba(&self, features: &[f32]) -> &[f32] {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                TreeNode::Leaf { probs } => return probs,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    config: ForestConfig,
    trees: Vec<Tree>,
}

impl RandomForest {
    /// Fits a forest on feature rows `x` with labels `y`, training trees in
    /// parallel on the process-wide [`exec::shared`] pool.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] on empty input,
    /// [`MlError::BadLabel`] on out-of-range labels, and
    /// [`MlError::BadConfig`] for zero estimators/classes.
    pub fn fit(config: ForestConfig, x: &[Vec<f32>], y: &[usize]) -> Result<Self> {
        Self::fit_with(config, x, y, &exec::shared())
    }

    /// [`RandomForest::fit`] on an explicit pool. Each tree's RNG derives
    /// from its index alone, so the fitted model is bit-identical for any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Same as [`RandomForest::fit`].
    pub fn fit_with(
        config: ForestConfig,
        x: &[Vec<f32>],
        y: &[usize],
        pool: &ExecPool,
    ) -> Result<Self> {
        if config.n_estimators == 0 || config.classes == 0 {
            return Err(MlError::BadConfig("zero estimators or classes".into()));
        }
        if x.is_empty() || x.len() != y.len() {
            return Err(MlError::EmptyDataset);
        }
        for &label in y {
            if label >= config.classes {
                return Err(MlError::BadLabel {
                    label,
                    classes: config.classes,
                });
            }
        }
        let n_features = x[0].len();
        let mtry = ((n_features as f64).sqrt().ceil() as usize).max(1);
        let trees = pool.par_map_range(0..config.n_estimators, |t| {
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(t as u64 * 7919));
            // Bootstrap sample.
            let indices: Vec<usize> =
                (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
            let mut builder = TreeBuilder {
                x,
                y,
                config: &config,
                mtry,
                n_features,
                nodes: Vec::new(),
                rng,
            };
            builder.build(indices, 0);
            Tree {
                nodes: Arc::new(builder.nodes),
            }
        });
        Ok(Self { config, trees })
    }

    /// Reassembles a forest from a configuration and fitted trees (the
    /// model-persistence load path).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::BadConfig`] when the tree count disagrees with
    /// `config.n_estimators`, the class count is zero (prediction averages
    /// over trees and classes, so both must be non-degenerate), or any
    /// leaf's probability vector is not `config.classes` long (a short
    /// leaf would silently skew [`RandomForest::predict_proba`]'s vote).
    pub fn from_parts(config: ForestConfig, trees: Vec<Tree>) -> Result<Self> {
        if config.classes == 0 {
            return Err(MlError::BadConfig("zero classes".into()));
        }
        if trees.is_empty() || trees.len() != config.n_estimators {
            return Err(MlError::BadConfig(format!(
                "{} trees but config says {} estimators",
                trees.len(),
                config.n_estimators
            )));
        }
        for (t, tree) in trees.iter().enumerate() {
            for node in tree.nodes() {
                if let TreeNode::Leaf { probs } = node {
                    if probs.len() != config.classes {
                        return Err(MlError::BadConfig(format!(
                            "tree {t} leaf has {} probabilities for {} classes",
                            probs.len(),
                            config.classes
                        )));
                    }
                }
            }
        }
        Ok(Self { config, trees })
    }

    /// The fitted trees.
    #[must_use]
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// The fitted configuration.
    #[must_use]
    pub fn config(&self) -> &ForestConfig {
        &self.config
    }

    /// Total node count across all trees (Fig. 9's parameter metric).
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(Tree::node_count).sum()
    }

    /// Mean class probabilities across trees.
    #[must_use]
    pub fn predict_proba(&self, features: &[f32]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.config.classes];
        self.predict_proba_into(features, &mut acc);
        acc
    }

    /// [`RandomForest::predict_proba`] into a preallocated buffer (fully
    /// overwritten) — the allocation-free serving path; trees vote in the
    /// same fixed order, so the result is bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != classes`.
    pub fn predict_proba_into(&self, features: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), self.config.classes, "class buffer size");
        out.fill(0.0);
        for tree in &self.trees {
            for (a, p) in out.iter_mut().zip(tree.predict_proba(features)) {
                *a += p;
            }
        }
        let n = self.trees.len() as f32;
        for a in out.iter_mut() {
            *a /= n;
        }
    }

    /// Predicted class for one feature vector.
    #[must_use]
    pub fn predict(&self, features: &[f32]) -> usize {
        let probs = self.predict_proba(features);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Predicted classes for a batch of feature vectors, evaluated in
    /// parallel (in input order) on `pool`.
    #[must_use]
    pub fn predict_batch(&self, rows: &[Vec<f32>], pool: &ExecPool) -> Vec<usize> {
        pool.par_map(rows, |row| self.predict(row))
    }

    /// Accuracy over a labelled feature set, scored on the shared pool.
    #[must_use]
    pub fn evaluate(&self, x: &[Vec<f32>], y: &[usize]) -> f64 {
        self.evaluate_with(x, y, &exec::shared())
    }

    /// [`RandomForest::evaluate`] on an explicit pool.
    #[must_use]
    pub fn evaluate_with(&self, x: &[Vec<f32>], y: &[usize], pool: &ExecPool) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        let correct = self
            .predict_batch(x, pool)
            .iter()
            .zip(y)
            .filter(|(p, l)| p == l)
            .count();
        correct as f64 / x.len() as f64
    }
}

struct TreeBuilder<'a> {
    x: &'a [Vec<f32>],
    y: &'a [usize],
    config: &'a ForestConfig,
    mtry: usize,
    n_features: usize,
    nodes: Vec<TreeNode>,
    rng: StdRng,
}

impl TreeBuilder<'_> {
    /// Builds the subtree for `indices`, returning its node id.
    fn build(&mut self, indices: Vec<usize>, depth: usize) -> usize {
        let counts = self.class_counts(&indices);
        let total: usize = counts.iter().sum();
        let pure = counts.contains(&total);
        let depth_capped = self
            .config
            .max_depth
            .is_some_and(|d| depth >= d);
        if pure || depth_capped || indices.len() < self.config.min_samples_split {
            return self.leaf(&counts);
        }
        let Some((feature, threshold)) = self.best_split(&indices, &counts) else {
            return self.leaf(&counts);
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| self.x[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return self.leaf(&counts);
        }
        // Reserve the split node now so children follow it in the arena.
        let id = self.nodes.len();
        self.nodes.push(TreeNode::Leaf { probs: vec![] }); // placeholder
        let left = self.build(left_idx, depth + 1);
        let right = self.build(right_idx, depth + 1);
        self.nodes[id] = TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        id
    }

    fn leaf(&mut self, counts: &[usize]) -> usize {
        let total: usize = counts.iter().sum();
        let probs = counts
            .iter()
            .map(|&c| {
                if total == 0 {
                    1.0 / counts.len() as f32
                } else {
                    c as f32 / total as f32
                }
            })
            .collect();
        self.nodes.push(TreeNode::Leaf { probs });
        self.nodes.len() - 1
    }

    fn class_counts(&self, indices: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.config.classes];
        for &i in indices {
            counts[self.y[i]] += 1;
        }
        counts
    }

    fn gini(counts: &[usize]) -> f64 {
        let total: usize = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        1.0 - counts
            .iter()
            .map(|&c| (c as f64 / t).powi(2))
            .sum::<f64>()
    }

    /// Best `(feature, threshold)` by Gini gain over an `mtry` feature
    /// sample, evaluating candidate thresholds at sorted midpoints.
    fn best_split(&mut self, indices: &[usize], parent_counts: &[usize]) -> Option<(usize, f32)> {
        let parent_gini = Self::gini(parent_counts);
        let n = indices.len() as f64;
        let mut best: Option<(usize, f32, f64)> = None;

        // Sample features without replacement.
        let mut features: Vec<usize> = (0..self.n_features).collect();
        for i in 0..self.mtry.min(self.n_features) {
            let j = self.rng.gen_range(i..features.len());
            features.swap(i, j);
        }
        for &feature in features.iter().take(self.mtry.min(self.n_features)) {
            let mut vals: Vec<(f32, usize)> = indices
                .iter()
                .map(|&i| (self.x[i][feature], self.y[i]))
                .collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            let mut left = vec![0usize; self.config.classes];
            let mut right = parent_counts.to_vec();
            for w in 0..vals.len() - 1 {
                left[vals[w].1] += 1;
                right[vals[w].1] -= 1;
                if vals[w].0 == vals[w + 1].0 {
                    continue;
                }
                let nl = (w + 1) as f64;
                let nr = n - nl;
                let gain = parent_gini
                    - (nl / n) * Self::gini(&left)
                    - (nr / n) * Self::gini(&right);
                if best.is_none_or(|(_, _, g)| gain > g) && gain > 1e-9 {
                    let threshold = (vals[w].0 + vals[w + 1].0) / 2.0;
                    best = Some((feature, threshold, gain));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Separable toy data: class = quadrant of (f0, f1).
    fn toy(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            let noise: f32 = rng.gen_range(-0.05..0.05);
            let label = if a > 0.0 && b > 0.0 {
                0
            } else if a <= 0.0 && b > 0.0 {
                1
            } else {
                2
            };
            xs.push(vec![a + noise, b + noise, rng.gen_range(-1.0..1.0)]);
            ys.push(label);
        }
        (xs, ys)
    }

    #[test]
    fn forest_learns_separable_data() {
        let (xs, ys) = toy(300, 0);
        let (tx, ty) = toy(100, 1);
        let forest = RandomForest::fit(
            ForestConfig {
                n_estimators: 30,
                max_depth: Some(8),
                min_samples_split: 2,
                classes: 3,
                seed: 42,
            },
            &xs,
            &ys,
        )
        .unwrap();
        let acc = forest.evaluate(&tx, &ty);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn depth_limit_bounds_tree_size() {
        let (xs, ys) = toy(300, 2);
        let shallow = RandomForest::fit(
            ForestConfig {
                n_estimators: 10,
                max_depth: Some(2),
                min_samples_split: 2,
                classes: 3,
                seed: 1,
            },
            &xs,
            &ys,
        )
        .unwrap();
        let deep = RandomForest::fit(
            ForestConfig {
                n_estimators: 10,
                max_depth: Some(12),
                min_samples_split: 2,
                classes: 3,
                seed: 1,
            },
            &xs,
            &ys,
        )
        .unwrap();
        assert!(shallow.total_nodes() < deep.total_nodes());
        // Depth 2 => at most 7 nodes per tree.
        assert!(shallow.total_nodes() <= 10 * 7);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (xs, ys) = toy(100, 3);
        let forest = RandomForest::fit(
            ForestConfig {
                n_estimators: 5,
                max_depth: Some(4),
                min_samples_split: 2,
                classes: 3,
                seed: 1,
            },
            &xs,
            &ys,
        )
        .unwrap();
        let p = forest.predict_proba(&xs[0]);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            RandomForest::fit(ForestConfig::paper_best(), &[], &[]),
            Err(MlError::EmptyDataset)
        ));
        let bad_cfg = ForestConfig {
            n_estimators: 0,
            ..ForestConfig::paper_best()
        };
        assert!(RandomForest::fit(bad_cfg, &[vec![0.0]], &[0]).is_err());
        assert!(matches!(
            RandomForest::fit(ForestConfig::paper_best(), &[vec![0.0]], &[7]),
            Err(MlError::BadLabel { .. })
        ));
    }

    #[test]
    fn stat_features_layout() {
        // 2 channels of 4 samples.
        let window = [1.0, 1.0, 1.0, 1.0, 0.0, 2.0, 4.0, 6.0];
        let f = window_stat_features(&window, 2);
        assert_eq!(f.len(), 10);
        assert_eq!(f[0], 1.0); // mean ch0
        assert_eq!(f[1], 0.0); // std ch0
        assert_eq!(f[5], 3.0); // mean ch1
        assert_eq!(f[7], 0.0); // min ch1
        assert_eq!(f[8], 6.0); // max ch1
        assert!((f[9] - 5.0).abs() < 1e-5); // var ch1
    }

    #[test]
    fn deterministic_fit() {
        let (xs, ys) = toy(100, 5);
        let cfg = ForestConfig {
            n_estimators: 5,
            max_depth: Some(4),
            min_samples_split: 2,
            classes: 3,
            seed: 9,
        };
        let a = RandomForest::fit(cfg, &xs, &ys).unwrap();
        let b = RandomForest::fit(cfg, &xs, &ys).unwrap();
        assert_eq!(a.total_nodes(), b.total_nodes());
        assert_eq!(a.predict_proba(&xs[0]), b.predict_proba(&xs[0]));
    }

    #[test]
    fn fit_is_bit_identical_across_thread_counts() {
        let (xs, ys) = toy(150, 8);
        let cfg = ForestConfig {
            n_estimators: 12,
            max_depth: Some(6),
            min_samples_split: 2,
            classes: 3,
            seed: 4,
        };
        let reference = RandomForest::fit_with(cfg, &xs, &ys, &ExecPool::new(1)).unwrap();
        for threads in [2, 4, 8] {
            let pool = ExecPool::new(threads);
            let forest = RandomForest::fit_with(cfg, &xs, &ys, &pool).unwrap();
            assert_eq!(forest, reference, "threads={threads}");
            assert_eq!(
                forest.predict_batch(&xs, &pool),
                reference.predict_batch(&xs, &ExecPool::sequential()),
            );
        }
    }
}
