//! From-scratch machine-learning framework for the CognitiveArm
//! reproduction.
//!
//! The paper's on-device DL engine spans four model families — CNN, LSTM,
//! Transformer and Random Forest (Sec. III-C1, Table III) — trained with
//! Adam/SGD/RMSProp/AdamW and compressed with magnitude pruning and 8-bit
//! post-training quantization for embedded deployment (Sec. III-E). No
//! external ML crates are permitted, so everything here is built up from a
//! plain `f32` tensor:
//!
//! * [`tensor`] — shapes, matmul and elementwise kernels.
//! * [`graph`] — reverse-mode tape autodiff over tensors.
//! * [`layers`] — Dense, Conv2d (im2col), MaxPool, Dropout, LayerNorm,
//!   LSTM and multi-head self-attention, all built on the graph ops.
//! * [`models`] — the paper's configurable CNN / LSTM / Transformer
//!   classifiers behind one [`models::Model`] trait.
//! * [`forest`] — CART random forest over statistical features.
//! * [`optim`] — SGD, Adam, RMSProp, AdamW.
//! * [`train`] — minibatch trainer with early stopping and metrics.
//! * [`infer`] — the deployment runtime: a compiled forward-only network
//!   whose weight matrices can be dense, pruned-sparse (CSR) or int8
//!   quantized; this is where Fig. 12's latency/accuracy trade-off is
//!   produced with real kernels.
//! * [`matexec`] — compiled execution formats for compressed weights:
//!   CSC/densified sparse kernels and SIMD int8 GEMMs, selected per layer
//!   at plan build and bit-identical to the storage kernels they replace.
//! * [`compress`] — global magnitude pruning and post-training
//!   quantization transforms from trained models into [`infer`] networks.
//! * [`ensemble`] — soft/hard-voting ensembles (Fig. 11).
//! * [`metrics`] — accuracy, confusion matrices, paired t-tests
//!   (Sec. V-A).

pub mod arena;
pub mod compress;
pub mod ensemble;
pub mod forest;
pub mod graph;
pub mod infer;
pub mod layers;
pub mod matexec;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod plan;
pub mod simd;
pub mod sparse;
pub mod tensor;
pub mod train;

mod error;

pub use error::MlError;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, MlError>;
