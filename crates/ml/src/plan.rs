//! Compiled inference plans: the allocation-free, batch-first engine
//! behind the 15 Hz label tick.
//!
//! [`crate::infer::InferModel::predict_logits`] is correct but allocates a
//! fresh buffer for every intermediate activation of every window — fine
//! for offline evaluation, ruinous for a serving host classifying many
//! sessions per tick. An [`InferPlan`] is compiled once per model: every
//! per-layer activation buffer is sized at build time into one scratch
//! arena, and [`InferPlan::predict_logits_into`] runs whole batches of
//! windows through the same kernels the allocating path uses
//! ([`crate::tensor::matmul_kernel`] and friends), writing logits into a
//! caller-provided buffer. The steady-state call performs **zero heap
//! allocations**, and per window the arithmetic — and its evaluation
//! order — is identical to the legacy path: batching changes memory
//! layout, never numerics (`tests/tests/serving.rs` and the golden
//! persistence fixtures lock exactly that).
//!
//! A plan is only meaningful for the model it was compiled from; the
//! entry point asserts the cheap structural facts (architecture, input
//! dims, class count) and the sized buffers bound everything else.
//!
//! # Numerics versions
//!
//! Plans carry a [`PlanVersion`]:
//!
//! * **V1** — the original engine: each window of a batch runs the full
//!   per-window forward pass, bit-identical to every artifact produced
//!   since the engine shipped. Frozen; never changes.
//! * **V2** (runtime default) — true multi-window GEMMs: a batch's
//!   windows are stacked as matrix rows and every linear stage runs once
//!   at `m = batch·rows_per_window` through
//!   [`crate::tensor::matmul_blocked_kernel`], the 4-row-blocked,
//!   paired-`k` dense kernel. The reassociated `k` loop produces
//!   *different f32 bits* than v1 (documented tolerance, not drift —
//!   that's why the version exists), but every v2 kernel is **row-count
//!   invariant**: window `i` of a batch gets exactly the bits a
//!   single-window v2 call would produce, so micro-batched serving stays
//!   bit-identical to solo sessions within the version.
//!
//! Select globally with `COGARM_PLAN=1` (or `v1`) in the environment, or
//! explicitly per plan via [`InferPlan::compile_with`].

use crate::infer::{
    self, CnnInfer, InferModel, LstmInfer, ExecScratch, TfInfer,
};
use crate::tensor::{matmul_kernel, matmul_t_kernel};

/// Which numerics generation a compiled plan (or ensemble scratch) runs —
/// see the module docs for the contract each version carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanVersion {
    /// Per-window forward passes; bit-identical to all v1-era artifacts.
    V1,
    /// Batched multi-window GEMMs; row-count-invariant reassociated math.
    V2,
}

impl PlanVersion {
    /// The version newly compiled plans get: **V2**, unless the
    /// environment opts the whole process back into the frozen v1
    /// numerics with `COGARM_PLAN=1` (or `v1`, case-insensitive).
    #[must_use]
    pub fn runtime_default() -> Self {
        match std::env::var("COGARM_PLAN") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("v1") => PlanVersion::V1,
            _ => PlanVersion::V2,
        }
    }
}

/// A compiled, reusable execution plan for one [`InferModel`] (see the
/// module docs). Cheap to move, safe to keep for the life of a session;
/// compile one per ensemble member per inference lane.
#[derive(Debug, Clone)]
pub struct InferPlan {
    channels: usize,
    window: usize,
    classes: usize,
    version: PlanVersion,
    /// Largest batch the v2 buffers currently hold (v1 never grows past 1).
    batch_cap: usize,
    kind: KindPlan,
    qs: ExecScratch,
}

// One plan exists per inference lane and lives for a session; the variant
// size gap (a dozen `Vec` headers) is irrelevant and boxing would cost an
// indirection on the hottest loop in the system.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum KindPlan {
    Cnn(CnnPlan),
    Lstm(LstmPlan),
    Tf(TfPlan),
}

/// Ping-pong activation buffers plus per-stage im2col scratch.
#[derive(Debug, Clone)]
struct CnnPlan {
    a: Vec<f32>,
    b: Vec<f32>,
    cols: Vec<f32>,
    flat: Vec<f32>,
    prepool: Vec<f32>,
}

/// Recurrent state and gate buffers, one slot per layer.
#[derive(Debug, Clone)]
struct LstmPlan {
    /// Hidden states, `cells × hidden`.
    h: Vec<f32>,
    /// Cell states, `cells × hidden`.
    c: Vec<f32>,
    h_new: Vec<f32>,
    input: Vec<f32>,
    z_in: Vec<f32>,
    z_out: Vec<f32>,
}

/// Encoder activation buffers sized to one window's sequence.
#[derive(Debug, Clone)]
struct TfPlan {
    rows: Vec<f32>,
    cur: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    head_q: Vec<f32>,
    head_k: Vec<f32>,
    head_v: Vec<f32>,
    scores: Vec<f32>,
    ho: Vec<f32>,
    merged: Vec<f32>,
    attn: Vec<f32>,
    ff_mid: Vec<f32>,
    ff_out: Vec<f32>,
    pooled: Vec<f32>,
}

impl InferPlan {
    /// Compiles a plan for `model` at the process-wide
    /// [`PlanVersion::runtime_default`]: sizes every activation buffer the
    /// forward pass needs (no arithmetic happens here).
    #[must_use]
    pub fn compile(model: &InferModel) -> Self {
        Self::compile_with(model, PlanVersion::runtime_default())
    }

    /// [`InferPlan::compile`] pinned to an explicit numerics version —
    /// the hook tests and fixture generators use to compare v1 and v2
    /// side by side regardless of the environment.
    #[must_use]
    pub fn compile_with(model: &InferModel, version: PlanVersion) -> Self {
        // Compressed weights compile their execution formats now (CSC /
        // densified sparse, int8 layout selection) rather than on the
        // first inference call — plan build is the declared compile point,
        // and the memoized forms are shared by every clone of the model.
        model.visit_weights(infer::MatRep::precompile);
        let kind = match model {
            InferModel::Cnn(m) => KindPlan::Cnn(CnnPlan::compile(m)),
            InferModel::Lstm(m) => KindPlan::Lstm(LstmPlan::compile(m)),
            InferModel::Transformer(m) => KindPlan::Tf(TfPlan::compile(m)),
        };
        Self {
            channels: model.channels(),
            window: model.window(),
            classes: model.classes(),
            version,
            batch_cap: 1,
            kind,
            qs: ExecScratch::default(),
        }
    }

    /// Number of output classes the compiled head produces.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The numerics version this plan runs.
    #[must_use]
    pub fn version(&self) -> PlanVersion {
        self.version
    }

    /// Runs `batch` channel-major windows (concatenated in `windows`)
    /// through the compiled network, writing `batch × classes` logits to
    /// `out`. Zero heap allocations once the plan has seen its largest
    /// batch (v2 buffers grow on first use of a bigger batch; v1 never
    /// grows).
    ///
    /// Under **V1** each window runs the full per-window pass —
    /// bit-identical to [`InferModel::predict_logits`] on a v1 plan. Under
    /// **V2** the whole batch runs through stacked multi-window GEMMs;
    /// row-count invariance makes window `i`'s logits bit-identical to a
    /// `batch = 1` v2 call.
    ///
    /// # Panics
    ///
    /// Panics if `model` is structurally different from the model this
    /// plan was compiled from, or if buffer lengths disagree with `batch`.
    pub fn predict_logits_into(
        &mut self,
        model: &InferModel,
        windows: &[f32],
        batch: usize,
        out: &mut [f32],
    ) {
        assert_eq!(
            (self.channels, self.window, self.classes),
            (model.channels(), model.window(), model.classes()),
            "plan compiled for a different model shape"
        );
        let per_window = self.channels * self.window;
        assert_eq!(windows.len(), batch * per_window, "window batch size");
        assert_eq!(out.len(), batch * self.classes, "logit buffer size");
        match self.version {
            PlanVersion::V1 => {
                for b in 0..batch {
                    let window = &windows[b * per_window..(b + 1) * per_window];
                    let logits = &mut out[b * self.classes..(b + 1) * self.classes];
                    match (&mut self.kind, model) {
                        (KindPlan::Cnn(plan), InferModel::Cnn(m)) => {
                            plan.run(m, window, logits, &mut self.qs);
                        }
                        (KindPlan::Lstm(plan), InferModel::Lstm(m)) => {
                            plan.run(m, window, logits, &mut self.qs);
                        }
                        (KindPlan::Tf(plan), InferModel::Transformer(m)) => {
                            plan.run(m, window, logits, &mut self.qs);
                        }
                        _ => panic!("plan architecture disagrees with model"),
                    }
                }
            }
            PlanVersion::V2 => {
                let grow = batch > self.batch_cap;
                match (&mut self.kind, model) {
                    (KindPlan::Cnn(plan), InferModel::Cnn(m)) => {
                        if grow {
                            plan.grow(m, batch);
                        }
                        plan.run_batch(m, windows, batch, out, &mut self.qs);
                    }
                    (KindPlan::Lstm(plan), InferModel::Lstm(m)) => {
                        if grow {
                            plan.grow(m, batch);
                        }
                        plan.run_batch(m, windows, batch, out, &mut self.qs);
                    }
                    (KindPlan::Tf(plan), InferModel::Transformer(m)) => {
                        if grow {
                            plan.grow(m, batch);
                        }
                        plan.run_batch(m, windows, batch, out, &mut self.qs);
                    }
                    _ => panic!("plan architecture disagrees with model"),
                }
                self.batch_cap = self.batch_cap.max(batch);
            }
        }
    }
}

impl CnnPlan {
    fn compile(m: &CnnInfer) -> Self {
        let mut act = m.channels * m.window;
        let (mut cols, mut flat, mut prepool) = (0usize, 0usize, 0usize);
        for conv in &m.convs {
            let (ho, wo) = conv.conv_out();
            let spots = ho * wo;
            let patch = conv.cin * conv.k * conv.k;
            let cout = conv.bias.len();
            cols = cols.max(spots * patch);
            flat = flat.max(spots * cout);
            prepool = prepool.max(cout * spots);
            act = act.max(conv.out_len());
        }
        Self {
            a: vec![0.0; act],
            b: vec![0.0; act],
            cols: vec![0.0; cols],
            flat: vec![0.0; flat],
            prepool: vec![0.0; prepool],
        }
    }

    fn run(&mut self, m: &CnnInfer, window: &[f32], logits: &mut [f32], qs: &mut ExecScratch) {
        let mut len = window.len();
        self.a[..len].copy_from_slice(window);
        for conv in &m.convs {
            len = conv.forward_into(
                &self.a[..len],
                &mut self.cols,
                &mut self.flat,
                &mut self.prepool,
                &mut self.b,
                qs,
            );
            std::mem::swap(&mut self.a, &mut self.b);
        }
        m.head.forward_into(&self.a[..len], 1, logits, qs);
    }

    /// Scales the ping-pong and GEMM staging buffers to hold `batch`
    /// windows (`prepool` stays per-window — the conv epilogue runs one
    /// window at a time).
    fn grow(&mut self, m: &CnnInfer, batch: usize) {
        let mut act = m.channels * m.window;
        let (mut cols, mut flat) = (0usize, 0usize);
        for conv in &m.convs {
            let (ho, wo) = conv.conv_out();
            let spots = ho * wo;
            let patch = conv.cin * conv.k * conv.k;
            cols = cols.max(spots * patch);
            flat = flat.max(spots * conv.bias.len());
            act = act.max(conv.out_len());
        }
        self.a.resize(act * batch, 0.0);
        self.b.resize(act * batch, 0.0);
        self.cols.resize(cols * batch, 0.0);
        self.flat.resize(flat * batch, 0.0);
    }

    /// The v2 forward: every conv stage lowers **all** windows' patches
    /// into one stacked `[batch·spots, patch]` matrix and multiplies the
    /// weights once; the bias/ReLU/pool epilogue and the head run
    /// per-window-row, so each window's activations are bit-identical to
    /// a `batch = 1` call.
    fn run_batch(
        &mut self,
        m: &CnnInfer,
        windows: &[f32],
        batch: usize,
        logits: &mut [f32],
        qs: &mut ExecScratch,
    ) {
        let mut len = m.channels * m.window;
        self.a[..batch * len].copy_from_slice(&windows[..batch * len]);
        for conv in &m.convs {
            let (ho, wo) = conv.conv_out();
            let spots = ho * wo;
            let patch = conv.cin * conv.k * conv.k;
            let cout = conv.bias.len();
            let out_len = conv.out_len();
            for b in 0..batch {
                conv.im2col_into(
                    &self.a[b * len..(b + 1) * len],
                    &mut self.cols[b * spots * patch..(b + 1) * spots * patch],
                );
            }
            conv.w.left_matmul_into_v2(
                &self.cols[..batch * spots * patch],
                batch * spots,
                &mut self.flat,
                qs,
            );
            for b in 0..batch {
                conv.bias_pool_into(
                    &self.flat[b * spots * cout..(b + 1) * spots * cout],
                    &mut self.prepool,
                    &mut self.b[b * out_len..(b + 1) * out_len],
                );
            }
            len = out_len;
            std::mem::swap(&mut self.a, &mut self.b);
        }
        m.head.forward_into_v2(&self.a[..batch * len], batch, logits, qs);
    }
}

impl LstmPlan {
    fn compile(m: &LstmInfer) -> Self {
        let cells = m.cells.len();
        let input = m.channels.max(m.hidden);
        Self {
            h: vec![0.0; cells * m.hidden],
            c: vec![0.0; cells * m.hidden],
            h_new: vec![0.0; m.hidden],
            input: vec![0.0; input],
            z_in: vec![0.0; input + m.hidden],
            z_out: vec![0.0; 4 * m.hidden],
        }
    }

    fn run(&mut self, m: &LstmInfer, window: &[f32], logits: &mut [f32], qs: &mut ExecScratch) {
        let hid = m.hidden;
        let t_len = m.window.div_ceil(m.time_stride);
        self.h.fill(0.0);
        self.c.fill(0.0);
        for ti in 0..t_len {
            let t_src = ti * m.time_stride;
            let mut in_len = m.channels;
            for ch in 0..m.channels {
                self.input[ch] = window[ch * m.window + t_src];
            }
            for (li, cell) in m.cells.iter().enumerate() {
                let z_len = in_len + hid;
                self.z_in[..in_len].copy_from_slice(&self.input[..in_len]);
                self.z_in[in_len..z_len].copy_from_slice(&self.h[li * hid..(li + 1) * hid]);
                cell.forward_into(&self.z_in[..z_len], 1, &mut self.z_out, qs);
                for j in 0..hid {
                    let i_g = infer::sigmoid(self.z_out[j]);
                    let f_g = infer::sigmoid(self.z_out[hid + j]);
                    let g_g = self.z_out[2 * hid + j].tanh();
                    let o_g = infer::sigmoid(self.z_out[3 * hid + j]);
                    let c = &mut self.c[li * hid + j];
                    *c = f_g * *c + i_g * g_g;
                    self.h_new[j] = o_g * c.tanh();
                }
                self.h[li * hid..(li + 1) * hid].copy_from_slice(&self.h_new[..hid]);
                self.input[..hid].copy_from_slice(&self.h[li * hid..(li + 1) * hid]);
                in_len = hid;
            }
        }
        let last = (m.cells.len() - 1) * hid;
        m.head.forward_into(&self.h[last..last + hid], 1, logits, qs);
    }

    /// Scales the recurrent state and gate staging buffers to hold
    /// `batch` windows.
    fn grow(&mut self, m: &LstmInfer, batch: usize) {
        let cells = m.cells.len();
        let input = m.channels.max(m.hidden);
        self.h.resize(cells * m.hidden * batch, 0.0);
        self.c.resize(cells * m.hidden * batch, 0.0);
        self.h_new.resize(m.hidden * batch, 0.0);
        self.input.resize(input * batch, 0.0);
        self.z_in.resize((input + m.hidden) * batch, 0.0);
        self.z_out.resize(4 * m.hidden * batch, 0.0);
    }

    /// The v2 forward: at every timestep each layer's `[x_t, h_{t-1}]`
    /// rows for **all** windows stack into one `[batch, in+h]` GEMM; the
    /// gate nonlinearities run per row. Recurrent state is laid out
    /// `[layer][window][hidden]`, so the final layer's hidden block feeds
    /// the head as a contiguous `[batch, hidden]` matrix.
    fn run_batch(
        &mut self,
        m: &LstmInfer,
        windows: &[f32],
        batch: usize,
        logits: &mut [f32],
        qs: &mut ExecScratch,
    ) {
        let hid = m.hidden;
        let iw = m.channels.max(hid);
        let per_window = m.channels * m.window;
        let t_len = m.window.div_ceil(m.time_stride);
        let cells = m.cells.len();
        self.h[..cells * batch * hid].fill(0.0);
        self.c[..cells * batch * hid].fill(0.0);
        for ti in 0..t_len {
            let t_src = ti * m.time_stride;
            let mut in_len = m.channels;
            for b in 0..batch {
                let window = &windows[b * per_window..(b + 1) * per_window];
                for ch in 0..m.channels {
                    self.input[b * iw + ch] = window[ch * m.window + t_src];
                }
            }
            for (li, cell) in m.cells.iter().enumerate() {
                let z_len = in_len + hid;
                for b in 0..batch {
                    let z = &mut self.z_in[b * z_len..(b + 1) * z_len];
                    z[..in_len].copy_from_slice(&self.input[b * iw..b * iw + in_len]);
                    z[in_len..].copy_from_slice(
                        &self.h[(li * batch + b) * hid..(li * batch + b + 1) * hid],
                    );
                }
                cell.forward_into_v2(&self.z_in[..batch * z_len], batch, &mut self.z_out, qs);
                for b in 0..batch {
                    let z_out = &self.z_out[b * 4 * hid..(b + 1) * 4 * hid];
                    for j in 0..hid {
                        let i_g = infer::sigmoid(z_out[j]);
                        let f_g = infer::sigmoid(z_out[hid + j]);
                        let g_g = z_out[2 * hid + j].tanh();
                        let o_g = infer::sigmoid(z_out[3 * hid + j]);
                        let c = &mut self.c[(li * batch + b) * hid + j];
                        *c = f_g * *c + i_g * g_g;
                        self.h_new[b * hid + j] = o_g * c.tanh();
                    }
                    self.h[(li * batch + b) * hid..(li * batch + b + 1) * hid]
                        .copy_from_slice(&self.h_new[b * hid..(b + 1) * hid]);
                    self.input[b * iw..b * iw + hid].copy_from_slice(
                        &self.h[(li * batch + b) * hid..(li * batch + b + 1) * hid],
                    );
                }
                in_len = hid;
            }
        }
        let last = (cells - 1) * batch * hid;
        m.head
            .forward_into_v2(&self.h[last..last + batch * hid], batch, logits, qs);
    }
}

impl TfPlan {
    fn compile(m: &TfInfer) -> Self {
        let t = m.window.div_ceil(m.time_stride);
        let d = m.d_model;
        let dh = d / m.heads;
        let ff = m
            .blocks
            .iter()
            .map(|b| b.ff1.out_width())
            .max()
            .unwrap_or(0);
        Self {
            rows: vec![0.0; t * m.channels],
            cur: vec![0.0; t * d],
            q: vec![0.0; t * d],
            k: vec![0.0; t * d],
            v: vec![0.0; t * d],
            head_q: vec![0.0; t * dh],
            head_k: vec![0.0; t * dh],
            head_v: vec![0.0; t * dh],
            scores: vec![0.0; t * t],
            ho: vec![0.0; t * dh],
            merged: vec![0.0; t * d],
            attn: vec![0.0; t * d],
            ff_mid: vec![0.0; t * ff],
            ff_out: vec![0.0; t * d],
            pooled: vec![0.0; d],
        }
    }

    fn run(&mut self, m: &TfInfer, window: &[f32], logits: &mut [f32], qs: &mut ExecScratch) {
        let chans = m.channels;
        let t = m.window.div_ceil(m.time_stride);
        let d = m.d_model;
        let dh = d / m.heads;
        for (ti, t_src) in (0..m.window).step_by(m.time_stride).enumerate() {
            for ch in 0..chans {
                self.rows[ti * chans + ch] = window[ch * m.window + t_src];
            }
        }
        m.input_proj.forward_into(&self.rows[..t * chans], t, &mut self.cur, qs);
        for (c, &p) in self.cur[..t * d].iter_mut().zip(m.pos.data()) {
            *c += p;
        }
        let scale = 1.0 / (dh as f32).sqrt();
        for block in &m.blocks {
            block.wq.forward_into(&self.cur[..t * d], t, &mut self.q, qs);
            block.wk.forward_into(&self.cur[..t * d], t, &mut self.k, qs);
            block.wv.forward_into(&self.cur[..t * d], t, &mut self.v, qs);
            for hidx in 0..m.heads {
                infer::slice_cols_into(&self.q, t, d, hidx * dh, dh, &mut self.head_q);
                infer::slice_cols_into(&self.k, t, d, hidx * dh, dh, &mut self.head_k);
                infer::slice_cols_into(&self.v, t, d, hidx * dh, dh, &mut self.head_v);
                matmul_t_kernel(&self.head_q, &self.head_k, t, dh, t, &mut self.scores);
                for s in &mut self.scores[..t * t] {
                    *s *= scale;
                }
                infer::softmax_rows_slice(&mut self.scores, t, t);
                matmul_kernel(&self.scores, &self.head_v, t, t, dh, &mut self.ho);
                for ti in 0..t {
                    self.merged[ti * d + hidx * dh..ti * d + (hidx + 1) * dh]
                        .copy_from_slice(&self.ho[ti * dh..(ti + 1) * dh]);
                }
            }
            block.wo.forward_into(&self.merged[..t * d], t, &mut self.attn, qs);
            // Residual adds run in place on `cur` — `a + b` in the same
            // order as the tensor path's clone-then-add_assign.
            for (c, &a) in self.cur[..t * d].iter_mut().zip(&self.attn[..t * d]) {
                *c += a;
            }
            infer::layer_norm_slice(&mut self.cur, t, d, &block.ln1.0, &block.ln1.1);
            let ff = block.ff1.out_width();
            block.ff1.forward_into(&self.cur[..t * d], t, &mut self.ff_mid, qs);
            block
                .ff2
                .forward_into(&self.ff_mid[..t * ff], t, &mut self.ff_out, qs);
            for (c, &f) in self.cur[..t * d].iter_mut().zip(&self.ff_out[..t * d]) {
                *c += f;
            }
            infer::layer_norm_slice(&mut self.cur, t, d, &block.ln2.0, &block.ln2.1);
        }
        // Mean pool over time.
        self.pooled.fill(0.0);
        for ti in 0..t {
            for (j, p) in self.pooled[..d].iter_mut().enumerate() {
                *p += self.cur[ti * d + j] / t as f32;
            }
        }
        m.head.forward_into(&self.pooled[..d], 1, logits, qs);
    }

    /// Scales the sequence-shaped buffers to hold `batch` windows'
    /// stacked rows (the per-window attention scratch — `head_q/k/v`,
    /// `scores`, `ho` — is reused across windows and stays single-sized).
    fn grow(&mut self, m: &TfInfer, batch: usize) {
        let t = m.window.div_ceil(m.time_stride);
        let d = m.d_model;
        let ff = m
            .blocks
            .iter()
            .map(|b| b.ff1.out_width())
            .max()
            .unwrap_or(0);
        self.rows.resize(t * m.channels * batch, 0.0);
        self.cur.resize(t * d * batch, 0.0);
        self.q.resize(t * d * batch, 0.0);
        self.k.resize(t * d * batch, 0.0);
        self.v.resize(t * d * batch, 0.0);
        self.merged.resize(t * d * batch, 0.0);
        self.attn.resize(t * d * batch, 0.0);
        self.ff_mid.resize(t * ff * batch, 0.0);
        self.ff_out.resize(t * d * batch, 0.0);
        self.pooled.resize(d * batch, 0.0);
    }

    /// The v2 forward: all projections and the feed-forward stages run
    /// once over the stacked `[batch·t, d]` rows; attention — inherently
    /// per-window (each window owns a `t × t` score matrix) — loops over
    /// windows with reused per-window scratch. LayerNorm, softmax and the
    /// residual adds are all row-local, so every window's rows see
    /// exactly the arithmetic a `batch = 1` call applies.
    fn run_batch(
        &mut self,
        m: &TfInfer,
        windows: &[f32],
        batch: usize,
        logits: &mut [f32],
        qs: &mut ExecScratch,
    ) {
        let chans = m.channels;
        let per_window = chans * m.window;
        let t = m.window.div_ceil(m.time_stride);
        let d = m.d_model;
        let dh = d / m.heads;
        for b in 0..batch {
            let window = &windows[b * per_window..(b + 1) * per_window];
            for (ti, t_src) in (0..m.window).step_by(m.time_stride).enumerate() {
                for ch in 0..chans {
                    self.rows[(b * t + ti) * chans + ch] = window[ch * m.window + t_src];
                }
            }
        }
        let rows = batch * t;
        m.input_proj
            .forward_into_v2(&self.rows[..rows * chans], rows, &mut self.cur, qs);
        for b in 0..batch {
            for (c, &p) in self.cur[b * t * d..(b + 1) * t * d]
                .iter_mut()
                .zip(m.pos.data())
            {
                *c += p;
            }
        }
        let scale = 1.0 / (dh as f32).sqrt();
        for block in &m.blocks {
            block
                .wq
                .forward_into_v2(&self.cur[..rows * d], rows, &mut self.q, qs);
            block
                .wk
                .forward_into_v2(&self.cur[..rows * d], rows, &mut self.k, qs);
            block
                .wv
                .forward_into_v2(&self.cur[..rows * d], rows, &mut self.v, qs);
            for b in 0..batch {
                let span = b * t * d..(b + 1) * t * d;
                for hidx in 0..m.heads {
                    infer::slice_cols_into(
                        &self.q[span.clone()],
                        t,
                        d,
                        hidx * dh,
                        dh,
                        &mut self.head_q,
                    );
                    infer::slice_cols_into(
                        &self.k[span.clone()],
                        t,
                        d,
                        hidx * dh,
                        dh,
                        &mut self.head_k,
                    );
                    infer::slice_cols_into(
                        &self.v[span.clone()],
                        t,
                        d,
                        hidx * dh,
                        dh,
                        &mut self.head_v,
                    );
                    matmul_t_kernel(&self.head_q, &self.head_k, t, dh, t, &mut self.scores);
                    for s in &mut self.scores[..t * t] {
                        *s *= scale;
                    }
                    infer::softmax_rows_slice(&mut self.scores, t, t);
                    matmul_kernel(&self.scores, &self.head_v, t, t, dh, &mut self.ho);
                    for ti in 0..t {
                        let row = (b * t + ti) * d;
                        self.merged[row + hidx * dh..row + (hidx + 1) * dh]
                            .copy_from_slice(&self.ho[ti * dh..(ti + 1) * dh]);
                    }
                }
            }
            block
                .wo
                .forward_into_v2(&self.merged[..rows * d], rows, &mut self.attn, qs);
            for (c, &a) in self.cur[..rows * d].iter_mut().zip(&self.attn[..rows * d]) {
                *c += a;
            }
            infer::layer_norm_slice(&mut self.cur, rows, d, &block.ln1.0, &block.ln1.1);
            let ff = block.ff1.out_width();
            block
                .ff1
                .forward_into_v2(&self.cur[..rows * d], rows, &mut self.ff_mid, qs);
            block
                .ff2
                .forward_into_v2(&self.ff_mid[..rows * ff], rows, &mut self.ff_out, qs);
            for (c, &f) in self.cur[..rows * d].iter_mut().zip(&self.ff_out[..rows * d]) {
                *c += f;
            }
            infer::layer_norm_slice(&mut self.cur, rows, d, &block.ln2.0, &block.ln2.1);
        }
        // Mean pool over time, per window.
        self.pooled[..batch * d].fill(0.0);
        for b in 0..batch {
            let pooled = &mut self.pooled[b * d..(b + 1) * d];
            for ti in 0..t {
                for (j, p) in pooled.iter_mut().enumerate() {
                    *p += self.cur[(b * t + ti) * d + j] / t as f32;
                }
            }
        }
        m.head
            .forward_into_v2(&self.pooled[..batch * d], batch, logits, qs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{prune_global, quantize, QuantMode};
    use crate::models::{CnnConfig, ConvSpec, LstmConfig, PoolKind, TransformerConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_window(channels: usize, win: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..channels * win).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn models() -> Vec<InferModel> {
        let cnn = CnnConfig {
            convs: vec![
                ConvSpec {
                    filters: 6,
                    kernel: 3,
                    stride: 2,
                },
                ConvSpec {
                    filters: 4,
                    kernel: 3,
                    stride: 1,
                },
            ],
            pool: PoolKind::Max,
            window: 40,
            channels: 16,
            dropout: 0.0,
        };
        let lstm = LstmConfig {
            hidden: 12,
            layers: 2,
            dropout: 0.0,
            window: 32,
            channels: 16,
            time_stride: 4,
        };
        let tf = TransformerConfig {
            layers: 2,
            heads: 2,
            d_model: 16,
            dim_ff: 32,
            dropout: 0.0,
            window: 32,
            channels: 16,
            time_stride: 4,
        };
        vec![
            infer::compile_cnn(&cnn.build(1).unwrap()),
            infer::compile_lstm(&lstm.build(2).unwrap()),
            infer::compile_transformer(&tf.build(3).unwrap()),
        ]
    }

    #[test]
    fn plan_is_bit_identical_to_legacy_path_per_window() {
        for (mi, model) in models().iter().enumerate() {
            let mut plan = InferPlan::compile(model);
            for seed in 0..4u64 {
                let w = random_window(model.channels(), model.window(), seed * 7 + mi as u64);
                let legacy = model.predict_logits(&w);
                let mut out = vec![0.0f32; model.classes()];
                plan.predict_logits_into(model, &w, 1, &mut out);
                for (a, b) in legacy.iter().zip(&out) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "model {mi} seed {seed}: {legacy:?} vs {out:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_logits_match_per_window_calls_bitwise() {
        for model in &models() {
            let mut plan = InferPlan::compile(model);
            let per = model.channels() * model.window();
            let batch = 5;
            let mut windows = Vec::with_capacity(batch * per);
            for b in 0..batch {
                windows.extend(random_window(model.channels(), model.window(), 100 + b as u64));
            }
            let mut batched = vec![0.0f32; batch * model.classes()];
            plan.predict_logits_into(model, &windows, batch, &mut batched);
            for b in 0..batch {
                let solo = model.predict_logits(&windows[b * per..(b + 1) * per]);
                let got = &batched[b * model.classes()..(b + 1) * model.classes()];
                for (x, y) in solo.iter().zip(got) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{} window {b}", model.kind());
                }
            }
        }
    }

    #[test]
    fn plan_reuse_does_not_leak_state_across_windows() {
        // Recurrent/attention state must be reset per window: running the
        // same window twice through one plan must give the same answer as
        // a fresh plan.
        for model in &models() {
            let w = random_window(model.channels(), model.window(), 9);
            let mut plan = InferPlan::compile(model);
            let mut first = vec![0.0f32; model.classes()];
            plan.predict_logits_into(model, &w, 1, &mut first);
            // Poison with a different window, then repeat the original.
            let other = random_window(model.channels(), model.window(), 10);
            let mut sink = vec![0.0f32; model.classes()];
            plan.predict_logits_into(model, &other, 1, &mut sink);
            let mut second = vec![0.0f32; model.classes()];
            plan.predict_logits_into(model, &w, 1, &mut second);
            for (a, b) in first.iter().zip(&second) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} state leaked", model.kind());
            }
        }
    }

    #[test]
    fn plan_covers_sparse_and_quantized_representations() {
        // The compressed deployment variants run different kernels; the
        // plan must route through the same ones bit-for-bit.
        for model in &models() {
            for variant in [0, 1] {
                let mut m = model.clone();
                if variant == 0 {
                    prune_global(&mut m, 0.5);
                } else {
                    quantize(&mut m, QuantMode::Calibrated).unwrap();
                }
                let w = random_window(m.channels(), m.window(), 31);
                let legacy = m.predict_logits(&w);
                let mut plan = InferPlan::compile(&m);
                let mut out = vec![0.0f32; m.classes()];
                plan.predict_logits_into(&m, &w, 1, &mut out);
                for (a, b) in legacy.iter().zip(&out) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} variant {variant}", m.kind());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "plan compiled for a different model shape")]
    fn mismatched_model_is_rejected() {
        let models = models();
        let mut plan = InferPlan::compile(&models[0]);
        let w = random_window(models[1].channels(), models[1].window(), 0);
        let mut out = vec![0.0f32; models[1].classes()];
        plan.predict_logits_into(&models[1], &w, 1, &mut out);
    }
}
