//! Optimizers: SGD (with momentum), Adam, RMSProp and AdamW.
//!
//! Table III ties each architecture to its optimizer pool (CNN: Adam/SGD,
//! LSTM: Adam/RMSProp, Transformer: AdamW with weight decay). All four are
//! implemented over the [`ParamStore`], with per-slot state allocated
//! lazily.

use serde::{Deserialize, Serialize};

use crate::layers::ParamStore;
use crate::tensor::Tensor;

/// Which optimizer to run, with its hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with classical momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables).
        momentum: f32,
    },
    /// Adam (Kingma & Ba).
    Adam {
        /// Learning rate.
        lr: f32,
    },
    /// RMSProp (Tieleman & Hinton).
    RmsProp {
        /// Learning rate.
        lr: f32,
        /// Squared-gradient decay.
        decay: f32,
    },
    /// AdamW: Adam with decoupled weight decay.
    AdamW {
        /// Learning rate.
        lr: f32,
        /// Decoupled weight-decay coefficient.
        weight_decay: f32,
    },
}

impl OptimizerKind {
    /// Short name used in reports ("adam", "sgd", …).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerKind::Sgd { .. } => "sgd",
            OptimizerKind::Adam { .. } => "adam",
            OptimizerKind::RmsProp { .. } => "rmsprop",
            OptimizerKind::AdamW { .. } => "adamw",
        }
    }

    /// The configured learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f32 {
        match *self {
            OptimizerKind::Sgd { lr, .. }
            | OptimizerKind::Adam { lr }
            | OptimizerKind::RmsProp { lr, .. }
            | OptimizerKind::AdamW { lr, .. } => lr,
        }
    }
}

impl std::fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(lr={})", self.name(), self.learning_rate())
    }
}

const B1: f32 = 0.9;
const B2: f32 = 0.999;
const EPS: f32 = 1e-8;

/// Stateful optimizer over a parameter store.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    /// First-moment / momentum buffers per slot.
    m: Vec<Option<Vec<f32>>>,
    /// Second-moment buffers per slot.
    v: Vec<Option<Vec<f32>>>,
    /// Step counter (for Adam bias correction).
    t: u64,
}

impl Optimizer {
    /// Creates an optimizer of the given kind.
    #[must_use]
    pub fn new(kind: OptimizerKind) -> Self {
        Self {
            kind,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// The optimizer's configuration.
    #[must_use]
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Applies one update given gradients per slot (`None` = no gradient).
    ///
    /// # Panics
    ///
    /// Panics if a gradient's size differs from its parameter's.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Option<Tensor>]) {
        self.t += 1;
        if self.m.len() < store.len() {
            self.m.resize(store.len(), None);
            self.v.resize(store.len(), None);
        }
        for (slot, grad) in grads.iter().enumerate() {
            let Some(grad) = grad else { continue };
            let p = store.get_mut(slot);
            assert_eq!(p.numel(), grad.numel(), "grad size mismatch at {slot}");
            match self.kind {
                OptimizerKind::Sgd { lr, momentum } => {
                    if momentum == 0.0 {
                        for (w, g) in p.data_mut().iter_mut().zip(grad.data()) {
                            *w -= lr * g;
                        }
                    } else {
                        let m = self.m[slot].get_or_insert_with(|| vec![0.0; p.numel()]);
                        for ((w, g), mv) in
                            p.data_mut().iter_mut().zip(grad.data()).zip(m.iter_mut())
                        {
                            *mv = momentum * *mv + g;
                            *w -= lr * *mv;
                        }
                    }
                }
                OptimizerKind::Adam { lr } => {
                    let m = self.m[slot].get_or_insert_with(|| vec![0.0; p.numel()]);
                    let v = self.v[slot].get_or_insert_with(|| vec![0.0; p.numel()]);
                    let bc1 = 1.0 - B1.powi(self.t as i32);
                    let bc2 = 1.0 - B2.powi(self.t as i32);
                    for (((w, g), mv), vv) in p
                        .data_mut()
                        .iter_mut()
                        .zip(grad.data())
                        .zip(m.iter_mut())
                        .zip(v.iter_mut())
                    {
                        *mv = B1 * *mv + (1.0 - B1) * g;
                        *vv = B2 * *vv + (1.0 - B2) * g * g;
                        let mh = *mv / bc1;
                        let vh = *vv / bc2;
                        *w -= lr * mh / (vh.sqrt() + EPS);
                    }
                }
                OptimizerKind::RmsProp { lr, decay } => {
                    let v = self.v[slot].get_or_insert_with(|| vec![0.0; p.numel()]);
                    for ((w, g), vv) in
                        p.data_mut().iter_mut().zip(grad.data()).zip(v.iter_mut())
                    {
                        *vv = decay * *vv + (1.0 - decay) * g * g;
                        *w -= lr * g / (vv.sqrt() + EPS);
                    }
                }
                OptimizerKind::AdamW { lr, weight_decay } => {
                    let m = self.m[slot].get_or_insert_with(|| vec![0.0; p.numel()]);
                    let v = self.v[slot].get_or_insert_with(|| vec![0.0; p.numel()]);
                    let bc1 = 1.0 - B1.powi(self.t as i32);
                    let bc2 = 1.0 - B2.powi(self.t as i32);
                    for (((w, g), mv), vv) in p
                        .data_mut()
                        .iter_mut()
                        .zip(grad.data())
                        .zip(m.iter_mut())
                        .zip(v.iter_mut())
                    {
                        *mv = B1 * *mv + (1.0 - B1) * g;
                        *vv = B2 * *vv + (1.0 - B2) * g * g;
                        let mh = *mv / bc1;
                        let vh = *vv / bc2;
                        *w -= lr * (mh / (vh.sqrt() + EPS) + weight_decay * *w);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = (w - 3)^2 with each optimizer; all must converge.
    fn converges(kind: OptimizerKind, steps: usize, tol: f32) {
        let mut store = ParamStore::new();
        let slot = store.alloc(Tensor::new(vec![1], vec![-2.0]));
        let mut opt = Optimizer::new(kind);
        for _ in 0..steps {
            let w = store.get(slot).data()[0];
            let grad = Tensor::new(vec![1], vec![2.0 * (w - 3.0)]);
            opt.step(&mut store, &[Some(grad)]);
        }
        let w = store.get(slot).data()[0];
        assert!((w - 3.0).abs() < tol, "{kind}: w = {w}");
    }

    #[test]
    fn sgd_converges() {
        converges(
            OptimizerKind::Sgd {
                lr: 0.1,
                momentum: 0.0,
            },
            100,
            1e-3,
        );
    }

    #[test]
    fn sgd_momentum_converges() {
        converges(
            OptimizerKind::Sgd {
                lr: 0.05,
                momentum: 0.9,
            },
            200,
            1e-2,
        );
    }

    #[test]
    fn adam_converges() {
        converges(OptimizerKind::Adam { lr: 0.1 }, 300, 1e-2);
    }

    #[test]
    fn rmsprop_converges() {
        converges(
            OptimizerKind::RmsProp {
                lr: 0.05,
                decay: 0.9,
            },
            400,
            5e-2,
        );
    }

    #[test]
    fn adamw_converges_near_minimum() {
        // Weight decay pulls slightly toward zero; allow a looser tolerance.
        converges(
            OptimizerKind::AdamW {
                lr: 0.1,
                weight_decay: 1e-3,
            },
            300,
            5e-2,
        );
    }

    #[test]
    fn adamw_decays_unused_weights_toward_zero() {
        let mut store = ParamStore::new();
        let slot = store.alloc(Tensor::new(vec![1], vec![5.0]));
        let mut opt = Optimizer::new(OptimizerKind::AdamW {
            lr: 0.01,
            weight_decay: 0.1,
        });
        for _ in 0..100 {
            // Zero task gradient: only decay acts.
            opt.step(&mut store, &[Some(Tensor::new(vec![1], vec![0.0]))]);
        }
        let w = store.get(slot).data()[0];
        assert!(w.abs() < 5.0 * 0.95, "decayed w = {w}");
    }

    #[test]
    fn missing_gradients_leave_params_untouched() {
        let mut store = ParamStore::new();
        let slot = store.alloc(Tensor::new(vec![2], vec![1.0, 2.0]));
        let mut opt = Optimizer::new(OptimizerKind::Adam { lr: 0.1 });
        opt.step(&mut store, &[None]);
        assert_eq!(store.get(slot).data(), &[1.0, 2.0]);
    }

    #[test]
    fn names_and_display() {
        let k = OptimizerKind::Adam { lr: 0.001 };
        assert_eq!(k.name(), "adam");
        assert!(k.to_string().contains("adam"));
    }
}
