//! Compressed-sparse-row matrices for pruned inference.
//!
//! Unstructured magnitude pruning only pays off at inference time if the
//! kernel actually skips zeros; a dense matmul over a 70%-zero matrix costs
//! exactly as much as the unpruned one. The paper reports a latency *drop*
//! after pruning (0.075 s → 0.071 s), which implies a sparse execution
//! path — this module is that path.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::arena::ArenaVec;
use crate::error::MlError;
use crate::matexec::{ExecCache, SparseExec};
use crate::tensor::Tensor;

/// CSR representation of a weight matrix `[rows, cols]`.
///
/// The three arrays are [`ArenaVec`]s, so a matrix decoded from a shared
/// weight image borrows (or refcount-shares) its storage instead of
/// copying it per session; owned matrices behave exactly as before.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// `rows + 1` offsets into `col_idx` / `values`.
    pub row_ptr: ArenaVec<usize>,
    /// Column index of each stored value.
    pub col_idx: ArenaVec<u32>,
    /// The non-zero values.
    pub values: ArenaVec<f32>,
    /// Memoized execution format (see [`CsrMatrix::exec`]). Derived data:
    /// skipped by comparison and serialization, shared by clones. Mutating
    /// the storage fields above after the first inference call is
    /// unsupported — compression transforms build fresh matrices.
    pub exec: ExecCache<SparseExec>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from its raw parts, rejecting any structure the
    /// kernels could index out of bounds with: `row_ptr` must be
    /// `rows + 1` long, start at 0, be non-decreasing and end at the value
    /// count; `col_idx` must match `values` in length and every column
    /// index must be `< cols`. Untrusted sources (e.g. the `.cogm` section
    /// reader) must come through here or run the same checks.
    ///
    /// # Errors
    ///
    /// [`MlError::MalformedCsr`] describing the first violated invariant.
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: impl Into<ArenaVec<usize>>,
        col_idx: impl Into<ArenaVec<u32>>,
        values: impl Into<ArenaVec<f32>>,
    ) -> Result<Self, MlError> {
        let csr = Self {
            rows,
            cols,
            row_ptr: row_ptr.into(),
            col_idx: col_idx.into(),
            values: values.into(),
            exec: ExecCache::default(),
        };
        csr.validate()?;
        Ok(csr)
    }

    /// Checks the CSR invariants [`CsrMatrix::new`] enforces, for matrices
    /// assembled field-by-field.
    ///
    /// # Errors
    ///
    /// [`MlError::MalformedCsr`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), MlError> {
        let bad = |msg: String| Err(MlError::MalformedCsr(msg));
        if self.row_ptr.len() != self.rows + 1 {
            return bad(format!(
                "row_ptr length {} for {} rows",
                self.row_ptr.len(),
                self.rows
            ));
        }
        if self.row_ptr[0] != 0 {
            return bad(format!("row_ptr starts at {}", self.row_ptr[0]));
        }
        if self.row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return bad("row_ptr is not non-decreasing".into());
        }
        if *self.row_ptr.last().expect("non-empty row_ptr") != self.values.len() {
            return bad(format!(
                "row_ptr ends at {} but {} values are stored",
                self.row_ptr[self.rows],
                self.values.len()
            ));
        }
        if self.col_idx.len() != self.values.len() {
            return bad(format!(
                "{} column indices for {} values",
                self.col_idx.len(),
                self.values.len()
            ));
        }
        if let Some(&c) = self.col_idx.iter().find(|&&c| c as usize >= self.cols) {
            return bad(format!("column index {c} out of range for {} cols", self.cols));
        }
        Ok(())
    }

    /// Builds a CSR matrix from a dense one, storing values with magnitude
    /// above zero.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not 2-D.
    #[must_use]
    pub fn from_dense(dense: &Tensor) -> Self {
        let (rows, cols) = (dense.rows(), dense.cols());
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for j in 0..cols {
                let v = dense.data()[i * cols + j];
                if v != 0.0 {
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        Self {
            rows,
            cols,
            row_ptr: row_ptr.into(),
            col_idx: col_idx.into(),
            values: values.into(),
            exec: ExecCache::default(),
        }
    }

    /// The compiled execution format for this matrix, built on first use
    /// (or eagerly via [`crate::infer::MatRep::precompile`]) and shared by
    /// every clone — sessions stamped out from one artifact model all run
    /// the same compiled image while the CSR arrays stay storage-only.
    pub fn exec(&self) -> &Arc<SparseExec> {
        self.exec.get_or_compile(|| SparseExec::compile(self))
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Computes `x [m, rows] × self -> [m, cols]` skipping zeros.
    ///
    /// This is the layout used by dense layers (`y = x W`), where the CSR
    /// matrix plays the role of `W`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.rows`.
    #[must_use]
    pub fn left_matmul(&self, x: &Tensor) -> Tensor {
        let (m, k) = (x.rows(), x.cols());
        assert_eq!(k, self.rows, "spmm inner dims {k} vs {}", self.rows);
        let n = self.cols;
        let mut out = vec![0.0f32; m * n];
        self.left_matmul_into(x.data(), m, &mut out);
        Tensor::new(vec![m, n], out)
    }

    /// [`CsrMatrix::left_matmul`] over raw slices into a preallocated
    /// output. `out` is fully overwritten.
    ///
    /// The loops are interchanged relative to the textbook per-row form:
    /// each stored weight row is streamed **once** and applied to every
    /// input row, so a batched call reads the CSR arrays one time instead
    /// of once per window. Per output element the contributions still
    /// arrive in ascending `(weight row, entry)` order — exactly the
    /// per-row order — so results are bit-identical at any `m`, including
    /// `m = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() < m * self.rows` or `out.len() < m * self.cols`.
    pub fn left_matmul_into(&self, x: &[f32], m: usize, out: &mut [f32]) {
        let k = self.rows;
        let n = self.cols;
        let out = &mut out[..m * n];
        out.fill(0.0);
        for p in 0..k {
            let start = self.row_ptr[p];
            let end = self.row_ptr[p + 1];
            if start == end {
                continue;
            }
            let cols = &self.col_idx[start..end];
            let vals = &self.values[start..end];
            for i in 0..m {
                let xv = x[i * k + p];
                if xv == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (&c, &v) in cols.iter().zip(vals) {
                    orow[c as usize] += xv * v;
                }
            }
        }
    }

    /// Reconstructs the dense matrix (testing / debugging aid).
    #[must_use]
    pub fn to_dense(&self) -> Tensor {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for i in 0..self.rows {
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[i * self.cols + self.col_idx[idx] as usize] = self.values[idx];
            }
        }
        Tensor::new(vec![self.rows, self.cols], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| {
                if rng.gen_bool(density) {
                    rng.gen_range(-1.0..1.0)
                } else {
                    0.0
                }
            })
            .collect();
        Tensor::new(vec![rows, cols], data)
    }

    #[test]
    fn roundtrip_dense_csr_dense() {
        let dense = random_sparse(13, 7, 0.3, 0);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let w = random_sparse(20, 15, 0.3, 1);
        let csr = CsrMatrix::from_dense(&w);
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::uniform(vec![4, 20], 1.0, &mut rng);
        let sparse_out = csr.left_matmul(&x);
        let dense_out = x.matmul(&w);
        for (a, b) in sparse_out.data().iter().zip(dense_out.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn sparsity_reporting() {
        let w = Tensor::new(vec![2, 2], vec![1.0, 0.0, 0.0, 0.0]);
        let csr = CsrMatrix::from_dense(&w);
        assert_eq!(csr.nnz(), 1);
        assert!((csr.sparsity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn batched_spmm_is_bit_identical_to_per_row_calls() {
        // The loop-interchanged kernel must preserve the per-element
        // accumulation order, so a batch of m rows equals m solo calls
        // bit-for-bit.
        let w = random_sparse(33, 17, 0.4, 5);
        let csr = CsrMatrix::from_dense(&w);
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::uniform(vec![7, 33], 1.0, &mut rng);
        let batched = csr.left_matmul(&x);
        for i in 0..7 {
            let row = Tensor::new(vec![1, 33], x.data()[i * 33..(i + 1) * 33].to_vec());
            let solo = csr.left_matmul(&row);
            assert_eq!(
                batched.data()[i * 17..(i + 1) * 17],
                *solo.data(),
                "row {i} differs between batched and solo spmm"
            );
        }
    }

    #[test]
    fn construction_accepts_valid_parts() {
        let dense = random_sparse(5, 4, 0.5, 9);
        let csr = CsrMatrix::from_dense(&dense);
        let rebuilt = CsrMatrix::new(
            csr.rows,
            csr.cols,
            csr.row_ptr.clone(),
            csr.col_idx.clone(),
            csr.values.clone(),
        )
        .unwrap();
        assert_eq!(rebuilt, csr);
    }

    #[test]
    fn construction_rejects_out_of_range_column() {
        let err = CsrMatrix::new(1, 3, vec![0, 1], vec![3], vec![1.0]).unwrap_err();
        assert!(matches!(err, MlError::MalformedCsr(_)), "{err}");
    }

    #[test]
    fn construction_rejects_broken_row_pointers() {
        for row_ptr in [
            vec![0, 2],          // ends past the stored values
            vec![1, 1],          // does not start at zero
            vec![0, 1, 0, 1],    // decreasing (needs rows = 3)
            vec![0],             // wrong length
        ] {
            let rows = row_ptr.len().saturating_sub(1).max(1);
            let err =
                CsrMatrix::new(rows, 3, row_ptr.clone(), vec![0], vec![1.0]).unwrap_err();
            assert!(
                matches!(err, MlError::MalformedCsr(_)),
                "row_ptr {row_ptr:?}: {err}"
            );
        }
    }

    #[test]
    fn empty_matrix_works() {
        let w = Tensor::zeros(vec![3, 4]);
        let csr = CsrMatrix::from_dense(&w);
        assert_eq!(csr.nnz(), 0);
        let x = Tensor::full(vec![2, 3], 1.0);
        let y = csr.left_matmul(&x);
        assert!(y.data().iter().all(|&v| v == 0.0));
    }
}
