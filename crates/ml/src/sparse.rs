//! Compressed-sparse-row matrices for pruned inference.
//!
//! Unstructured magnitude pruning only pays off at inference time if the
//! kernel actually skips zeros; a dense matmul over a 70%-zero matrix costs
//! exactly as much as the unpruned one. The paper reports a latency *drop*
//! after pruning (0.075 s → 0.071 s), which implies a sparse execution
//! path — this module is that path.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// CSR representation of a weight matrix `[rows, cols]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// `rows + 1` offsets into `col_idx` / `values`.
    pub row_ptr: Vec<usize>,
    /// Column index of each stored value.
    pub col_idx: Vec<u32>,
    /// The non-zero values.
    pub values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense one, storing values with magnitude
    /// above zero.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not 2-D.
    #[must_use]
    pub fn from_dense(dense: &Tensor) -> Self {
        let (rows, cols) = (dense.rows(), dense.cols());
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for j in 0..cols {
                let v = dense.data()[i * cols + j];
                if v != 0.0 {
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Computes `x [m, rows] × self -> [m, cols]` skipping zeros.
    ///
    /// This is the layout used by dense layers (`y = x W`), where the CSR
    /// matrix plays the role of `W`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.rows`.
    #[must_use]
    pub fn left_matmul(&self, x: &Tensor) -> Tensor {
        let (m, k) = (x.rows(), x.cols());
        assert_eq!(k, self.rows, "spmm inner dims {k} vs {}", self.rows);
        let n = self.cols;
        let mut out = vec![0.0f32; m * n];
        self.left_matmul_into(x.data(), m, &mut out);
        Tensor::new(vec![m, n], out)
    }

    /// [`CsrMatrix::left_matmul`] over raw slices into a preallocated
    /// output — the same loops in the same order, shared with the
    /// allocating path so the compiled inference plan stays bit-identical
    /// to it. `out` is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() < m * self.rows` or `out.len() < m * self.cols`.
    pub fn left_matmul_into(&self, x: &[f32], m: usize, out: &mut [f32]) {
        let k = self.rows;
        let n = self.cols;
        let out = &mut out[..m * n];
        out.fill(0.0);
        for i in 0..m {
            let xrow = &x[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &xv) in xrow.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let start = self.row_ptr[p];
                let end = self.row_ptr[p + 1];
                for idx in start..end {
                    orow[self.col_idx[idx] as usize] += xv * self.values[idx];
                }
            }
        }
    }

    /// Reconstructs the dense matrix (testing / debugging aid).
    #[must_use]
    pub fn to_dense(&self) -> Tensor {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for i in 0..self.rows {
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[i * self.cols + self.col_idx[idx] as usize] = self.values[idx];
            }
        }
        Tensor::new(vec![self.rows, self.cols], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen_bool(density) {
                    rng.gen_range(-1.0..1.0)
                } else {
                    0.0
                }
            })
            .collect();
        Tensor::new(vec![rows, cols], data)
    }

    #[test]
    fn roundtrip_dense_csr_dense() {
        let dense = random_sparse(13, 7, 0.3, 0);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let w = random_sparse(20, 15, 0.3, 1);
        let csr = CsrMatrix::from_dense(&w);
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::uniform(vec![4, 20], 1.0, &mut rng);
        let sparse_out = csr.left_matmul(&x);
        let dense_out = x.matmul(&w);
        for (a, b) in sparse_out.data().iter().zip(dense_out.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn sparsity_reporting() {
        let w = Tensor::new(vec![2, 2], vec![1.0, 0.0, 0.0, 0.0]);
        let csr = CsrMatrix::from_dense(&w);
        assert_eq!(csr.nnz(), 1);
        assert!((csr.sparsity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_works() {
        let w = Tensor::zeros(vec![3, 4]);
        let csr = CsrMatrix::from_dense(&w);
        assert_eq!(csr.nnz(), 0);
        let x = Tensor::full(vec![2, 3], 1.0);
        let y = csr.left_matmul(&x);
        assert!(y.data().iter().all(|&v| v == 0.0));
    }
}
