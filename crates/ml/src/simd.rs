//! Runtime SIMD dispatch policy for the ml execution kernels.
//!
//! Every vectorized kernel in [`crate::tensor`] and [`crate::matexec`]
//! keeps a scalar reference body that computes bit-identical results, so
//! dispatch is a pure performance decision. `COGARM_NO_SIMD=1` pins the
//! process to the scalar bodies — the escape hatch CI uses to lock
//! scalar/vector parity on every runner (`dsp` honors the same variable
//! at its filter-bank dispatch).

use std::sync::OnceLock;

/// Whether vectorized kernel bodies run on this host: AVX2 detected and
/// the `COGARM_NO_SIMD` escape hatch off. Read once per process —
/// dispatch must not flip while compiled plans are live.
#[must_use]
pub fn enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        let forced_off =
            std::env::var("COGARM_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0");
        #[cfg(target_arch = "x86_64")]
        {
            !forced_off && std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = forced_off;
            false
        }
    })
}
