use std::fmt;

/// Errors produced by the ML framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MlError {
    /// Two shapes are incompatible for the attempted operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left/input shape.
        lhs: Vec<usize>,
        /// Right/expected shape.
        rhs: Vec<usize>,
    },
    /// The dataset is empty or labels are missing.
    EmptyDataset,
    /// A label exceeds the configured class count.
    BadLabel {
        /// The offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
    /// A model configuration is invalid (zero layers, zero units, …).
    BadConfig(String),
    /// Numeric failure during training (NaN/inf loss).
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
    /// A CSR matrix's structure is internally inconsistent (bad row
    /// pointers or a column index outside the matrix).
    MalformedCsr(String),
    /// Quantization was requested on a model with no dense or sparse
    /// weight matrices to derive a scale from (all-int8 input).
    NoQuantizableWeights,
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            MlError::EmptyDataset => write!(f, "dataset is empty"),
            MlError::BadLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            MlError::BadConfig(msg) => write!(f, "invalid model configuration: {msg}"),
            MlError::Diverged { epoch } => {
                write!(f, "training diverged (non-finite loss) at epoch {epoch}")
            }
            MlError::MalformedCsr(msg) => write!(f, "malformed CSR matrix: {msg}"),
            MlError::NoQuantizableWeights => {
                write!(f, "no dense or sparse weights to derive a quantization scale from")
            }
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::MlError>();
    }
}
