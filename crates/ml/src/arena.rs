//! Arena-backed weight storage: owned-or-shared vectors the inference
//! kernels read through.
//!
//! Every weight payload in the runtime model ([`crate::tensor::Tensor`]
//! data, CSR arrays, int8 matrices) is an [`ArenaVec`] — a `Vec<T>` that
//! can alternatively *borrow* its elements from a shared, reference-counted
//! arena (a memory-mapped `.cogm` image, or any `Arc`-owned buffer). The
//! two cases are indistinguishable to readers: `ArenaVec` derefs to `[T]`,
//! so kernels, validators and tests see plain slices either way.
//!
//! The fleet-scale property this buys: cloning a shared `ArenaVec` bumps a
//! refcount instead of copying elements, so N sessions of one artifact
//! share a single copy of the weights — per-session memory is scratch
//! only. Owned vectors keep today's deep-copy semantics, so freshly
//! trained (non-image) models behave exactly as before.
//!
//! Mutation goes through [`ArenaVec::make_mut`], which is copy-on-write:
//! a shared vector is detached into owned storage on first write, so no
//! writer can ever touch bytes another session (or the read-only mapping
//! itself) is reading.

use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// The arena owner type: any reference-counted buffer that keeps the
/// borrowed elements alive (a weight image, an `Arc<[T]>`, …).
pub type ArenaOwner = Arc<dyn Any + Send + Sync>;

enum Repr<T> {
    /// Plain owned storage — semantics identical to `Vec<T>`.
    Owned(Vec<T>),
    /// Elements borrowed from a reference-counted arena. `ptr/len` point
    /// into memory `owner` keeps alive and immutable for its lifetime.
    Shared {
        owner: ArenaOwner,
        ptr: *const T,
        len: usize,
    },
}

/// A contiguous run of `T`: owned like a `Vec`, or borrowed from a shared
/// reference-counted arena (see module docs).
pub struct ArenaVec<T> {
    repr: Repr<T>,
}

// SAFETY: a Shared repr is an immutable view into memory kept alive by an
// `Arc<dyn Any + Send + Sync>`; with `T: Send + Sync` the view is as
// thread-safe as `&[T]` plus the Arc handle itself.
unsafe impl<T: Send + Sync> Send for ArenaVec<T> {}
unsafe impl<T: Send + Sync> Sync for ArenaVec<T> {}

impl<T> ArenaVec<T> {
    /// An empty owned vector.
    #[must_use]
    pub fn new() -> Self {
        Self {
            repr: Repr::Owned(Vec::new()),
        }
    }

    /// Wraps a slice of memory owned (and kept alive + immutable) by
    /// `owner`.
    ///
    /// # Safety
    ///
    /// `slice` must point into memory that `owner` keeps valid and
    /// unmodified for as long as `owner` has any strong reference — the
    /// returned vector holds a clone of `owner` and reads the slice for
    /// its whole lifetime.
    #[must_use]
    pub unsafe fn from_owner(owner: ArenaOwner, slice: &[T]) -> Self {
        Self {
            repr: Repr::Shared {
                owner,
                ptr: slice.as_ptr(),
                len: slice.len(),
            },
        }
    }

    /// Copies `values` once into a fresh shared arena (`Arc<[T]>`), so
    /// subsequent clones are refcount bumps instead of deep copies — for
    /// decoded payloads that could not borrow the image directly.
    #[must_use]
    pub fn shared_copy(values: &[T]) -> Self
    where
        T: Clone + Send + Sync + 'static,
    {
        let arc: Arc<[T]> = values.iter().cloned().collect();
        let slice: &[T] = &arc;
        let (ptr, len) = (slice.as_ptr(), slice.len());
        Self {
            repr: Repr::Shared {
                owner: Arc::new(arc),
                ptr,
                len,
            },
        }
    }

    /// The elements as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            // SAFETY: `from_owner`'s contract — the owner keeps ptr/len
            // valid and immutable while we hold it.
            Repr::Shared { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// Whether the elements live in a shared arena (clones are refcount
    /// bumps, not copies).
    #[must_use]
    pub fn is_shared(&self) -> bool {
        matches!(self.repr, Repr::Shared { .. })
    }

    /// Mutable access, copy-on-write: a shared vector detaches into owned
    /// storage first, so the arena is never written through.
    pub fn make_mut(&mut self) -> &mut [T]
    where
        T: Clone,
    {
        if self.is_shared() {
            self.repr = Repr::Owned(self.as_slice().to_vec());
        }
        match &mut self.repr {
            Repr::Owned(v) => v,
            Repr::Shared { .. } => unreachable!("detached above"),
        }
    }

    /// The elements as an owned `Vec` (one copy when shared).
    #[must_use]
    pub fn into_vec(self) -> Vec<T>
    where
        T: Clone,
    {
        match self.repr {
            Repr::Owned(v) => v,
            Repr::Shared { .. } => self.as_slice().to_vec(),
        }
    }
}

impl<T> Default for ArenaVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Deref for ArenaVec<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> From<Vec<T>> for ArenaVec<T> {
    fn from(v: Vec<T>) -> Self {
        Self {
            repr: Repr::Owned(v),
        }
    }
}

impl<T: Clone> Clone for ArenaVec<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => Self {
                repr: Repr::Owned(v.clone()),
            },
            Repr::Shared { owner, ptr, len } => Self {
                repr: Repr::Shared {
                    owner: Arc::clone(owner),
                    ptr: *ptr,
                    len: *len,
                },
            },
        }
    }
}

/// Value equality over the elements — an owned vector and a shared view
/// with the same contents are equal (structural ensemble equality, which
/// serving admission relies on, must not depend on storage).
impl<T: PartialEq> PartialEq for ArenaVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq + Eq> Eq for ArenaVec<T> {}

impl<T: fmt::Debug> fmt::Debug for ArenaVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T, I: std::slice::SliceIndex<[T]>> std::ops::Index<I> for ArenaVec<T> {
    type Output = I::Output;

    fn index(&self, index: I) -> &I::Output {
        &self.as_slice()[index]
    }
}

impl<T> FromIterator<T> for ArenaVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Vec::from_iter(iter).into()
    }
}

impl<'a, T> IntoIterator for &'a ArenaVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_round_trip_behaves_like_vec() {
        let v: ArenaVec<f32> = vec![1.0, 2.0, 3.0].into();
        assert!(!v.is_shared());
        assert_eq!(v.len(), 3);
        assert_eq!(v[1], 2.0);
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(v.clone().into_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn shared_view_borrows_the_owner() {
        let backing: Arc<Vec<u32>> = Arc::new((0..100).collect());
        let v = unsafe { ArenaVec::from_owner(backing.clone() as ArenaOwner, &backing[10..20]) };
        assert!(v.is_shared());
        assert_eq!(v.as_slice(), &(10..20).collect::<Vec<u32>>()[..]);
        // Clones bump the refcount instead of copying elements.
        let before = Arc::strong_count(&backing);
        let c = v.clone();
        assert!(c.is_shared());
        assert_eq!(Arc::strong_count(&backing), before + 1);
        assert_eq!(c, v);
    }

    #[test]
    fn shared_survives_dropping_the_original_handle() {
        let v = {
            let backing: Arc<Vec<u8>> = Arc::new(vec![7, 8, 9]);
            unsafe { ArenaVec::from_owner(backing.clone() as ArenaOwner, &backing[..]) }
        };
        assert_eq!(v.as_slice(), &[7, 8, 9]);
    }

    #[test]
    fn make_mut_detaches_shared_storage() {
        let backing: Arc<Vec<i8>> = Arc::new(vec![1, 2, 3]);
        let mut v = unsafe { ArenaVec::from_owner(backing.clone() as ArenaOwner, &backing[..]) };
        v.make_mut()[0] = 42;
        assert!(!v.is_shared(), "write must detach from the arena");
        assert_eq!(v.as_slice(), &[42, 2, 3]);
        assert_eq!(backing[0], 1, "the arena itself is never written");
    }

    #[test]
    fn shared_copy_clones_are_refcount_bumps() {
        let v = ArenaVec::shared_copy(&[1.0f32, 2.0]);
        assert!(v.is_shared());
        let c = v.clone();
        assert_eq!(c.as_slice().as_ptr(), v.as_slice().as_ptr());
    }

    #[test]
    fn equality_ignores_storage() {
        let owned: ArenaVec<f32> = vec![1.0, 2.0].into();
        let shared = ArenaVec::shared_copy(&[1.0f32, 2.0]);
        assert_eq!(owned, shared);
    }
}
